//! Regression net over *scheduling decisions*: for each catalog query, pin
//! down which parts stream and which buffer. Output correctness is covered
//! elsewhere; these tests fail when the scheduler silently loses (or
//! wrongly gains) streaming capability.

use flux_bench::catalog_query;
use fluxquery::lang::pretty_flux;
use fluxquery::{FluxEngine, Options};

fn flux_text(id: &str) -> (String, usize) {
    let q = catalog_query(id);
    let engine = FluxEngine::compile(q.query, q.domain.dtd(), &Options::default())
        .unwrap_or_else(|e| panic!("{id}: {e}"));
    (
        pretty_flux(&engine.query().flux),
        engine.buffered_handler_count(),
    )
}

#[test]
fn xmp_q1_streams_attribute_filter() {
    // Attribute filters are decided at the start tag... but the output
    // element wraps the (buffered) title check? Under Fig. 1 titles come
    // first, so everything streams... except the where-condition became an
    // if around the body, whose condition reads only @year: streams.
    let (flux, _buffered) = flux_text("XMP-Q1");
    assert!(flux.contains("on book as"), "book loop streams:\n{flux}");
}

#[test]
fn xmp_q3_weak_buffers_exactly_once() {
    let (flux, buffered) = flux_text("XMP-Q3");
    assert_eq!(buffered, 1, "{flux}");
    assert!(flux.contains("on title as"), "{flux}");
    assert!(flux.contains("on-first past(author,title)"), "{flux}");
}

#[test]
fn xmp_q3_strong_fully_streams() {
    let (flux, buffered) = flux_text("XMP-Q3s");
    assert_eq!(buffered, 0, "{flux}");
    assert!(flux.contains("on author as"), "{flux}");
}

#[test]
fn q3_rev_buffers_titles_not_authors() {
    let (flux, buffered) = flux_text("Q3-REV");
    assert_eq!(buffered, 1, "{flux}");
    assert!(flux.contains("on author as"), "authors stream:\n{flux}");
    // The buffered item waits for both labels (authors must be done).
    assert!(flux.contains("on-first past(author,title)"), "{flux}");
}

#[test]
fn filter_query_buffers_whole_books() {
    // `if (exists($b/author)) then $b` needs the whole book.
    let (flux, buffered) = flux_text("FILTER");
    assert!(buffered >= 1, "{flux}");
    assert!(flux.contains("past(*)"), "{flux}");
}

#[test]
fn prices_query_streams_under_fig1() {
    // title before price in Fig. 1; the condition reads price (arrives
    // last), so the body CANNOT stream: the price-test forces buffering.
    let (flux, buffered) = flux_text("PRICES");
    assert!(buffered >= 1, "{flux}");
    // But buffering happens at book level (per-book), not whole-document.
    assert!(flux.contains("on book as"), "books still stream:\n{flux}");
}

#[test]
fn auction_join_streams_auctions_probes_people() {
    let (flux, _) = flux_text("AUC-JOIN");
    assert!(
        flux.contains("on closed_auction as"),
        "auctions stream:\n{flux}"
    );
    assert!(
        flux.contains("on-first past(buyer,price)"),
        "per-auction probe once buyer+price are complete:\n{flux}"
    );
}

#[test]
fn auction_expensive_streams_everything_but_the_condition() {
    let (flux, buffered) = flux_text("AUC-EXP");
    // Condition needs price (last child): per-auction buffering only.
    assert!(flux.contains("on closed_auction as"), "{flux}");
    assert!(buffered >= 1, "{flux}");
    assert!(
        !flux.contains("past(*)"),
        "no whole-subtree buffering:\n{flux}"
    );
}

#[test]
fn buffered_handler_counts_stable_across_catalog() {
    // Coarse fingerprint: (id, buffered handlers, process-stream count).
    let expected = [
        ("XMP-Q1", 1, 3),
        ("XMP-Q2", 1, 3),
        ("XMP-Q3", 1, 3),
        ("XMP-Q3s", 0, 3),
        ("Q3-REV", 1, 3),
        ("FILTER", 1, 3),
        ("PRICES", 1, 3),
        ("AUC-JOIN", 1, 4),
        ("AUC-EXP", 1, 4),
    ];
    for (id, buffered, ps) in expected {
        let q = catalog_query(id);
        let engine = FluxEngine::compile(q.query, q.domain.dtd(), &Options::default()).unwrap();
        assert_eq!(
            engine.buffered_handler_count(),
            buffered,
            "{id} buffered handlers changed:\n{}",
            pretty_flux(&engine.query().flux)
        );
        assert_eq!(
            engine.query().flux.process_stream_count(),
            ps,
            "{id} process-stream count changed:\n{}",
            pretty_flux(&engine.query().flux)
        );
    }
}
