//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the benchmarking surface the workspace's `crates/bench/benches`
//! harnesses use: [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`] and
//! [`Bencher::iter`]. Measurement is plain wall-clock timing over
//! `sample_size` iterations with a median report to stdout — no statistics,
//! plots or saved baselines. See `third_party/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stub ignores measurement time and
    /// always collects exactly `sample_size` samples.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => write!(f, "{}/{}", self.function, p),
            Some(p) => write!(f, "{p}"),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Times `f`, reporting under this group's name plus `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group. (The stub reports eagerly, so this is a no-op.)
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = self.criterion.sample_size;
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                times.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
            }
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times.get(times.len() / 2).copied().unwrap_or(0.0);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / median)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {:.3} ms over {} samples{}",
            self.name,
            id,
            median * 1e3,
            times.len(),
            rate
        );
    }
}

/// Times a single benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` once under the timer. Criterion proper decides iteration
    /// counts adaptively; the stub keeps one iteration per sample so total
    /// runtime stays bounded for arbitrarily slow bodies.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
