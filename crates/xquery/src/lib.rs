//! # flux-xquery
//!
//! The XQuery frontend of FluXQuery: parser, AST, normal form, static
//! analysis, pretty printer, and the two-stage compile-then-stream
//! evaluator shared by the baseline engines and the runtime's buffered
//! execution.
//!
//! Evaluation is split into a compile stage ([`compile`]) that resolves
//! every name to a [`Symbol`](flux_xml::Symbol) and every variable to a
//! dense slot once per query, and a streaming stage ([`eval`]) that walks
//! buffered documents through lazy [`cursor`]s. The original materialising
//! interpreter survives in [`reference`] as the differential-testing
//! oracle.
//!
//! The supported fragment follows the paper (Sec. 4): arbitrarily nested
//! for-loops and joins, conditionals with existential general comparisons,
//! direct element constructors, `let` (inlined during normalization), and
//! child/attribute/`text()` steps — no aggregation.

pub mod analysis;
pub mod ast;
pub mod compile;
pub mod cursor;
pub mod error;
pub mod eval;
pub mod normalize;
pub mod parser;
pub mod pretty;
pub mod reference;

pub use analysis::{deps_on, free_vars, paths_rooted_at, DepSet};
pub use ast::{
    AttrConstructor, AttrPart, CmpOp, Cond, Expr, Operand, Path, Step, VarName,
    GENERATED_VAR_PREFIX, ROOT_VAR,
};
pub use compile::{
    compile_attr, compile_cond, compile_expr, compile_for_document, compile_path, CompiledAttr,
    CompiledAttrPart, CompiledCond, CompiledExpr, CompiledName, CompiledOperand, CompiledPath,
    PathTail, SlotMap, Slots,
};
pub use cursor::{CursorItem, CursorPool, ItemCursor, PathCursor, SequenceCursor};
pub use error::{QueryPos, Result, XQueryError};
pub use eval::{compare, copy_node, eval_to_string, CountingSink, CursorEvaluator, QuerySink};
pub use normalize::{is_normal_form, normalize};
pub use parser::parse_query;
pub use pretty::{pretty, pretty_cond};
pub use reference::{reference_eval_to_string, Env, Item, TreeEvaluator};
