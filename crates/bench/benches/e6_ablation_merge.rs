//! E6 — ablation bench: loop merging (algebraic rule R1) on vs. off on the
//! paper's two-publisher-loops example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flux_bench::Domain;
use fluxquery_core::{FluxEngine, Input, Options};
use std::sync::Arc;

const QUERY: &str = r#"<out>{ for $b in $ROOT/bib/book return
    <r>{ for $x in $b/publisher return <a>{$x}</a> }
       { for $y in $b/publisher return <bb>{$y}</bb> }</r> }</out>"#;

fn ablation_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_ablation_merge");
    let doc = Arc::new(Domain::BibFig1.document(8.0, 42).into_bytes());
    group.throughput(Throughput::Bytes(doc.len() as u64));
    for (label, options) in [
        ("optimized", Options::default()),
        ("unoptimized", Options::without_algebraic_optimizer()),
    ] {
        let engine = FluxEngine::compile(QUERY, Domain::BibFig1.dtd(), &options).expect("compile");
        group.bench_with_input(BenchmarkId::new(label, "fig1"), &doc, |b, doc| {
            b.iter(|| {
                let mut out = Vec::new();
                engine
                    .run_input(Input::from_shared_bytes(Arc::clone(doc)), &mut out)
                    .expect("run");
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ablation_merge
}
criterion_main!(benches);
