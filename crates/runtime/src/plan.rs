//! Physical query plans: the compiled form of a FluX query that the
//! streamed evaluator executes (paper Sec. 3.2: "query compiler").
//!
//! Compilation walks the FluX tree once, building
//! * the **BDF** (projection specs per scope variable, [`crate::bdf`]),
//! * the list of **past queries** to register with XSAX, in firing order,
//! * a mirrored plan tree with all schema lookups resolved.
//!
//! Handler bodies and attribute templates are not carried as AST: they
//! compile here, once, into [`CompiledExpr`]s whose path steps and
//! constructor names are pre-resolved [`Symbol`]s
//! ([`FluxQuery::resolve_label`] — the vocabulary the query compiler
//! interned against the DTD) and whose variables are dense slots in one
//! plan-wide [`SlotMap`]. The executor evaluates them with the streaming
//! cursor evaluator: no per-firing hash lookups for declared labels, no
//! per-firing environment maps.

use crate::bdf::{collect_needs, SpecArena, SpecId};
use crate::error::{Result, RuntimeError};
use flux_dtd::{Dtd, Symbol, SymbolTable};
use flux_lang::{FluxExpr, FluxQuery, Handler, PastSet};
use flux_xquery::{
    compile_attr, compile_expr, CompiledAttr, CompiledExpr, Expr, SlotMap, VarName, ROOT_VAR,
};
use flux_xsax::PastLabels;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Index of a process-stream plan.
pub type PsId = usize;

/// A compiled expression tree.
#[derive(Debug, Clone)]
pub enum PlanExpr {
    Empty,
    /// Constant text output.
    Text(String),
    /// Evaluate a compiled expression over the buffer store, now.
    BufferedEval(Rc<CompiledExpr>),
    Sequence(Vec<PlanExpr>),
    Element {
        name: String,
        /// Attribute templates, compiled against the plan's slot map.
        attributes: Rc<Vec<CompiledAttr>>,
        content: Box<PlanExpr>,
        /// True when the content contains a process-stream or stream-copy:
        /// the end tag is owed when the current child element closes.
        deferred_close: bool,
    },
    /// Copy the current child's events through to the output.
    StreamCopy,
    /// Enter a process-stream over the current scope.
    Ps(PsId),
}

/// One handler of a compiled process-stream.
#[derive(Debug, Clone)]
pub enum HandlerPlan {
    On {
        /// Dispatch label as text, for explain output.
        label: String,
        /// The label resolved against the DTD's symbol table; `None` when
        /// the query names an element the DTD does not declare — such a
        /// handler can never match a validated stream. The executor
        /// dispatches on this by symbol equality, never by string.
        symbol: Option<Symbol>,
        var: VarName,
        /// The bound variable's slot in the plan-wide [`SlotMap`].
        var_slot: usize,
        /// Buffer spec for the bound variable's scope shell.
        spec: SpecId,
        body: PlanExpr,
    },
    OnFirstPast {
        labels: PastSet,
        /// Index into [`Plan::past_regs`] (and the XSAX `PastId` space);
        /// `None` for document-level handlers, which the executor times
        /// itself via `doc_timing`.
        past_reg: Option<usize>,
        /// For document-level handlers: fire before or after the root.
        doc_timing: DocTiming,
        body: Rc<CompiledExpr>,
    },
}

/// When a document-level `on-first` handler fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocTiming {
    /// Not a document-level handler (fired by XSAX).
    Element,
    /// Before the root element is processed.
    AtStart,
    /// After the root element has closed.
    AtEnd,
}

/// A compiled process-stream.
#[derive(Debug, Clone)]
pub struct PsPlan {
    pub var: VarName,
    /// Element type of the scope (DOCUMENT for the `$ROOT` stream).
    pub element: Option<Symbol>,
    pub handlers: Vec<HandlerPlan>,
}

/// A past-query registration for XSAX.
#[derive(Debug, Clone)]
pub struct PastReg {
    pub element: Symbol,
    pub labels: PastLabels,
    pub ps: PsId,
    pub handler_index: usize,
}

/// The complete physical plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub top: PlanExpr,
    pub ps: Vec<PsPlan>,
    pub specs: SpecArena,
    /// Spec root for the `$ROOT` document scope.
    pub root_spec: SpecId,
    pub past_regs: Vec<PastReg>,
    /// Variable numbering shared by every compiled expression in the plan;
    /// the executor's binding array is sized from this.
    pub slots: SlotMap,
    /// `$ROOT`'s slot (always allocated first).
    pub root_slot: usize,
}

impl Plan {
    /// Renders the BDF for explain output.
    pub fn render_bdf(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("$ROOT: {}\n", self.specs.render(self.root_spec)));
        for ps in &self.ps {
            for handler in &ps.handlers {
                if let HandlerPlan::On {
                    label, var, spec, ..
                } = handler
                {
                    if !self.specs.is_empty_spec(*spec) {
                        out.push_str(&format!(
                            "${var} (on {label}): {}\n",
                            self.specs.render(*spec)
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Compiles a FluX query into a physical plan. The BDF's edges and the
/// compiled expressions' path steps are keyed by the symbols the query
/// compiler interned against the DTD ([`FluxQuery::label_symbols`]) — the
/// same index space the stream's seeded interner uses, so the executor
/// never builds a per-run index and never hashes a declared label.
pub fn compile_plan(query: &FluxQuery, dtd: &Dtd) -> Result<Plan> {
    let mut compiler = Compiler {
        dtd,
        query,
        specs: SpecArena::new(),
        ps: Vec::new(),
        past_regs: Vec::new(),
        scopes: Vec::new(),
        slots: SlotMap::new(),
    };
    let root_slot = compiler.slots.slot(ROOT_VAR);
    let root_spec = compiler.specs.new_root();
    compiler.scopes.push(ScopeEntry {
        var: ROOT_VAR.to_string(),
        spec: root_spec,
        element: Some(SymbolTable::DOCUMENT),
    });
    let top = compiler.compile(&query.flux)?;
    Ok(Plan {
        top,
        ps: compiler.ps,
        specs: compiler.specs,
        root_spec,
        past_regs: compiler.past_regs,
        slots: compiler.slots,
        root_slot,
    })
}

struct ScopeEntry {
    var: VarName,
    spec: SpecId,
    element: Option<Symbol>,
}

struct Compiler<'d> {
    dtd: &'d Dtd,
    /// The compiled query, for its label vocabulary.
    query: &'d FluxQuery,
    specs: SpecArena,
    ps: Vec<PsPlan>,
    past_regs: Vec<PastReg>,
    scopes: Vec<ScopeEntry>,
    /// Plan-wide variable numbering for every compiled expression.
    slots: SlotMap,
}

/// Whether a FluX subtree contains a process-stream or stream-copy (the
/// "spine"), which defers enclosing constructors' end tags.
fn contains_spine(expr: &FluxExpr) -> bool {
    match expr {
        FluxExpr::Empty | FluxExpr::StringLit(_) | FluxExpr::Buffered(_) => false,
        FluxExpr::StreamCopy(_) | FluxExpr::ProcessStream { .. } => true,
        FluxExpr::Sequence(items) => items.iter().any(contains_spine),
        FluxExpr::Element { content, .. } => contains_spine(content),
    }
}

impl<'d> Compiler<'d> {
    fn scope_pairs(&self) -> Vec<(VarName, SpecId)> {
        self.scopes
            .iter()
            .map(|s| (s.var.clone(), s.spec))
            .collect()
    }

    /// Records `e`'s buffering needs in the BDF, resolving path labels
    /// through the compile-time vocabulary (DTD fallback).
    fn collect_buffered_needs(&mut self, e: &Expr) {
        let pairs = self.scope_pairs();
        let (dtd, query) = (self.dtd, self.query);
        collect_needs(&mut self.specs, e, &pairs, &mut |label| {
            query.resolve_label(dtd, label)
        });
    }

    /// Compiles a buffered normal-form expression against the plan's slot
    /// map and the query's label vocabulary.
    fn compile_buffered(&mut self, e: &Expr) -> Result<CompiledExpr> {
        let (dtd, query, slots) = (self.dtd, self.query, &mut self.slots);
        compile_expr(e, slots, &mut |label| query.resolve_label(dtd, label)).map_err(Into::into)
    }

    fn compile(&mut self, expr: &FluxExpr) -> Result<PlanExpr> {
        match expr {
            FluxExpr::Empty => Ok(PlanExpr::Empty),
            FluxExpr::StringLit(s) => Ok(PlanExpr::Text(s.clone())),
            FluxExpr::StreamCopy(_) => Ok(PlanExpr::StreamCopy),
            FluxExpr::Buffered(e) => {
                self.collect_buffered_needs(e);
                Ok(PlanExpr::BufferedEval(Rc::new(self.compile_buffered(e)?)))
            }
            FluxExpr::Sequence(items) => Ok(PlanExpr::Sequence(
                items
                    .iter()
                    .map(|i| self.compile(i))
                    .collect::<Result<Vec<_>>>()?,
            )),
            FluxExpr::Element {
                name,
                attributes,
                content,
            } => {
                // Attribute templates read buffered data: record their
                // needs, then compile them against the plan's slot map.
                let mut compiled_attrs = Vec::with_capacity(attributes.len());
                for attr in attributes {
                    for part in &attr.value {
                        if let flux_xquery::AttrPart::Expr(e) = part {
                            self.collect_buffered_needs(e);
                        }
                    }
                    let (dtd, query, slots) = (self.dtd, self.query, &mut self.slots);
                    compiled_attrs.push(
                        compile_attr(attr, slots, &mut |label| query.resolve_label(dtd, label))
                            .map_err(RuntimeError::from)?,
                    );
                }
                let deferred_close = contains_spine(content);
                let content = self.compile(content)?;
                Ok(PlanExpr::Element {
                    name: name.clone(),
                    attributes: Rc::new(compiled_attrs),
                    content: Box::new(content),
                    deferred_close,
                })
            }
            FluxExpr::ProcessStream { var, handlers } => {
                let scope = self.scopes.last().expect("scope stack never empty");
                if scope.var != *var {
                    return Err(RuntimeError::Plan {
                        message: format!(
                            "process-stream ${var} does not match scope ${}",
                            scope.var
                        ),
                    });
                }
                let element = scope.element;
                let ps_id = self.ps.len();
                // Reserve the slot so nested process-streams get later ids.
                self.ps.push(PsPlan {
                    var: var.clone(),
                    element,
                    handlers: Vec::new(),
                });
                let mut compiled: Vec<HandlerPlan> = Vec::new();
                for handler in handlers {
                    match handler {
                        Handler::On {
                            label,
                            var: v,
                            body,
                        } => {
                            let spec = self.specs.new_root();
                            let var_slot = self.slots.slot(v);
                            self.scopes.push(ScopeEntry {
                                var: v.clone(),
                                spec,
                                element: self.dtd.lookup(label),
                            });
                            let body = self.compile(body);
                            self.scopes.pop();
                            compiled.push(HandlerPlan::On {
                                label: label.clone(),
                                symbol: self.dtd.lookup(label),
                                var: v.clone(),
                                var_slot,
                                spec,
                                body: body?,
                            });
                        }
                        Handler::OnFirstPast { labels, body } => {
                            let FluxExpr::Buffered(e) = body else {
                                return Err(RuntimeError::Plan {
                                    message: "on-first bodies must be buffered XQuery".to_string(),
                                });
                            };
                            self.collect_buffered_needs(e);
                            let handler_index = compiled.len();
                            let (past_reg, doc_timing) = match element {
                                Some(sym) if sym != SymbolTable::DOCUMENT => {
                                    let reg = self.past_regs.len();
                                    self.past_regs.push(PastReg {
                                        element: sym,
                                        labels: to_xsax_labels(labels, self.dtd),
                                        ps: ps_id,
                                        handler_index,
                                    });
                                    (Some(reg), DocTiming::Element)
                                }
                                Some(_) => (None, self.doc_timing(labels)),
                                None => {
                                    // Scope over an undeclared element: the
                                    // validator rejects such documents, so
                                    // the handler can never fire.
                                    (None, DocTiming::Element)
                                }
                            };
                            compiled.push(HandlerPlan::OnFirstPast {
                                labels: labels.clone(),
                                past_reg,
                                doc_timing,
                                body: Rc::new(self.compile_buffered(e)?),
                            });
                        }
                    }
                }
                self.ps[ps_id].handlers = compiled;
                Ok(PlanExpr::Ps(ps_id))
            }
        }
    }

    /// Document-level timing: the document's only child is the root
    /// element, so a past-set that does not mention it fires immediately.
    fn doc_timing(&self, labels: &PastSet) -> DocTiming {
        if labels.all {
            return DocTiming::AtEnd;
        }
        let Some(root) = self.dtd.root() else {
            return DocTiming::AtEnd;
        };
        let root_name = self.dtd.name(root);
        if labels.labels.contains(root_name) {
            DocTiming::AtEnd
        } else {
            DocTiming::AtStart
        }
    }
}

/// Converts a string-level past-set to XSAX symbols. Undeclared labels can
/// never occur in a valid stream and are dropped (they are trivially past).
fn to_xsax_labels(set: &PastSet, dtd: &Dtd) -> PastLabels {
    if set.all {
        return PastLabels::All;
    }
    let mut symbols: BTreeSet<Symbol> = set.labels.iter().filter_map(|l| dtd.lookup(l)).collect();
    if set.text {
        symbols.insert(SymbolTable::TEXT);
    }
    PastLabels::Labels(symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_WEAK_DTD};
    use flux_lang::{compile, CompileOptions};

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    fn plan_for(q: &str, dtd: &Dtd) -> Plan {
        let compiled = compile(q, dtd, &CompileOptions::default()).unwrap();
        compile_plan(&compiled, dtd).unwrap()
    }

    #[test]
    fn q3_weak_plan_shape() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let plan = plan_for(Q3, &dtd);
        // Three nested process-streams: ROOT, bib, book.
        assert_eq!(plan.ps.len(), 3);
        // One past registration (the author handler on book).
        assert_eq!(plan.past_regs.len(), 1);
        let book = dtd.lookup("book").unwrap();
        assert_eq!(plan.past_regs[0].element, book);
        // The book scope buffers only authors (whole subtrees).
        let bdf = plan.render_bdf();
        assert!(bdf.contains("{author:*}"), "{bdf}");
        assert!(!bdf.contains("title"), "titles are never buffered: {bdf}");
    }

    #[test]
    fn q3_fig1_plan_buffers_nothing() {
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let plan = plan_for(Q3, &dtd);
        assert_eq!(plan.past_regs.len(), 0);
        for ps in &plan.ps {
            for h in &ps.handlers {
                if let HandlerPlan::On { spec, .. } = h {
                    assert!(plan.specs.is_empty_spec(*spec));
                }
            }
        }
    }

    #[test]
    fn deferred_close_marked() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let plan = plan_for(Q3, &dtd);
        match &plan.top {
            PlanExpr::Element {
                deferred_close,
                name,
                ..
            } => {
                assert_eq!(name, "results");
                assert!(deferred_close);
            }
            other => panic!("expected results element, got {other:?}"),
        }
    }

    #[test]
    fn doc_timing_classification() {
        // A query that buffers at document level: copy the whole document
        // twice (the second copy can only start once the stream has ended).
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let q = r#"<r>{$ROOT}{$ROOT}</r>"#;
        let plan = plan_for(q, &dtd);
        let doc_ps = plan
            .ps
            .iter()
            .find(|p| p.element == Some(SymbolTable::DOCUMENT))
            .expect("document scope present");
        let timings: Vec<DocTiming> = doc_ps
            .handlers
            .iter()
            .filter_map(|h| match h {
                HandlerPlan::OnFirstPast { doc_timing, .. } => Some(*doc_timing),
                _ => None,
            })
            .collect();
        assert!(!timings.is_empty());
        assert!(timings.iter().all(|t| *t == DocTiming::AtEnd));
    }
}
