//! The engine facade: one type that compiles once and runs many times,
//! plus a uniform wrapper over the three architectures for experiments.

use crate::error::Result;
use flux_baseline::{DomEngine, ProjectionEngine};
use flux_dtd::Dtd;
use flux_lang::{compile as compile_flux, CompileOptions, FluxQuery, OptimizerConfig};
use flux_runtime::{
    compile_plan, execute_plan, execute_plan_from_source, execute_plan_from_source_with_report,
    execute_plan_with_report, Plan, RunReport, RunStats,
};
use flux_shard::{ShardConfig, ShardedReader};
use flux_xsax::XsaxConfig;
use std::io::{Read, Write};

/// How the engine parses its input stream.
///
/// Sharded parsing buffers the whole input and fans tokenisation out over
/// N threads (`flux_shard`); the query evaluator and the XSAX DFA still
/// consume one stitched, exactly-sequential event stream, so results,
/// validation verdicts and buffer accounting are identical to
/// [`Parallelism::Sequential`] — only the parse work moves off the
/// critical path. Prefer it for large in-memory documents on multi-core
/// hosts; prefer `Sequential` for unbounded or latency-sensitive streams,
/// where the paper's token-bounded memory guarantee matters. One visible
/// difference on *malformed* input: sharded runs reject it up front
/// (before emitting any output), while a sequential run may stream a
/// partial result before hitting the flaw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One reader thread, token-bounded memory (the paper's model).
    #[default]
    Sequential,
    /// Parse with up to N parallel shards (N ≥ 1; 1 still buffers but
    /// parses on one thread).
    Shards(usize),
}

/// Compilation and execution options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Algebraic optimizer configuration (all rules on by default).
    pub optimizer: OptimizerConfig,
    /// Verify the scheduled FluX query against the DTD (on by default).
    pub verify_safety: bool,
    /// Ablation: compile without streaming handlers (buffer everything).
    pub disable_streaming: bool,
    /// XSAX validation options.
    pub xsax: XsaxConfig,
    /// Input parsing strategy (default: sequential).
    pub parallelism: Parallelism,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            optimizer: OptimizerConfig::default(),
            verify_safety: true,
            disable_streaming: false,
            xsax: XsaxConfig::default(),
            parallelism: Parallelism::Sequential,
        }
    }
}

impl Options {
    pub fn new() -> Options {
        Options::default()
    }

    fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            optimizer: self.optimizer,
            verify_safety: self.verify_safety,
            disable_streaming: self.disable_streaming,
        }
    }

    /// Options with streaming disabled (the scheduling ablation).
    pub fn without_streaming() -> Options {
        Options {
            disable_streaming: true,
            ..Options::default()
        }
    }

    /// Options parsing the input with `shards` parallel shards.
    pub fn with_shards(shards: usize) -> Options {
        Options {
            parallelism: Parallelism::Shards(shards),
            ..Options::default()
        }
    }

    /// Options with the algebraic optimizer disabled (for ablations).
    pub fn without_algebraic_optimizer() -> Options {
        Options {
            optimizer: OptimizerConfig::disabled(),
            ..Options::default()
        }
    }

    /// Options capping the stream interner at `cap` distinct names
    /// (bounded-interner mode; see `ReaderConfig::max_symbols`). Past the
    /// cap, names travel by literal spelling — memory stops growing and
    /// query results are unchanged.
    pub fn with_max_symbols(cap: usize) -> Options {
        let mut options = Options::default();
        options.xsax.max_symbols = Some(cap);
        options
    }

    /// The reader configuration the baseline engines should stream with,
    /// mirroring the validating pipeline's interner bound.
    fn reader_config(&self) -> flux_xml::ReaderConfig {
        flux_xml::ReaderConfig {
            max_symbols: self.xsax.max_symbols,
            ..Default::default()
        }
    }
}

/// The FluXQuery engine: a query compiled against a DTD, ready to run over
/// any number of input streams.
pub struct FluxEngine {
    dtd: Dtd,
    query: FluxQuery,
    plan: Plan,
    xsax: XsaxConfig,
    parallelism: Parallelism,
}

impl FluxEngine {
    /// Compiles `query` against `dtd_text` (standalone DTD syntax).
    pub fn compile(query: &str, dtd_text: &str, options: &Options) -> Result<FluxEngine> {
        let dtd = Dtd::parse(dtd_text)?;
        Self::compile_with_dtd(query, dtd, options)
    }

    /// Compiles `query` against a schema in either DTD or XML Schema
    /// syntax, auto-detected (the paper's footnote 1: constraints can be
    /// derived from XML Schema just as well).
    pub fn compile_with_schema(
        query: &str,
        schema_text: &str,
        options: &Options,
    ) -> Result<FluxEngine> {
        let trimmed = schema_text.trim_start();
        let looks_like_xsd = trimmed.starts_with('<')
            && !trimmed.starts_with("<!")
            && schema_text.contains("schema");
        let dtd = if looks_like_xsd {
            flux_dtd::parse_xsd(schema_text)?
        } else {
            Dtd::parse(schema_text)?
        };
        Self::compile_with_dtd(query, dtd, options)
    }

    /// Compiles against an already-parsed DTD.
    pub fn compile_with_dtd(query: &str, dtd: Dtd, options: &Options) -> Result<FluxEngine> {
        let compiled = compile_flux(query, &dtd, &options.compile_options())?;
        let plan = compile_plan(&compiled, &dtd)?;
        Ok(FluxEngine {
            dtd,
            query: compiled,
            plan,
            xsax: options.xsax.clone(),
            parallelism: options.parallelism,
        })
    }

    /// Runs the query over `input`, streaming results to `output`.
    ///
    /// With [`Parallelism::Shards`] the input is buffered and parsed by N
    /// shard threads; the evaluator consumes the stitched stream, so the
    /// output and statistics match the sequential run.
    pub fn run<R: Read, W: Write>(&self, mut input: R, output: W) -> Result<RunStats> {
        match self.parallelism {
            Parallelism::Sequential => Ok(execute_plan(
                &self.plan,
                &self.dtd,
                input,
                output,
                self.xsax.clone(),
            )?),
            Parallelism::Shards(n) => {
                let source = self.sharded_source(&mut input, n)?;
                Ok(execute_plan_from_source(
                    &self.plan,
                    &self.dtd,
                    source,
                    output,
                    self.xsax.clone(),
                )?)
            }
        }
    }

    /// [`run`](Self::run) plus the run's telemetry [`RunReport`] — every
    /// pipeline stage's counters, spans and (under sharded parsing) the
    /// per-shard timeline. Without the `telemetry` cargo feature the
    /// report is still structurally valid but carries no measurements.
    pub fn run_with_report<R: Read, W: Write>(
        &self,
        mut input: R,
        output: W,
    ) -> Result<(RunStats, RunReport)> {
        match self.parallelism {
            Parallelism::Sequential => Ok(execute_plan_with_report(
                &self.plan,
                &self.dtd,
                input,
                output,
                self.xsax.clone(),
            )?),
            Parallelism::Shards(n) => {
                let source = self.sharded_source(&mut input, n)?;
                Ok(execute_plan_from_source_with_report(
                    &self.plan,
                    &self.dtd,
                    source,
                    output,
                    self.xsax.clone(),
                )?)
            }
        }
    }

    /// Buffers `input` and builds the N-shard parallel source over it.
    fn sharded_source<R: Read>(&self, input: &mut R, shards: usize) -> Result<ShardedReader> {
        let mut bytes = Vec::new();
        input
            .read_to_end(&mut bytes)
            .map_err(|e| flux_runtime::RuntimeError::from(flux_xsax::XsaxError::Xml(e.into())))?;
        let mut shard_config = ShardConfig::new(shards);
        // Mirror the interner bound on the merged table; the seed
        // vocabulary always resolves, so only undeclared names overflow
        // (and travel by literal spelling).
        shard_config.max_symbols = self.xsax.max_symbols;
        Ok(ShardedReader::with_symbols(
            bytes,
            shard_config,
            flux_xsax::seeded_symbols(&self.dtd),
        ))
    }

    /// Convenience: runs over a string, returning the output string.
    pub fn run_to_string(&self, input: &str) -> Result<(String, RunStats)> {
        let mut out = Vec::new();
        let stats = self.run(input.as_bytes(), &mut out)?;
        Ok((
            String::from_utf8(out).expect("output writer emits UTF-8"),
            stats,
        ))
    }

    /// The DTD this engine validates against.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The compiled query with all intermediate stages.
    pub fn query(&self) -> &FluxQuery {
        &self.query
    }

    /// Number of buffering (`on-first`) handlers in the plan.
    pub fn buffered_handler_count(&self) -> usize {
        self.query.buffered_handler_count()
    }

    /// A multi-stage compilation report: normal form, applied algebraic
    /// rules, scheduling decisions, the FluX query, and the BDF.
    pub fn explain(&self) -> String {
        let mut out = self.query.explain();
        out.push_str("\n== buffer description forest ==\n");
        out.push_str(&self.plan.render_bdf());
        out
    }
}

/// Which engine architecture to use (for the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// FluXQuery with full optimization.
    Flux,
    /// FluXQuery with the algebraic optimizer disabled (scheduling only).
    FluxNoAlgebra,
    /// Full-document DOM materialisation.
    Dom,
    /// Marian & Siméon-style projection.
    Projection,
}

impl EngineKind {
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Flux => "fluxquery",
            EngineKind::FluxNoAlgebra => "fluxquery-noalg",
            EngineKind::Dom => "dom",
            EngineKind::Projection => "projection",
        }
    }

    pub fn all() -> [EngineKind; 3] {
        [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom]
    }
}

/// A uniform wrapper over the three architectures. Baseline engines carry
/// the reader configuration derived from the compile-time [`Options`]
/// (notably the interner bound), so all three architectures can be run
/// under identical streaming constraints.
pub enum AnyEngine {
    Flux(Box<FluxEngine>),
    Dom(DomEngine, flux_xml::ReaderConfig),
    Projection(ProjectionEngine, flux_xml::ReaderConfig),
}

impl AnyEngine {
    /// Compiles `query` for the chosen architecture with default options.
    pub fn compile(kind: EngineKind, query: &str, dtd_text: &str) -> Result<AnyEngine> {
        Self::compile_with_options(kind, query, dtd_text, &Options::new())
    }

    /// Compiles `query` for the chosen architecture. The DTD is used only
    /// by the FluX variants — the baselines cannot exploit it, which is
    /// the paper's point. Execution options (interner bound, parallelism)
    /// apply to every architecture that supports them.
    pub fn compile_with_options(
        kind: EngineKind,
        query: &str,
        dtd_text: &str,
        options: &Options,
    ) -> Result<AnyEngine> {
        match kind {
            EngineKind::Flux => Ok(AnyEngine::Flux(Box::new(FluxEngine::compile(
                query, dtd_text, options,
            )?))),
            EngineKind::FluxNoAlgebra => {
                let mut options = options.clone();
                options.optimizer = OptimizerConfig::disabled();
                Ok(AnyEngine::Flux(Box::new(FluxEngine::compile(
                    query, dtd_text, &options,
                )?)))
            }
            EngineKind::Dom => Ok(AnyEngine::Dom(
                DomEngine::compile(query)?,
                options.reader_config(),
            )),
            EngineKind::Projection => Ok(AnyEngine::Projection(
                ProjectionEngine::compile(query)?,
                options.reader_config(),
            )),
        }
    }

    pub fn run<R: Read, W: Write>(&self, input: R, output: W) -> Result<RunStats> {
        match self {
            AnyEngine::Flux(e) => e.run(input, output),
            AnyEngine::Dom(e, config) => Ok(e.run_with_config(input, output, config.clone())?),
            AnyEngine::Projection(e, config) => {
                Ok(e.run_with_config(input, output, config.clone())?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_WEAK_DTD};

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    #[test]
    fn compile_and_run() {
        let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let (out, stats) = engine
            .run_to_string("<bib><book><author>A</author><title>T</title></book></bib>")
            .unwrap();
        assert_eq!(
            out,
            "<results><result><title>T</title><author>A</author></result></results>"
        );
        assert!(stats.peak_buffer_bytes > 0);
        assert_eq!(engine.buffered_handler_count(), 1);
    }

    #[test]
    fn explain_has_all_stages() {
        let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let explain = engine.explain();
        for section in [
            "== normalized query ==",
            "== scheduling ==",
            "== FluX query ==",
            "== buffer description forest ==",
        ] {
            assert!(explain.contains(section), "missing {section}:\n{explain}");
        }
        assert!(explain.contains("process-stream"), "{explain}");
        assert!(explain.contains("{author:*}"), "{explain}");
    }

    #[test]
    fn engine_reusable_across_runs() {
        let engine = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::new()).unwrap();
        let doc = "<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>1</price></book></bib>";
        let (out1, _) = engine.run_to_string(doc).unwrap();
        let (out2, _) = engine.run_to_string(doc).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn all_engines_agree() {
        let doc = "<bib><book><title>T1</title><author>A1</author></book><book><title>T2</title><author>A2</author><author>A3</author></book></bib>";
        let mut outputs = Vec::new();
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, PAPER_WEAK_DTD).unwrap();
            let mut out = Vec::new();
            engine.run(doc.as_bytes(), &mut out).unwrap();
            outputs.push((kind.label(), String::from_utf8(out).unwrap()));
        }
        let first = outputs[0].1.clone();
        for (label, out) in &outputs {
            assert_eq!(*out, first, "{label} diverged");
        }
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let mut doc = String::from("<bib>");
        for i in 0..500 {
            doc.push_str(&format!(
                "<book><author>Author {i} &amp; co</author><title>Title {i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        let sequential = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let (seq_out, seq_stats) = sequential.run_to_string(&doc).unwrap();
        for shards in [1, 2, 4] {
            let engine =
                FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::with_shards(shards)).unwrap();
            let (out, stats) = engine.run_to_string(&doc).unwrap();
            assert_eq!(out, seq_out, "{shards} shards diverged");
            assert_eq!(
                stats.peak_buffer_bytes, seq_stats.peak_buffer_bytes,
                "buffer accounting must not depend on parallelism"
            );
        }
    }

    #[test]
    fn report_is_available_in_both_modes_and_parallelisms() {
        let mut doc = String::from("<bib>");
        for i in 0..50 {
            doc.push_str(&format!(
                "<book><author>A{i}</author><title>T{i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        for options in [Options::new(), Options::with_shards(2)] {
            let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &options).unwrap();
            let mut out = Vec::new();
            let (stats, report) = engine.run_with_report(doc.as_bytes(), &mut out).unwrap();
            let mut plain = Vec::new();
            let plain_stats = engine.run(doc.as_bytes(), &mut plain).unwrap();
            assert_eq!(out, plain, "report assembly must not change output");
            assert_eq!(stats.peak_buffer_bytes, plain_stats.peak_buffer_bytes);
            let json = report.to_json();
            for needle in ["\"run_stats\"", "\"runtime\"", "\"xsax\"", "\"buffers\""] {
                assert!(json.contains(needle), "missing {needle} in:\n{json}");
            }
            // Text rendering never panics and carries the stats line.
            assert!(report.to_text().contains("run_stats:"));
        }
    }

    #[test]
    fn sharded_run_rejects_invalid_documents() {
        let engine = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::with_shards(4)).unwrap();
        // Wrong child order under the Fig. 1 DTD: validation must still
        // fail with sharded parsing.
        let doc = "<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>9</price></book></bib>";
        assert!(engine.run_to_string(doc).is_err());
    }

    #[test]
    fn memory_hierarchy_flux_below_projection_below_dom() {
        // Generate a document large enough for the architecture to dominate.
        let mut doc = String::from("<bib>");
        for i in 0..200 {
            doc.push_str(&format!(
                "<book><author>Author{i:04}</author><title>Title number {i:04}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        let mut peaks = std::collections::HashMap::new();
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, PAPER_WEAK_DTD).unwrap();
            let mut out = Vec::new();
            let stats = engine.run(doc.as_bytes(), &mut out).unwrap();
            peaks.insert(kind.label(), stats.peak_buffer_bytes);
        }
        assert!(
            peaks["fluxquery"] < peaks["projection"],
            "flux {} < projection {}",
            peaks["fluxquery"],
            peaks["projection"]
        );
        assert!(
            peaks["projection"] <= peaks["dom"],
            "projection {} <= dom {}",
            peaks["projection"],
            peaks["dom"]
        );
    }
}
