//! Proof of the zero-allocation event-loop contract: in the steady state
//! (every name interned once, recycled buffers grown to the largest token),
//! `XmlReader::next_into` performs no heap allocations per event — and
//! replaying a recorded `EventTape` through borrowed views (the sharded
//! replay path) performs **zero** allocations, full stop.
//!
//! The test instruments the global allocator and compares the total
//! allocation count for parsing N repeated records against 8N records with
//! identical per-record content. All allocations on the interned path
//! happen during warm-up (reader construction, first sight of each name,
//! first growth of each buffer), so the counts must be *equal* — any
//! per-event allocation would scale with the record count and fail loudly.
//! Tape replay is held to the stricter bar: viewing an event is span
//! arithmetic into the tape arena, so the whole replay loop must perform
//! literally no allocations.
//!
//! This file holds exactly one test so no concurrent test in the same
//! binary can perturb the allocation counter.
//!
//! The contract must hold identically under `--features telemetry`: the
//! scanner/reader counters are plain `u64` adds on stack-resident structs,
//! so the instrumented hot loop stays allocation-free (CI runs this proof
//! in both modes).

// The counting allocator is the one place the crate needs `unsafe`: it
// wraps `System` one-to-one and adds a relaxed atomic increment.
#![allow(unsafe_code)]

use flux_xml::{EventTape, RawEvent, RawEventKind, SymbolRemap, XmlReader};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth counts as an allocation: a recycled buffer that has to
        // regrow per event would be a real per-event heap cost.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A document of `books` identical records exercising element names,
/// attributes, text with entities, and CDATA.
fn document(books: usize) -> String {
    let mut doc = String::from("<bib>");
    for _ in 0..books {
        doc.push_str(
            "<book year=\"1994\" lang=\"en\"><title>TCP/IP &amp; co <![CDATA[raw <bits>]]></title>\
             <author>Stevens</author><price>65</price></book>",
        );
    }
    doc.push_str("</bib>");
    doc
}

/// Parses `doc` on the interned hot path, returning the number of heap
/// allocations the whole parse performed (including reader construction).
fn allocations_for(doc: &str) -> usize {
    let mut reader = XmlReader::new(doc.as_bytes());
    let mut ev = RawEvent::new();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while reader.next_into(&mut ev).expect("well-formed input") {}
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over several parses: the global counter also
/// sees the test harness's own threads, so single runs can pick up a few
/// stray allocations; the minimum is the clean figure.
fn min_allocations_for(doc: &str) -> usize {
    (0..5).map(|_| allocations_for(doc)).min().unwrap()
}

#[test]
fn steady_state_event_loop_is_allocation_free() {
    let small = document(64);
    let large = document(512);
    // Warm up once so lazy runtime initialisation doesn't skew the counts.
    let _ = allocations_for(&small);
    let small_allocs = min_allocations_for(&small);
    let large_allocs = min_allocations_for(&large);
    // 448 extra books × ~60 events each: a single allocation per event (or
    // per element, or per attribute) would add tens of thousands here. The
    // slack of 4 only absorbs allocator-counter noise from other threads.
    assert!(
        large_allocs <= small_allocs + 4,
        "allocation count must not scale with event count: \
         64 books -> {small_allocs} allocs, 512 books -> {large_allocs} allocs"
    );
    // Sanity bound: the warm-up itself (scanner buffer, symbol table, first
    // growth of each recycled buffer) stays schema-sized.
    assert!(
        small_allocs < 100,
        "warm-up allocations unexpectedly large: {small_allocs}"
    );

    // --- Tape replay (the sharded replay core) is allocation-free. ---
    // Record once (allocates: arena growth, event vector), then replay
    // through borrowed views and touch every payload: the replay loop must
    // not allocate at all. Minimum over several runs filters allocator
    // noise from harness threads, like above.
    let mut reader = XmlReader::new(large.as_bytes());
    let mut tape = EventTape::new();
    while reader.advance().expect("well-formed input") {
        tape.push(&reader.view(), reader.event_start(), reader.position());
    }
    let replay_allocs = (0..5)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let mut touched = 0usize;
            for i in 0..tape.len() {
                let v = tape.view(i, SymbolRemap::identity());
                touched += v.text().len() + v.target().len();
                if v.kind() == RawEventKind::StartElement {
                    for attr in v.attrs() {
                        touched += attr.value.len();
                    }
                }
            }
            assert!(touched > 0, "replay must visit payloads");
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap();
    assert_eq!(
        replay_allocs, 0,
        "tape replay must be allocation-free per event"
    );
}
