//! The **Buffer Description Forest** (BDF, paper Sec. 3.2): for every
//! streaming scope variable, a projection tree describing which descendant
//! paths of that variable must be buffered, and how deeply.
//!
//! This is what improves on pure projection (\[10\] in the paper): data
//! consumed on the fly by streaming handlers never enters the BDF, and
//! buffered paths are projected further (only the descendants the buffered
//! expressions actually read are stored).

use flux_dtd::{Symbol, SymbolTable};
use flux_xquery::{AttrPart, Cond, Expr, Operand, Path, Step, VarName};
use std::fmt;

/// Index of a node in the [`SpecArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpecId(u32);

impl SpecId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One child edge of a spec node, keyed **natively by symbol**: the label
/// is resolved once, at plan-compile time, against the schema (FluX
/// engine) or the plan's own table (projection baseline) — there is no
/// per-run index rebuild.
#[derive(Debug, Clone)]
pub struct SpecEdge {
    /// The label's compile-time symbol; `None` when no symbol space covers
    /// it (a label the DTD does not declare — unreachable on a validated
    /// stream, reachable only through the string fallback).
    pub sym: Option<Symbol>,
    /// The label text, for explain output and the bounded-interner
    /// string-comparison fallback.
    pub label: String,
    pub child: SpecId,
}

/// One node of the buffer description forest.
#[derive(Debug, Clone, Default)]
pub struct SpecNode {
    /// Keep the entire subtree below this point.
    pub whole: bool,
    /// Keep text children at this point.
    pub text: bool,
    /// Attribute names of *this* element the plan reads (`$v/@a`), in
    /// insertion order. A scope shell keeps only these (all of them when
    /// `whole` is set) — an attribute name no expression reads never
    /// enters the buffer store, so an adversarial stream minting distinct
    /// names cannot grow the store's run-long dictionary.
    pub attrs: Vec<String>,
    /// Child labels to keep, with their own projections, in insertion
    /// order. Spec nodes have a handful of children at most, so descent is
    /// a short scan of integer comparisons.
    pub children: Vec<SpecEdge>,
}

/// Arena of spec nodes; scope variables own root specs.
#[derive(Debug, Clone, Default)]
pub struct SpecArena {
    nodes: Vec<SpecNode>,
}

impl SpecArena {
    pub fn new() -> Self {
        SpecArena { nodes: Vec::new() }
    }

    pub fn new_root(&mut self) -> SpecId {
        self.push(SpecNode::default())
    }

    fn push(&mut self, node: SpecNode) -> SpecId {
        let id = SpecId(u32::try_from(self.nodes.len()).expect("too many spec nodes"));
        self.nodes.push(node);
        id
    }

    pub fn node(&self, id: SpecId) -> &SpecNode {
        &self.nodes[id.index()]
    }

    fn node_mut(&mut self, id: SpecId) -> &mut SpecNode {
        &mut self.nodes[id.index()]
    }

    /// Gets or creates the child spec under `id` for `label`, keyed by its
    /// compile-time symbol `sym`.
    pub fn child(&mut self, id: SpecId, label: &str, sym: Option<Symbol>) -> SpecId {
        if let Some(edge) = self.nodes[id.index()]
            .children
            .iter()
            .find(|e| e.label == label)
        {
            return edge.child;
        }
        let child = self.push(SpecNode::default());
        self.node_mut(id).children.push(SpecEdge {
            sym,
            label: label.to_string(),
            child,
        });
        child
    }

    pub fn mark_whole(&mut self, id: SpecId) {
        self.node_mut(id).whole = true;
    }

    pub fn mark_text(&mut self, id: SpecId) {
        self.node_mut(id).text = true;
    }

    /// Records that the plan reads attribute `name` of this element.
    pub fn mark_attr(&mut self, id: SpecId, name: &str) {
        let attrs = &mut self.node_mut(id).attrs;
        if !attrs.iter().any(|a| a == name) {
            attrs.push(name.to_string());
        }
    }

    /// True when nothing below this spec needs buffering.
    pub fn is_empty_spec(&self, id: SpecId) -> bool {
        let n = self.node(id);
        !n.whole && !n.text && n.children.is_empty()
    }

    /// All distinct child labels mentioned anywhere in the forest, sorted.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        let mut seen: Vec<&str> = self
            .nodes
            .iter()
            .flat_map(|n| n.children.iter().map(|e| e.label.as_str()))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// Renders a spec subtree, for `explain` output (labels sorted for
    /// stable output).
    pub fn render(&self, id: SpecId) -> String {
        let mut out = String::new();
        self.render_into(id, &mut out);
        out
    }

    fn render_into(&self, id: SpecId, out: &mut String) {
        let n = self.node(id);
        if n.whole {
            out.push('*');
            return;
        }
        out.push('{');
        let mut first = true;
        if n.text {
            out.push_str("text()");
            first = false;
        }
        let mut attrs: Vec<&String> = n.attrs.iter().collect();
        attrs.sort();
        for attr in attrs {
            if !first {
                out.push(',');
            }
            out.push('@');
            out.push_str(attr);
            first = false;
        }
        let mut edges: Vec<&SpecEdge> = n.children.iter().collect();
        edges.sort_by(|a, b| a.label.cmp(&b.label));
        for edge in edges {
            if !first {
                out.push(',');
            }
            out.push_str(&edge.label);
            if !self.is_empty_spec(edge.child) {
                out.push(':');
                self.render_into(edge.child, out);
            }
            first = false;
        }
        out.push('}');
    }
}

impl fmt::Display for SpecArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpecArena({} nodes)", self.nodes.len())
    }
}

/// How a buffer-population step should treat a child element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecView {
    /// Copy everything below.
    Whole,
    /// Project per this spec node.
    Project(SpecId),
}

impl SpecView {
    /// Descends into a child labelled `label`: `None` means the child is
    /// projected away entirely.
    pub fn descend(self, arena: &SpecArena, label: &str) -> Option<SpecView> {
        match self {
            SpecView::Whole => Some(SpecView::Whole),
            SpecView::Project(id) => {
                let n = arena.node(id);
                if n.whole {
                    return Some(SpecView::Whole);
                }
                n.children
                    .iter()
                    .find(|e| e.label == label)
                    .map(|e| SpecView::Project(e.child))
            }
        }
    }

    /// Symbol-keyed variant of [`SpecView::descend`] — the hot-path form:
    /// a short scan of integer comparisons over the node's edges, against
    /// the symbols interned at plan-compile time.
    pub fn descend_sym(self, arena: &SpecArena, sym: Symbol) -> Option<SpecView> {
        match self {
            SpecView::Whole => Some(SpecView::Whole),
            SpecView::Project(id) => {
                let n = arena.node(id);
                if n.whole {
                    return Some(SpecView::Whole);
                }
                n.children
                    .iter()
                    .find(|e| e.sym == Some(sym))
                    .map(|e| SpecView::Project(e.child))
            }
        }
    }

    /// Descends on a stream event's name: symbols compare as integers; a
    /// [`SymbolTable::OVERFLOW`] name (bounded-interner streams) falls
    /// back to comparing the literal spelling, so capping the interner can
    /// never change which children are kept.
    pub fn descend_event(self, arena: &SpecArena, sym: Symbol, literal: &str) -> Option<SpecView> {
        if sym == SymbolTable::OVERFLOW {
            self.descend(arena, literal)
        } else {
            self.descend_sym(arena, sym)
        }
    }

    /// Whether text children are kept at this point.
    pub fn keeps_text(self, arena: &SpecArena) -> bool {
        match self {
            SpecView::Whole => true,
            SpecView::Project(id) => {
                let n = arena.node(id);
                n.whole || n.text
            }
        }
    }
}

/// Resolves a query path label to its compile-time symbol: the DTD's table
/// for the FluX engine, the plan's own interner for the projection
/// baseline. `None` marks a label no symbol space covers (undeclared in
/// the DTD), whose spec edge is reachable only via the string fallback.
pub type LabelResolver<'r> = dyn FnMut(&str) -> Option<Symbol> + 'r;

/// Collects the buffering needs of a normal-form XQuery expression into the
/// spec roots of the in-scope variables, interning every path label through
/// `resolver` so the spec edges are symbol-keyed at compile time.
///
/// `scopes` maps streaming-scope variables to their spec roots; loop
/// variables bound *inside* `expr` are tracked locally and resolve to spec
/// nodes reached through their source paths.
pub fn collect_needs(
    arena: &mut SpecArena,
    expr: &Expr,
    scopes: &[(VarName, SpecId)],
    resolver: &mut LabelResolver<'_>,
) {
    let mut local: Vec<(VarName, SpecId)> = Vec::new();
    collect(arena, expr, scopes, &mut local, resolver);
}

fn lookup(scopes: &[(VarName, SpecId)], local: &[(VarName, SpecId)], var: &str) -> Option<SpecId> {
    local
        .iter()
        .rev()
        .chain(scopes.iter().rev())
        .find(|(v, _)| v == var)
        .map(|&(_, id)| id)
}

/// Resolves the element-step prefix of a path, materialising spec nodes
/// along the way; returns the spec node of the final element position and
/// the trailing non-element step, if any.
fn resolve<'p>(
    arena: &mut SpecArena,
    path: &'p Path,
    scopes: &[(VarName, SpecId)],
    local: &[(VarName, SpecId)],
    resolver: &mut LabelResolver<'_>,
) -> Option<(SpecId, Option<&'p Step>)> {
    let mut current = lookup(scopes, local, &path.start)?;
    let (element_steps, tail) = match path.steps.last() {
        Some(s @ (Step::Attribute(_) | Step::Text)) => {
            (&path.steps[..path.steps.len() - 1], Some(s))
        }
        _ => (&path.steps[..], None),
    };
    for step in element_steps {
        let Step::Child(label) = step else {
            return None; // non-final attribute/text: rejected upstream
        };
        let sym = resolver(label);
        current = arena.child(current, label, sym);
    }
    Some((current, tail))
}

fn note_path(
    arena: &mut SpecArena,
    path: &Path,
    scopes: &[(VarName, SpecId)],
    local: &[(VarName, SpecId)],
    string_valued: bool,
    resolver: &mut LabelResolver<'_>,
) {
    let Some((node, tail)) = resolve(arena, path, scopes, local, resolver) else {
        return;
    };
    match tail {
        Some(Step::Text) => arena.mark_text(node),
        Some(Step::Attribute(name)) => {
            // Shells keep only the attributes the plan reads — record the
            // read so this one survives shell projection.
            arena.mark_attr(node, name);
        }
        _ => {
            if string_valued {
                // String values need all descendant text: keep the subtree.
                arena.mark_whole(node);
            }
        }
    }
}

fn collect_cond(
    arena: &mut SpecArena,
    cond: &Cond,
    scopes: &[(VarName, SpecId)],
    local: &[(VarName, SpecId)],
    resolver: &mut LabelResolver<'_>,
) {
    match cond {
        Cond::Cmp { lhs, rhs, .. } => {
            for operand in [lhs, rhs] {
                if let Operand::Path(p) = operand {
                    note_path(arena, p, scopes, local, true, resolver);
                }
            }
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_cond(arena, a, scopes, local, resolver);
            collect_cond(arena, b, scopes, local, resolver);
        }
        Cond::Not(c) => collect_cond(arena, c, scopes, local, resolver),
        // Existence checks only need the element shells materialised.
        Cond::Exists(p) | Cond::Empty(p) => note_path(arena, p, scopes, local, false, resolver),
        Cond::True | Cond::False => {}
    }
}

fn collect(
    arena: &mut SpecArena,
    expr: &Expr,
    scopes: &[(VarName, SpecId)],
    local: &mut Vec<(VarName, SpecId)>,
    resolver: &mut LabelResolver<'_>,
) {
    match expr {
        Expr::Empty | Expr::StringLit(_) => {}
        Expr::Var(v) => {
            if let Some(id) = lookup(scopes, local, v) {
                arena.mark_whole(id);
            }
        }
        Expr::Path(p) => {
            // Output position: nodes are copied (whole), attribute/text
            // reads are cheaper.
            note_path(arena, p, scopes, local, true, resolver);
        }
        Expr::Sequence(items) => {
            for item in items {
                collect(arena, item, scopes, local, resolver);
            }
        }
        Expr::Element {
            attributes,
            content,
            ..
        } => {
            for attr in attributes {
                for part in &attr.value {
                    if let AttrPart::Expr(e) = part {
                        collect(arena, e, scopes, local, resolver);
                    }
                }
            }
            collect(arena, content, scopes, local, resolver);
        }
        Expr::For {
            var,
            source,
            where_clause,
            body,
        } => {
            let bound = resolve(arena, source, scopes, local, resolver).and_then(|(node, tail)| {
                if tail.is_none() {
                    Some(node)
                } else {
                    None
                }
            });
            if let Some(cond) = where_clause {
                collect_cond(arena, cond, scopes, local, resolver);
            }
            match bound {
                Some(node) => {
                    local.push((var.clone(), node));
                    collect(arena, body, scopes, local, resolver);
                    local.pop();
                }
                None => {
                    // Unresolvable source (shadowing weirdness): be safe and
                    // keep everything reachable from the body's roots.
                    collect(arena, body, scopes, local, resolver);
                }
            }
        }
        Expr::Let { value, body, .. } => {
            collect(arena, value, scopes, local, resolver);
            collect(arena, body, scopes, local, resolver);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_cond(arena, cond, scopes, local, resolver);
            collect(arena, then_branch, scopes, local, resolver);
            collect(arena, else_branch, scopes, local, resolver);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_xquery::{normalize, parse_query};

    fn needs_of(query_body: &str) -> (SpecArena, SpecId, SymbolTable) {
        // The expression is a buffered body referencing $book; labels are
        // interned into a plan-local table, as the projection engine does.
        let expr = normalize(&parse_query(query_body).unwrap()).unwrap();
        let mut arena = SpecArena::new();
        let root = arena.new_root();
        let mut table = SymbolTable::new();
        collect_needs(
            &mut arena,
            &expr,
            &[("book".to_string(), root)],
            &mut |label| Some(table.intern(label)),
        );
        (arena, root, table)
    }

    #[test]
    fn author_loop_needs_whole_authors() {
        let (arena, root, _) = needs_of("<r>{ for $a in $book/author return $a }</r>");
        assert_eq!(arena.render(root), "{author:*}");
    }

    #[test]
    fn text_read_projects_to_text() {
        let (arena, root, _) = needs_of("<r>{ for $a in $book/author return $a/text() }</r>");
        assert_eq!(arena.render(root), "{author:{text()}}");
    }

    #[test]
    fn attribute_read_keeps_shell_only() {
        let (arena, root, _) = needs_of("<r>{ for $a in $book/author return $a/@id }</r>");
        assert_eq!(arena.render(root), "{author}");
    }

    #[test]
    fn comparison_operands_keep_subtree() {
        let (arena, root, _) =
            needs_of(r#"<r>{ if ($book/publisher = "AW") then "y" else () }</r>"#);
        assert_eq!(arena.render(root), "{publisher:*}");
    }

    #[test]
    fn exists_materialises_shell() {
        let (arena, root, _) = needs_of("<r>{ if (exists($book/editor)) then \"y\" else () }</r>");
        assert_eq!(arena.render(root), "{editor}");
    }

    #[test]
    fn whole_var_marks_root() {
        let (arena, root, _) = needs_of("<r>{$book}</r>");
        assert_eq!(arena.render(root), "*");
    }

    #[test]
    fn nested_projection() {
        let (arena, root, _) =
            needs_of("<r>{ for $a in $book/author return for $n in $a/last return $n/text() }</r>");
        assert_eq!(arena.render(root), "{author:{last:{text()}}}");
    }

    #[test]
    fn multiple_needs_union() {
        let (arena, root, _) = needs_of(
            r#"<r>{ for $a in $book/author return $a }{ $book/title/text() }{ if ($book/price < 10) then "c" else () }</r>"#,
        );
        assert_eq!(arena.render(root), "{author:*,price:*,title:{text()}}");
    }

    #[test]
    fn symbol_descent_matches_string_descent() {
        let (arena, root, table) = needs_of(
            r#"<r>{ for $a in $book/author return $a }{ $book/title/text() }{ if ($book/price < 10) then "c" else () }</r>"#,
        );
        let mut table = table;
        let view = SpecView::Project(root);
        for label in ["author", "title", "price", "unknown"] {
            let by_string = view.descend(&arena, label);
            let by_symbol = table
                .lookup(label)
                .and_then(|sym| view.descend_sym(&arena, sym));
            assert_eq!(by_string, by_symbol, "descent disagrees on `{label}`");
        }
        // A symbol interned later (not a spec label) descends nowhere.
        let stray = table.intern("stray");
        assert_eq!(view.descend_sym(&arena, stray), None);
        // The event form: symbols descend as integers, OVERFLOW falls back
        // to the literal spelling — with identical outcomes.
        let author = table.lookup("author").unwrap();
        assert_eq!(
            view.descend_event(&arena, author, ""),
            view.descend(&arena, "author")
        );
        assert_eq!(
            view.descend_event(&arena, SymbolTable::OVERFLOW, "author"),
            view.descend(&arena, "author"),
            "an overflowed name must still descend by its spelling"
        );
        assert_eq!(
            view.descend_event(&arena, SymbolTable::OVERFLOW, "unknown"),
            None
        );
    }

    #[test]
    fn undeclared_labels_keep_spec_structure() {
        // A resolver that knows no labels (a DTD declaring none of them)
        // still materialises the spec tree; symbol descent finds nothing,
        // string descent still works.
        let expr = normalize(&parse_query("<r>{ for $a in $book/author return $a }</r>").unwrap())
            .unwrap();
        let mut arena = SpecArena::new();
        let root = arena.new_root();
        collect_needs(
            &mut arena,
            &expr,
            &[("book".to_string(), root)],
            &mut |_| None,
        );
        assert_eq!(arena.render(root), "{author:*}");
        let view = SpecView::Project(root);
        assert!(view.descend(&arena, "author").is_some());
        assert_eq!(view.descend_sym(&arena, Symbol::from_index(7)), None);
    }

    #[test]
    fn spec_view_descend() {
        let (arena, root, _) = needs_of("<r>{ for $a in $book/author return $a/text() }</r>");
        let view = SpecView::Project(root);
        let author = view.descend(&arena, "author").unwrap();
        assert!(author.keeps_text(&arena));
        assert!(
            view.descend(&arena, "title").is_none(),
            "title projected away"
        );
        assert!(!view.keeps_text(&arena));
        // Whole view keeps descending as whole.
        assert_eq!(
            SpecView::Whole.descend(&arena, "anything"),
            Some(SpecView::Whole)
        );
    }
}
