//! Using XSAX standalone: validate a stream against a DTD and watch
//! `on-first` events fire at the earliest schema-implied positions.
//!
//! Run with: `cargo run --example validate_stream`

use fluxquery::dtd::{Dtd, PAPER_FIG1_DTD};
use fluxquery::xml::RawEventKind;
use fluxquery::xsax::{PastLabels, XsaxParser, XsaxStep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dtd = Dtd::parse(PAPER_FIG1_DTD)?;
    let book = dtd.lookup("book").expect("declared");
    let title = dtd.lookup("title").expect("declared");
    let author = dtd.lookup("author").expect("declared");

    let doc = "<bib><book><title>Streams</title><author>Koch</author>\
               <author>Scherzinger</author><publisher>VLDB</publisher>\
               <price>10</price></book></bib>";

    let mut parser = XsaxParser::new(doc.as_bytes(), &dtd)?;
    let past = parser.register_past(book, PastLabels::labels([title, author]))?;
    println!("registered past(title, author) on book as {past:?}\n");

    // The zero-copy pull loop: `next_step` advances, `view` borrows the
    // validated event in place.
    while let Some(step) = parser.next_step()? {
        match step {
            XsaxStep::Sax => {
                let v = parser.view();
                match v.kind() {
                    RawEventKind::StartElement => {
                        println!("<{}>", v.name_str(parser.symbols()))
                    }
                    RawEventKind::EndElement => {
                        println!("</{}>", v.name_str(parser.symbols()))
                    }
                    RawEventKind::Text => println!("  {:?}", v.text()),
                    _ => {}
                }
            }
            XsaxStep::Fire { id, depth } => {
                println!(">>> on-first past(title,author) fired ({id:?}, depth {depth})");
                println!(">>> the DTD now guarantees: no more titles or authors in this book");
            }
        }
    }

    // An invalid document: author before title violates Figure 1.
    let bad = "<bib><book><author>A</author><title>T</title>\
               <publisher>P</publisher><price>1</price></book></bib>";
    let mut parser = XsaxParser::new(bad.as_bytes(), &dtd)?;
    let err = loop {
        match parser.next_step() {
            Ok(Some(_)) => continue,
            Ok(None) => unreachable!("document is invalid"),
            Err(e) => break e,
        }
    };
    println!("\nvalidation rejects reordered input:\n  {err}");
    Ok(())
}
