//! Fixed-slot stage counters.
//!
//! Each counter struct is a block of plain `u64` fields owned by exactly
//! one thread (a scanner, a shard worker, the consumer): recording is
//! `self.field += n` behind an `#[inline(always)]` adder method named
//! after the field, and cross-thread aggregation happens once, at join
//! time, through [`ScanCounters::merge`]-style folds — never through
//! atomics on the hot path.
//!
//! With the `enabled` feature off every struct here is a zero-sized type
//! whose methods are empty inline functions; the compiler erases the
//! call sites, so the uninstrumented build carries no trace of them.
//!
//! The full catalogue (what each field means, where it is bumped) is
//! documented in `docs/OBSERVABILITY.md`.

/// Defines a counter struct twice: real `u64` fields plus adder/merge/
/// snapshot methods when the `enabled` feature is on, a zero-sized no-op
/// mirror with the same method surface when it is off.
macro_rules! counters {
    (
        $(#[$meta:meta])*
        pub struct $name:ident { $($(#[$fmeta:meta])* $field:ident),+ $(,)? }
    ) => {
        #[cfg(feature = "enabled")]
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            $($(#[$fmeta])* pub $field: u64,)+
        }

        #[cfg(feature = "enabled")]
        impl $name {
            $(
                #[doc = concat!("Adds `n` to `", stringify!($field), "`.")]
                #[inline(always)]
                pub fn $field(&mut self, n: u64) {
                    self.$field += n;
                }
            )+

            /// Folds `other` into `self`, field by field — the join-time
            /// aggregation of per-thread counters.
            #[inline]
            pub fn merge(&mut self, other: &Self) {
                $(self.$field += other.$field;)+
            }

            /// Named values in declaration order (empty when the
            /// `enabled` feature is off).
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }
        }

        #[cfg(not(feature = "enabled"))]
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        // Braced rather than a unit struct so consumer-side
        // `::default()` construction (required by the enabled twin) does
        // not trip clippy's `default_constructed_unit_structs`.
        pub struct $name {}

        #[cfg(not(feature = "enabled"))]
        impl $name {
            $(
                #[doc = concat!("Adds `n` to `", stringify!($field), "` (no-op: telemetry disabled).")]
                #[inline(always)]
                pub fn $field(&mut self, n: u64) {
                    let _ = n;
                }
            )+

            /// No-op merge (telemetry disabled).
            #[inline(always)]
            pub fn merge(&mut self, other: &Self) {
                let _ = other;
            }

            /// Always empty (telemetry disabled).
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                Vec::new()
            }
        }
    };
}

counters! {
    /// Scanner-level counters: the refill path and the structural prescan
    /// that runs inside it.
    pub struct ScanCounters {
        /// Source reads that delivered bytes into the scanner window.
        refills,
        /// Bytes swept by the vectorised structural prescan (every
        /// buffered byte is prescanned exactly once).
        prescan_bytes,
    }
}

counters! {
    /// Reader-level counters: how events were actually produced.
    pub struct ReaderCounters {
        /// Start tags parsed wholly from the prescanned window.
        fast_start_tags,
        /// Start tags that fell back to the byte-at-a-time parser.
        slow_start_tags,
        /// End tags parsed wholly from the prescanned window.
        fast_end_tags,
        /// End tags that fell back to the byte-at-a-time parser.
        slow_end_tags,
        /// Text or attribute payloads that required entity unescaping.
        entity_unescapes,
        /// Text runs delivered as borrowed scanner-window slices.
        borrowed_text_runs,
        /// Text segments copied into the recycled event buffer.
        copied_text_runs,
    }
}

counters! {
    /// One shard's lane in the parallel pipeline timeline. Workers fill
    /// the parse-side fields; the consumer fills the replay side when the
    /// shard is activated and exhausted. `*_ns` fields are span totals in
    /// nanoseconds relative to the pipeline epoch.
    pub struct ShardLane {
        /// Wall-clock span of this shard's fragment parse.
        parse_ns,
        /// Events recorded onto this shard's tape.
        events,
        /// Tape bytes produced (payload arena plus encoded headers).
        tape_bytes,
        /// Time the finished tape waited in the bounded channel before the
        /// consumer picked it up (producer-side backpressure: the channel
        /// is sized so senders never block, so dwell is the stall signal).
        dwell_ns,
        /// Time the consumer spent blocked in `recv` waiting for this
        /// shard's tape (consumer-side stall).
        recv_stall_ns,
        /// Number of blocking receives attributed to this shard.
        recv_stalls,
        /// Wall-clock span from shard activation to tape exhaustion — the
        /// consumer's replay time for this shard.
        replay_ns,
    }
}

counters! {
    /// XSAX validating-parser counters.
    pub struct XsaxCounters {
        /// Content-model DFA transitions taken (start/end/text checks).
        validation_steps,
        /// Tracker inspections deciding whether a past query can fire.
        past_fire_checks,
        /// `on-first` fire events delivered.
        fires,
        /// SAX events delivered downstream.
        sax_events,
    }
}

counters! {
    /// Runtime evaluator counters.
    pub struct RuntimeCounters {
        /// Stream events dispatched into plan handlers.
        handler_dispatches,
        /// `on-first` handler bodies evaluated.
        on_first_fires,
    }
}

counters! {
    /// Buffer-store traffic counters, owned by the memory tracker.
    pub struct BufferCounters {
        /// Node allocations charged to the buffer store.
        buffer_allocs,
        /// Node releases (scope frees) credited back.
        buffer_frees,
        /// In-place growth charges (text merged into an existing node).
        buffer_grows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adders_merge_and_snapshot_agree() {
        let mut a = ScanCounters::default();
        let mut b = ScanCounters::default();
        a.refills(2);
        a.prescan_bytes(100);
        b.refills(1);
        b.prescan_bytes(50);
        a.merge(&b);
        let snap = a.snapshot();
        if crate::enabled() {
            assert_eq!(
                snap,
                vec![("refills", 3), ("prescan_bytes", 150)],
                "merge must fold field by field"
            );
        } else {
            assert!(snap.is_empty(), "disabled counters snapshot to nothing");
            assert_eq!(std::mem::size_of::<ScanCounters>(), 0);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |r: u64, p: u64| {
            let mut c = ScanCounters::default();
            c.refills(r);
            c.prescan_bytes(p);
            c
        };
        let (x, y, z) = (mk(1, 10), mk(2, 20), mk(4, 40));
        let mut left = x;
        left.merge(&y);
        left.merge(&z);
        let mut right = z;
        right.merge(&x);
        right.merge(&y);
        assert_eq!(left.snapshot(), right.snapshot());
    }
}
