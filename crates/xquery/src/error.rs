//! Errors for XQuery parsing, normalization and evaluation.

use std::fmt;

/// Where in the query text an error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPos {
    /// Byte offset into the query text.
    pub offset: usize,
    pub line: u32,
    pub column: u32,
}

impl QueryPos {
    /// Computes line/column for `offset` in `input`.
    pub fn of(input: &str, offset: usize) -> QueryPos {
        let mut line = 1;
        let mut column = 1;
        for b in input.as_bytes()[..offset.min(input.len())].iter() {
            if *b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        QueryPos {
            offset,
            line,
            column,
        }
    }
}

impl fmt::Display for QueryPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// An error in query processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XQueryError {
    /// Syntax error while parsing.
    Parse { message: String, pos: QueryPos },
    /// The query is syntactically fine but outside the supported fragment.
    Unsupported { message: String },
    /// Normalization failure (e.g. a `let` variable used as a path root for
    /// a non-path value).
    Normalize { message: String },
    /// Evaluation failure (unbound variable, broken invariants).
    Eval { message: String },
}

impl XQueryError {
    pub fn unsupported(message: impl Into<String>) -> Self {
        XQueryError::Unsupported {
            message: message.into(),
        }
    }

    pub fn eval(message: impl Into<String>) -> Self {
        XQueryError::Eval {
            message: message.into(),
        }
    }
}

impl fmt::Display for XQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XQueryError::Parse { message, pos } => {
                write!(f, "XQuery syntax error at {pos}: {message}")
            }
            XQueryError::Unsupported { message } => {
                write!(f, "unsupported XQuery feature: {message}")
            }
            XQueryError::Normalize { message } => write!(f, "normalization error: {message}"),
            XQueryError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for XQueryError {}

pub type Result<T> = std::result::Result<T, XQueryError>;
