//! Phase one of the two-phase parser: the vectorised structural prescan.
//!
//! The prescan sweeps input bytes exactly once — as they arrive in the
//! scanner's refill path — and records the positions of the five byte
//! classes that determine XML structure (`<`, `>`, `"`/`'`, `&`, `\n`)
//! into a [`StructuralIndex`] of delta-encoded lanes. Phase two (the
//! scanner and reader) then hops structure-to-structure through the index
//! instead of inspecting bytes one at a time: text runs jump straight to
//! the next `<`, tag ends are found by walking `>` candidates against the
//! quote lane's parity (a `>` inside a quoted attribute value is not a tag
//! end), escape checks consult the `&` lane, and line/column accounting
//! folds into the newline lane instead of re-counting every consumed span.
//!
//! # Kernel dispatch
//!
//! Three kernels produce byte-identical indices:
//!
//! * **AVX2** (x86_64, runtime-detected) — 32 bytes per step;
//! * **NEON** (aarch64 baseline) — 16 bytes per step;
//! * **SWAR** (portable `u64`, reusing the [`crate::scan`] zero-byte
//!   mask) — 8 bytes per step, always available.
//!
//! The active kernel is chosen once per process ([`active_isa`]) and can
//! be overridden for CI and A/B testing:
//!
//! * `FLUX_FORCE_SWAR=1` — pin the portable fallback;
//! * `FLUX_FORCE_ISA=swar|avx2|neon` — pin a specific kernel (panics
//!   with a clear message if the host cannot run it).

mod index;
pub(crate) mod swar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

pub use index::{Class, DeltaLane, LaneCursor, StructuralIndex};

use std::sync::OnceLock;

/// The instruction-set architectures the prescan can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// AVX2 vectors, 32 bytes per step (x86_64 only).
    Avx2,
    /// NEON vectors, 16 bytes per step (aarch64 only).
    Neon,
    /// Portable `u64` SWAR, 8 bytes per step (everywhere).
    Swar,
}

impl Isa {
    /// Stable name for benchmark metadata and `--e8` output.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
            Isa::Swar => "swar-fallback",
        }
    }

    /// Whether this host can execute the kernel.
    pub fn available(self) -> bool {
        match self {
            Isa::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

static ACTIVE: OnceLock<Isa> = OnceLock::new();

/// The kernel every prescan in this process uses. Detected once, then
/// cached; honours `FLUX_FORCE_SWAR` / `FLUX_FORCE_ISA`.
pub fn active_isa() -> Isa {
    *ACTIVE.get_or_init(detect)
}

/// [`Isa::name`] of [`active_isa`] — the string surfaced in `--e8`
/// output and `BENCH_events.json` metadata.
pub fn active_isa_name() -> &'static str {
    active_isa().name()
}

fn detect() -> Isa {
    if std::env::var_os("FLUX_FORCE_SWAR").is_some_and(|v| v == "1") {
        return Isa::Swar;
    }
    if let Ok(forced) = std::env::var("FLUX_FORCE_ISA") {
        let isa = match forced.as_str() {
            "swar" => Isa::Swar,
            "avx2" => Isa::Avx2,
            "neon" => Isa::Neon,
            other => panic!("FLUX_FORCE_ISA={other}: expected swar, avx2 or neon"),
        };
        assert!(
            isa.available(),
            "FLUX_FORCE_ISA={forced}: this host cannot run the {forced} kernel"
        );
        return isa;
    }
    if Isa::Avx2.available() {
        return Isa::Avx2;
    }
    if cfg!(target_arch = "aarch64") {
        return Isa::Neon;
    }
    Isa::Swar
}

/// Every kernel this host can run — the equivalence tests compare each
/// against the SWAR reference in-process (the cached [`active_isa`] would
/// otherwise pin a whole test binary to one arm).
pub fn available_isas() -> Vec<Isa> {
    [Isa::Avx2, Isa::Neon, Isa::Swar]
        .into_iter()
        .filter(|isa| isa.available())
        .collect()
}

/// Sweeps `bytes` (whose first byte sits at absolute input offset
/// `base_abs`) with the active kernel, appending every structural
/// position to `idx`.
#[inline]
pub fn prescan_into(bytes: &[u8], base_abs: u64, idx: &mut StructuralIndex) {
    prescan_with(active_isa(), bytes, base_abs, idx)
}

/// [`prescan_into`] with an explicit kernel (must be [`Isa::available`]).
pub fn prescan_with(isa: Isa, bytes: &[u8], base_abs: u64, idx: &mut StructuralIndex) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => avx2::prescan(bytes, base_abs, idx),
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::prescan(bytes, base_abs, idx),
        _ => swar::prescan(bytes, base_abs, idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_isa_is_available_and_named() {
        let isa = active_isa();
        assert!(isa.available());
        assert!(["avx2", "neon", "swar-fallback"].contains(&active_isa_name()));
    }

    #[test]
    fn swar_is_always_listed() {
        assert!(available_isas().contains(&Isa::Swar));
    }

    fn lanes(isa: Isa, bytes: &[u8], base: u64) -> [Vec<u64>; 5] {
        let mut idx = StructuralIndex::new();
        prescan_with(isa, bytes, base, &mut idx);
        [
            std::iter::from_fn(|| idx.lt.pop()).collect(),
            std::iter::from_fn(|| idx.gt.pop()).collect(),
            std::iter::from_fn(|| idx.quote.pop()).collect(),
            std::iter::from_fn(|| idx.amp.pop()).collect(),
            std::iter::from_fn(|| idx.nl.pop()).collect(),
        ]
    }

    #[test]
    fn every_available_kernel_matches_swar() {
        let doc: Vec<u8> = b"<item key=\"v>al\" alt='&#38;'>line\n&amp;</item>"
            .iter()
            .copied()
            .cycle()
            .take(40 * 47)
            .collect();
        // Misaligned bases and non-multiple lengths exercise the tails.
        for (start, base) in [(0usize, 0u64), (3, 17), (7, 8 * 1024)] {
            let window = &doc[start..];
            let want = lanes(Isa::Swar, window, base);
            for isa in available_isas() {
                assert_eq!(lanes(isa, window, base), want, "{isa:?} diverges from SWAR");
            }
        }
    }
}
