//! The buffer-everything ablation must still be *correct* — it only loses
//! the memory advantage. Its output must match the scheduled engine on the
//! whole catalog.

use flux_bench::{catalog, Domain};
use fluxquery::{FluxEngine, Options};

#[test]
fn buffer_everything_is_correct_across_catalog() {
    for q in catalog() {
        let doc = q.domain.document(0.3, 5);
        let scheduled = FluxEngine::compile(q.query, q.domain.dtd(), &Options::default()).unwrap();
        let ablated =
            FluxEngine::compile(q.query, q.domain.dtd(), &Options::without_streaming()).unwrap();
        let (out_s, stats_s) = scheduled.run_to_string(&doc).unwrap();
        let (out_a, stats_a) = ablated.run_to_string(&doc).unwrap();
        assert_eq!(out_s, out_a, "{} diverged under the ablation", q.id);
        assert!(
            stats_s.peak_buffer_bytes <= stats_a.peak_buffer_bytes,
            "{}: scheduling must never buffer more ({} vs {})",
            q.id,
            stats_s.peak_buffer_bytes,
            stats_a.peak_buffer_bytes
        );
    }
}

#[test]
fn ablated_plans_have_no_streaming_handlers() {
    let q = flux_bench::Q3;
    let engine =
        FluxEngine::compile(q, Domain::BibFig1.dtd(), &Options::without_streaming()).unwrap();
    let printed = fluxquery::lang::pretty_flux(&engine.query().flux);
    assert!(
        !printed.contains("\n") || !printed.contains(" on book as"),
        "{printed}"
    );
    assert!(printed.contains("on-first"), "{printed}");
    assert!(engine.buffered_handler_count() >= 1);
}

#[test]
fn scheduling_gap_grows_with_document() {
    // The ablation's peak grows with document scale on the Fig. 1 DTD (it
    // buffers per book — actually per item — while the scheduled engine
    // stays flat).
    let q = flux_bench::Q3;
    let scheduled = FluxEngine::compile(q, Domain::BibWeak.dtd(), &Options::default()).unwrap();
    let ablated =
        FluxEngine::compile(q, Domain::BibWeak.dtd(), &Options::without_streaming()).unwrap();
    let doc = Domain::BibWeak.document(4.0, 9);
    let (_, s) = scheduled.run_to_string(&doc).unwrap();
    let (_, a) = ablated.run_to_string(&doc).unwrap();
    assert!(
        a.peak_buffer_bytes > s.peak_buffer_bytes * 20,
        "ablated {} vs scheduled {}",
        a.peak_buffer_bytes,
        s.peak_buffer_bytes
    );
}
