//! The per-shard worker: parses one chunk as a document fragment onto an
//! [`EventTape`] that the merger replays without re-parsing — or copying.
//!
//! Workers are where the expensive work happens — tokenisation, UTF-8
//! validation, entity unescaping, name interning — and they run fully in
//! parallel, each on its own thread, handing finished tapes to the
//! consumer through a channel as they complete. Each worker clones the
//! shared seed [`SymbolTable`]; clones preserve indices, so every symbol
//! below the seed length means the same name in every shard. Names first
//! seen *inside* a shard are shard-local and reported back via
//! [`ShardTape::new_names`] for the merger to re-intern (the only renaming
//! anywhere in the pipeline).
//!
//! Two properties make replay exact:
//!
//! * every tape event records the fragment reader's [`Position`] right
//!   after it was produced, so the merger can compose chunk-local
//!   positions into global ones and report errors at exactly the
//!   sequential reader's position;
//! * a parse error does not discard the tape — the valid prefix is kept
//!   and the error is attached as the tape's terminal, so the merger
//!   streams the same prefix a sequential reader would before surfacing
//!   the same error.

use flux_symbols::{Symbol, SymbolTable};
use flux_telemetry::{ReaderCounters, ScanCounters, ShardLane, Stopwatch};
use flux_xml::{
    BudgetCharge, BudgetKind, EventTape, MemoryBudget, Position, RawEventKind, ReaderConfig,
    XmlError, XmlReader,
};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

/// Everything one shard produces: its event tape, the names it interned
/// past the seed prefix, and how the chunk ended.
#[derive(Debug)]
pub(crate) struct ShardTape {
    pub tape: EventTape,
    /// Names interned beyond the seed prefix, in shard-local index order.
    pub new_names: Vec<String>,
    /// Chunk-local position at end of parse (composed by the merger into
    /// the next chunk's global base).
    pub end_pos: Position,
    /// Terminal parse error, chunk-local positions. The tape holds the
    /// valid prefix parsed before it.
    pub error: Option<XmlError>,
    /// This shard's timeline lane. The worker fills the parse side
    /// (`parse_ns`, `events`, `tape_bytes`); the consumer fills the replay
    /// side when it activates and exhausts the tape. Zero-sized unless the
    /// `telemetry` feature is on.
    pub lane: ShardLane,
    /// Epoch-relative instant the finished tape was handed to the channel;
    /// the consumer subtracts it from its pickup instant to get the
    /// channel-dwell span (always 0 when telemetry is off).
    pub ready_at_ns: u64,
    /// The fragment reader's scanner counters, harvested at join time.
    pub scan: ScanCounters,
    /// The fragment reader's fast/slow path counters.
    pub reader: ReaderCounters,
}

/// One link of a streamed chunk's segment chain: a partial tape handed
/// over every `segment_events` events so in-flight tape memory is bounded
/// by the segment size, not the chunk size.
///
/// `tape.new_names` is *incremental*: the names interned since the
/// previous segment of the same chunk (the worker's interner persists
/// across segments, so tape symbol indices grow monotonically through the
/// chunk and the consumer extends one cumulative remap per chunk).
/// `end_pos`, `error` and the telemetry counters are meaningful only on
/// the segment flagged `last`.
#[derive(Debug)]
pub(crate) struct Segment {
    pub tape: ShardTape,
    /// The chunk's final segment: carries the chunk-local end position,
    /// the terminal error (if any) and the whole chunk's counters.
    pub last: bool,
    /// Budget charge for this segment's tape bytes, released when the
    /// consumer finishes replaying it.
    pub charge: Option<BudgetCharge>,
}

/// Parses `chunk` as a fragment onto a tape. Infallible by design: errors
/// ride inside the returned [`ShardTape`] so the consumer can replay the
/// valid prefix first, exactly like the sequential reader streams it.
/// `epoch` is the pipeline-wide stopwatch copy all timeline points are
/// measured against.
pub(crate) fn parse_fragment(
    chunk: &[u8],
    reader_config: &ReaderConfig,
    seed: &SymbolTable,
    epoch: Stopwatch,
) -> ShardTape {
    debug_assert!(reader_config.fragment, "workers parse fragments");
    debug_assert!(
        reader_config.max_symbols.is_none(),
        "sharding uses unbounded interners; bound memory by shard instead"
    );
    let parse_started = epoch.elapsed_ns();
    let mut reader = XmlReader::with_symbols(chunk, reader_config.clone(), seed.clone());
    // Typical markup density: one event per ~20 bytes, payloads well under
    // half the chunk. Reserving avoids regrowth churn in the hot loop.
    let mut tape = EventTape::with_capacity(chunk.len() / 16, chunk.len() / 2);
    let mut error = None;
    loop {
        match reader.advance() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
        // The merger synthesises the document brackets itself.
        if matches!(
            reader.view().kind(),
            RawEventKind::StartDocument | RawEventKind::EndDocument
        ) {
            continue;
        }
        // Construct-start and just-after positions bracket the event; the
        // merger reports its document-level re-checks at the start — where
        // the sequential reader raises them.
        tape.push(&reader.view(), reader.event_start(), reader.position());
    }
    let end_pos = reader.position();
    let table = reader.symbols();
    let new_names: Vec<String> = (seed.len()..table.len())
        .map(|i| table.name(Symbol::from_index(i)).to_string())
        .collect();
    // Two clock reads bracket the whole fragment parse; everything else
    // below folds to nothing when telemetry is off.
    let ready_at_ns = epoch.elapsed_ns();
    let mut lane = ShardLane::default();
    lane.parse_ns(ready_at_ns.saturating_sub(parse_started));
    lane.events(tape.len() as u64);
    lane.tape_bytes(tape.byte_size() as u64);
    ShardTape {
        scan: reader.scan_telemetry(),
        reader: reader.reader_telemetry(),
        tape,
        new_names,
        end_pos,
        error,
        lane,
        ready_at_ns,
    }
}

/// Names interned by `reader` beyond index `from` (exclusive upper bound
/// is the table's current length, which is also returned).
fn names_since<R: std::io::Read>(reader: &XmlReader<R>, from: usize) -> (Vec<String>, usize) {
    let table = reader.symbols();
    let names = (from..table.len())
        .map(|i| table.name(Symbol::from_index(i)).to_string())
        .collect();
    (names, table.len())
}

/// When a streamed worker flushes a partial tape: after `events` events
/// or — for payload-heavy content that would inflate the per-segment
/// footprint — once the segment's arena reaches `bytes`, whichever comes
/// first.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentLimits {
    pub events: usize,
    pub bytes: usize,
}

/// Parses `chunk` as a fragment, shipping the tape in segments bounded by
/// `limits` through `tx`. The send blocks when the consumer lags
/// `segment_queue` segments behind — that backpressure *is* the
/// tape-memory bound. A send error means the consumer is gone; the parse
/// is abandoned.
///
/// The final segment (`last == true`) carries the chunk-local end
/// position, the terminal error if the chunk was malformed, and the
/// fragment reader's full telemetry.
pub(crate) fn parse_segmented(
    chunk: &[u8],
    reader_config: &ReaderConfig,
    seed: &SymbolTable,
    epoch: Stopwatch,
    limits: SegmentLimits,
    budget: Option<&Arc<MemoryBudget>>,
    tx: &SyncSender<Segment>,
) {
    debug_assert!(reader_config.fragment, "workers parse fragments");
    let segment_events = limits.events.max(1);
    let segment_bytes = limits.bytes.max(1);
    let parse_started = epoch.elapsed_ns();
    let mut reader = XmlReader::with_symbols(chunk, reader_config.clone(), seed.clone());
    let seg_cap = segment_events.min(chunk.len() / 16 + 16);
    let fresh_tape = |cap: usize| EventTape::with_capacity(cap, cap * 24);
    let mut tape = fresh_tape(seg_cap);
    let mut names_reported = seed.len();
    let mut error = None;
    let mut total_events = 0u64;
    let mut total_tape_bytes = 0u64;
    loop {
        match reader.advance() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
        if matches!(
            reader.view().kind(),
            RawEventKind::StartDocument | RawEventKind::EndDocument
        ) {
            continue;
        }
        tape.push(&reader.view(), reader.event_start(), reader.position());
        if tape.len() >= segment_events || tape.byte_size() >= segment_bytes {
            let full = std::mem::replace(&mut tape, fresh_tape(seg_cap));
            let (new_names, reported) = names_since(&reader, names_reported);
            names_reported = reported;
            total_events += full.len() as u64;
            total_tape_bytes += full.byte_size() as u64;
            let charge = budget.map(|b| b.charge(BudgetKind::Tape, full.byte_size() as u64));
            let seg = Segment {
                tape: ShardTape {
                    tape: full,
                    new_names,
                    end_pos: reader.position(),
                    error: None,
                    lane: ShardLane::default(),
                    ready_at_ns: epoch.elapsed_ns(),
                    scan: ScanCounters::default(),
                    reader: ReaderCounters::default(),
                },
                last: false,
                charge,
            };
            if tx.send(seg).is_err() {
                return; // consumer dropped mid-stream
            }
        }
    }
    let end_pos = reader.position();
    let (new_names, _) = names_since(&reader, names_reported);
    let scan = reader.scan_telemetry();
    let reader_tel = reader.reader_telemetry();
    // Release the scanner window (and its budget charge) *before* handing
    // over the final segment: once the consumer sees it, this chunk's
    // parse must hold no memory.
    drop(reader);
    total_events += tape.len() as u64;
    total_tape_bytes += tape.byte_size() as u64;
    let ready_at_ns = epoch.elapsed_ns();
    let mut lane = ShardLane::default();
    lane.parse_ns(ready_at_ns.saturating_sub(parse_started));
    lane.events(total_events);
    lane.tape_bytes(total_tape_bytes);
    let charge = budget.map(|b| b.charge(BudgetKind::Tape, tape.byte_size() as u64));
    let _ = tx.send(Segment {
        tape: ShardTape {
            scan,
            reader: reader_tel,
            tape,
            new_names,
            end_pos,
            error,
            lane,
            ready_at_ns,
        },
        last: true,
        charge,
    });
}
