//! Errors produced by the XSAX validating parser.

use flux_xml::{Position, XmlError};
use std::fmt;

/// A parsing or validation failure.
#[derive(Debug)]
pub enum XsaxError {
    /// The underlying XML stream is malformed.
    Xml(XmlError),
    /// The stream is well-formed but violates the DTD.
    Validation { message: String, pos: Position },
    /// The parser was configured inconsistently (e.g. no root element known).
    Config { message: String },
}

impl fmt::Display for XsaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsaxError::Xml(e) => write!(f, "{e}"),
            XsaxError::Validation { message, pos } => {
                write!(f, "validation error at {pos}: {message}")
            }
            XsaxError::Config { message } => write!(f, "XSAX configuration error: {message}"),
        }
    }
}

impl std::error::Error for XsaxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XsaxError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for XsaxError {
    fn from(e: XmlError) -> Self {
        XsaxError::Xml(e)
    }
}

pub type Result<T> = std::result::Result<T, XsaxError>;
