//! Memory-architecture assertions across engines: the shapes the paper's
//! evaluation reports (FluX flat in document size; projection and DOM
//! linear; FluX ≤ projection ≤ DOM).

use flux_bench::{run_engine, run_engine_with, workload, Domain, Q3};
use fluxquery::{EngineKind, Options};

fn peak(kind: EngineKind, scale: f64) -> usize {
    let doc = Domain::BibWeak.document(scale, 42);
    run_engine(kind, Q3, Domain::BibWeak.dtd(), doc.as_bytes())
        .unwrap()
        .stats
        .peak_buffer_bytes
}

#[test]
fn flux_memory_flat_in_document_size() {
    let small = peak(EngineKind::Flux, 0.2);
    let large = peak(EngineKind::Flux, 4.0);
    // 20x the document, near-constant peak (different random book shapes
    // allow modest variation).
    assert!(
        (large as f64) < (small as f64) * 2.0,
        "flux peak grew with document size: {small} -> {large}"
    );
}

#[test]
fn dom_memory_linear_in_document_size() {
    let small = peak(EngineKind::Dom, 0.2);
    let large = peak(EngineKind::Dom, 4.0);
    assert!(
        large > small * 10,
        "dom peak should track document size: {small} -> {large}"
    );
}

#[test]
fn projection_memory_linear_but_below_dom() {
    let small = peak(EngineKind::Projection, 0.2);
    let large = peak(EngineKind::Projection, 4.0);
    assert!(
        large > small * 10,
        "projection peak should track document size: {small} -> {large}"
    );
    let dom = peak(EngineKind::Dom, 4.0);
    assert!(large <= dom, "projection {large} must not exceed dom {dom}");
}

#[test]
fn hierarchy_on_auction_join() {
    let q = flux_bench::catalog_query("AUC-JOIN");
    let doc = Domain::Auction.document(1.0, 7);
    let mut peaks = Vec::new();
    for kind in EngineKind::all() {
        let outcome = run_engine(kind, q.query, Domain::Auction.dtd(), doc.as_bytes()).unwrap();
        peaks.push((kind.label(), outcome.stats.peak_buffer_bytes));
    }
    let flux = peaks[0].1;
    let dom = peaks.iter().find(|(l, _)| *l == "dom").unwrap().1;
    assert!(
        flux < dom,
        "flux must buffer less than DOM on the join: {peaks:?}"
    );
}

#[test]
fn strong_dtd_strictly_cheaper_than_weak() {
    // The same query on equivalent data: schema knowledge must pay off.
    let weak_doc = Domain::BibWeak.document(1.0, 9);
    let strong_doc = Domain::BibFig1.document(1.0, 9);
    let weak = run_engine(
        EngineKind::Flux,
        Q3,
        Domain::BibWeak.dtd(),
        weak_doc.as_bytes(),
    )
    .unwrap()
    .stats
    .peak_buffer_bytes;
    let strong = run_engine(
        EngineKind::Flux,
        Q3,
        Domain::BibFig1.dtd(),
        strong_doc.as_bytes(),
    )
    .unwrap()
    .stats
    .peak_buffer_bytes;
    assert!(
        strong < weak,
        "Figure 1 DTD must reduce buffering: strong {strong} vs weak {weak}"
    );
}

#[test]
fn name_mint_adversary_flat_under_bounded_interner() {
    // The name-minting adversary grows the distinct-name vocabulary
    // linearly with the document. Under a bounded interner the engine's
    // peak buffer must stay flat regardless: minted names the query never
    // reads must not reach the buffer store's dictionary, and the stream
    // interner itself is capped.
    let w = workload("name_mint");
    assert!(w.adversarial_names, "registry marks the adversary");
    let peak = |scale: f64| {
        let doc = w.document(scale, 42);
        run_engine_with(
            EngineKind::Flux,
            w.query.expect("name_mint runs the engine tier"),
            w.dtd.expect("name_mint has a DTD"),
            doc.as_bytes(),
            &Options::with_max_symbols(64),
        )
        .unwrap()
        .stats
        .peak_buffer_bytes
    };
    let small = peak(0.5);
    let large = peak(8.0); // 16x the books — and 16x the minted vocabulary
    assert!(
        (large as f64) < (small as f64) * 2.0,
        "bounded-interner peak grew with minted names: {small} -> {large}"
    );
}

#[test]
fn total_buffer_traffic_reported() {
    let doc = Domain::BibWeak.document(1.0, 3);
    let outcome = run_engine(EngineKind::Flux, Q3, Domain::BibWeak.dtd(), doc.as_bytes()).unwrap();
    // Authors of every book pass through the buffer, so the total traffic
    // exceeds the peak.
    assert!(outcome.stats.total_buffered_bytes > outcome.stats.peak_buffer_bytes as u64);
    assert!(outcome.stats.events > 0);
    assert!(outcome.stats.output_bytes > 0);
}
