//! XSAX events and past-query registrations.

use flux_dtd::{Symbol, SymbolTable};
use flux_xml::XmlEvent;
use std::collections::BTreeSet;
use std::fmt;

/// Handle for a registered past query, assigned by
/// [`crate::XsaxParser::register_past`] in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PastId(pub u32);

impl PastId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The label set of a past query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastLabels {
    /// A finite set of child labels; may include [`SymbolTable::TEXT`],
    /// which can only become "past" at the closing tag when the element
    /// allows character data.
    Labels(BTreeSet<Symbol>),
    /// Everything below the element — fires only at the closing tag. Used
    /// when a handler needs the whole subtree (e.g. `{$x}`).
    All,
}

impl PastLabels {
    pub fn labels(syms: impl IntoIterator<Item = Symbol>) -> Self {
        PastLabels::Labels(syms.into_iter().collect())
    }

    /// True when the set mentions the text pseudo-label.
    pub fn mentions_text(&self) -> bool {
        match self {
            PastLabels::Labels(set) => set.contains(&SymbolTable::TEXT),
            PastLabels::All => true,
        }
    }
}

impl fmt::Display for PastLabels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PastLabels::Labels(set) => {
                write!(f, "past(")?;
                for (i, s) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            PastLabels::All => write!(f, "past(*)"),
        }
    }
}

/// An event produced by the XSAX parser: either an ordinary SAX event or a
/// fired past query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsaxEvent {
    Sax(XmlEvent),
    /// The registered query `id` fired for the instance of its element type
    /// at nesting `depth` (the depth of the element whose children are being
    /// tracked, root = 1).
    OnFirstPast {
        id: PastId,
        depth: usize,
    },
}

/// The result of one [`crate::XsaxParser::next_into`] pull — the
/// allocation-free counterpart of [`XsaxEvent`].
///
/// `Sax` means the caller's recycled [`flux_xml::RawEvent`] now holds the
/// next validated event; `Fire` is a fired past query (the buffer is left
/// untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsaxStep {
    Sax,
    /// The registered query `id` fired for the instance of its element type
    /// at nesting `depth` (root = 1).
    Fire {
        id: PastId,
        depth: usize,
    },
}

impl XsaxEvent {
    pub fn as_sax(&self) -> Option<&XmlEvent> {
        match self {
            XsaxEvent::Sax(ev) => Some(ev),
            XsaxEvent::OnFirstPast { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn past_labels_text_detection() {
        assert!(PastLabels::All.mentions_text());
        assert!(PastLabels::labels([SymbolTable::TEXT]).mentions_text());
        assert!(!PastLabels::labels([]).mentions_text());
    }

    #[test]
    fn as_sax_projection() {
        let ev = XsaxEvent::Sax(XmlEvent::StartDocument);
        assert!(ev.as_sax().is_some());
        let fire = XsaxEvent::OnFirstPast {
            id: PastId(0),
            depth: 1,
        };
        assert!(fire.as_sax().is_none());
    }
}
