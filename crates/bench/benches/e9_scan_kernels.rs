//! E9 — scan-kernel microbenches: the vectorised structural prescan
//! against the byte-hopping SWAR `find_byte` it replaced, across window
//! sizes that bracket the scanner's refill shapes.
//!
//! Three window sizes matter: *small* (a few cache lines — tail handling
//! and dispatch overhead dominate), *medium* (one refill — the scanner's
//! steady state), *large* (block prescans like the shard splitter's lazy
//! feed). `prescan/<isa>` rows measure each kernel this host can run, so
//! an AVX2 host reports the SWAR fallback next to the vector kernel and
//! the gap is visible in one table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flux_bench::Domain;
use flux_xml::scan::find_byte;
use flux_xml::simd::{available_isas, prescan_with, StructuralIndex};

const WINDOWS: [(&str, usize); 3] = [
    ("small_256B", 256),
    ("medium_8KiB", 8 << 10),
    ("large_256KiB", 256 << 10),
];

fn scan_kernels(c: &mut Criterion) {
    // Enough generated XML to slice every window out of real markup.
    let doc = Domain::BibFig1.document(16.0, 42);
    assert!(
        doc.len() >= WINDOWS[2].1,
        "document too small for the large window"
    );

    let mut group = c.benchmark_group("e9_scan_kernels");
    for (label, size) in WINDOWS {
        let window = &doc.as_bytes()[..size];
        group.throughput(Throughput::Bytes(size as u64));

        // The displaced baseline: hop `<` to `<` one SWAR probe at a time
        // (what the splitter and text scan did before the prescan).
        group.bench_with_input(
            BenchmarkId::new("find_byte_lt_hops", label),
            &window,
            |b, window| {
                b.iter(|| {
                    let mut hops = 0usize;
                    let mut at = 0usize;
                    while let Some(off) = find_byte(&window[at..], b'<') {
                        hops += 1;
                        at += off + 1;
                    }
                    hops
                })
            },
        );

        // One prescan row per kernel the host can run: all five lanes
        // indexed in a single sweep.
        for isa in available_isas() {
            group.bench_with_input(
                BenchmarkId::new(format!("prescan/{}", isa.name()), label),
                &window,
                |b, window| {
                    b.iter(|| {
                        let mut idx = StructuralIndex::new();
                        prescan_with(isa, window, 0, &mut idx);
                        idx.lt.pending() + idx.gt.pending()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, scan_kernels);
criterion_main!(benches);
