//! # flux_shard
//!
//! A parallel sharded streaming pipeline for multi-core event throughput.
//!
//! The FluXQuery stack treats the event stream as a single sequential
//! source; this crate parallelises the expensive part — parsing — while
//! keeping every consumer-visible property of the sequential reader:
//!
//! 1. **Split.** [`splitter::split_points`] scans the input buffer with
//!    the SWAR kernel and places chunk boundaries on safe element-tag `<`
//!    positions (never inside comments, CDATA, PIs or DOCTYPEs). Because
//!    boundaries sit on element tags, no token or text run ever straddles
//!    a seam.
//! 2. **Parse.** One fragment-mode [`flux_xml::XmlReader`] per chunk runs
//!    on its own `std::thread`, each seeded with a clone of the shared
//!    [`SymbolTable`] — clones preserve indices, so symbols agree across
//!    shards without renaming (names first seen inside a shard are
//!    re-interned by the merger, the only translation anywhere).
//! 3. **Stitch.** Each shard's tape implies a stack summary — the end
//!    tags that close elements opened in earlier shards (prefix closes)
//!    and the elements still open at its end (suffix opens). The merger
//!    replays the summaries against one running stack, re-establishing
//!    the global tag balance the fragment readers could not check
//!    locally.
//! 4. **Replay.** [`ShardedReader::next_into`] hands the stitched event
//!    sequence to the consumer through the same pull API as the
//!    sequential reader. Document-level rules the fragments relaxed
//!    (single root, no top-level text, DOCTYPE position, depth limit) are
//!    re-checked here, so the merged stream is event-for-event the
//!    sequential one. Downstream, `flux_xsax::XsaxParser::from_source`
//!    consumes this stream and carries its content-model DFA
//!    configuration across every shard seam — the single piece of
//!    cross-shard state — so validation verdicts stay exact.
//!
//! The trade-off is explicit: sharding buffers the whole input (plus the
//! per-shard event tapes), trading the sequential reader's token-bounded
//! memory for wall-clock throughput. Use it when the input is already a
//! byte buffer and cores are idle; stay sequential for unbounded streams.

pub mod splitter;
mod worker;

use flux_symbols::{Symbol, SymbolTable};
use flux_xml::{EventSource, Position, RawEvent, RawEventKind, ReaderConfig, Result, XmlError};
use worker::{parse_fragment, EncEvent, ShardEvents};

/// Configuration for [`ShardedReader`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested number of shards. The effective count may be lower when
    /// the input is small ([`ShardConfig::min_shard_bytes`]) or offers too
    /// few safe boundaries; `1` degenerates to a sequential fragment parse.
    pub shards: usize,
    /// Emit comment events (mirrors [`ReaderConfig::emit_comments`]).
    pub emit_comments: bool,
    /// Emit processing-instruction events.
    pub emit_processing_instructions: bool,
    /// Hard limit on element nesting depth, enforced globally at replay
    /// exactly like the sequential reader enforces it.
    pub max_depth: usize,
    /// Do not split below this many bytes per shard; tiny inputs are not
    /// worth the thread fan-out.
    pub min_shard_bytes: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        )
    }
}

impl ShardConfig {
    /// A configuration requesting `shards` parallel shards.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
            emit_comments: false,
            emit_processing_instructions: false,
            max_depth: ReaderConfig::default().max_depth,
            min_shard_bytes: 16 * 1024,
        }
    }

    fn reader_config(&self) -> ReaderConfig {
        ReaderConfig {
            emit_comments: self.emit_comments,
            emit_processing_instructions: self.emit_processing_instructions,
            // Local depth can only underestimate global depth; the exact
            // global limit is enforced at replay.
            max_depth: self.max_depth,
            max_symbols: None,
            fragment: true,
        }
    }
}

/// One shard's tape, ready for replay.
struct ReplayShard {
    events: Vec<EncEvent>,
    attrs: Vec<worker::EncAttr>,
    arena: String,
    /// Merged-table symbols for shard-local indices past the seed prefix.
    remap: Vec<Symbol>,
    base_offset: u64,
}

impl ReplayShard {
    fn resolve(&self, sym: Symbol, seed_len: usize) -> Symbol {
        if sym.index() < seed_len {
            sym
        } else {
            self.remap[sym.index() - seed_len]
        }
    }
}

/// A parallel drop-in for [`flux_xml::XmlReader`] over an in-memory
/// document: same `next_into`/[`RawEvent`] pull API, same event sequence,
/// same well-formedness verdicts — parsed by N threads.
///
/// All parallel work happens on the first pull (split, parse, stitch);
/// subsequent pulls replay the pre-parsed tape, which is a symbol remap
/// and a buffer copy per event. Errors are terminal: after returning one,
/// the reader reports end of stream.
///
/// **Error timing differs from the sequential reader on invalid input.**
/// Parse and stitch errors surface on the *first* pull, before any event
/// is delivered, whereas the sequential reader streams the valid prefix
/// first and errors when it reaches the flaw. The verdict (accept/reject)
/// is identical either way, but a consumer that emits output incrementally
/// will have produced partial output in sequential mode and none in
/// sharded mode. Errors detected during replay itself (multiple roots,
/// top-level text, depth limit) do stream a valid prefix first.
pub struct ShardedReader {
    input: Vec<u8>,
    config: ShardConfig,
    symbols: SymbolTable,
    seed_len: usize,
    shards: Vec<ReplayShard>,
    prepared: bool,
    // Replay cursor and re-checked document state.
    shard_idx: usize,
    event_idx: usize,
    emitted_start: bool,
    finished: bool,
    depth: usize,
    root_seen: bool,
    root_done: bool,
}

impl ShardedReader {
    /// Creates a sharded reader over `input` with a fresh symbol table.
    pub fn new(input: Vec<u8>, config: ShardConfig) -> Self {
        Self::with_symbols(input, config, SymbolTable::new())
    }

    /// Creates a sharded reader whose interner is seeded with `symbols` —
    /// the sharded analogue of [`flux_xml::XmlReader::with_symbols`]. Seed
    /// with `flux_xsax::seeded_symbols(&dtd)` to feed
    /// `XsaxParser::from_source`.
    pub fn with_symbols(input: Vec<u8>, config: ShardConfig, symbols: SymbolTable) -> Self {
        let seed_len = symbols.len();
        ShardedReader {
            input,
            config,
            symbols,
            seed_len,
            shards: Vec::new(),
            prepared: false,
            shard_idx: 0,
            event_idx: 0,
            emitted_start: false,
            finished: false,
            depth: 0,
            root_seen: false,
            root_done: false,
        }
    }

    /// Slurps `src` and shards it. Sharding requires the whole buffer (the
    /// splitter needs random access), so this constructor is explicit
    /// about the memory trade-off.
    pub fn from_reader(mut src: impl std::io::Read, config: ShardConfig) -> Result<Self> {
        let mut input = Vec::new();
        src.read_to_end(&mut input)?;
        Ok(Self::new(input, config))
    }

    /// The shared symbol table: seed symbols plus every name the shards
    /// encountered, re-interned into one namespace.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of shards actually used. Zero until the first pull (the
    /// parallel parse runs lazily).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Best-effort position: the byte offset where the current shard
    /// starts (lines and columns are not tracked across shards).
    pub fn position(&self) -> Position {
        let offset = self
            .shards
            .get(self.shard_idx)
            .map(|s| s.base_offset)
            .unwrap_or(self.input.len() as u64);
        Position {
            offset,
            line: 1,
            column: 1,
        }
    }

    fn replay_error(&self, message: impl Into<String>) -> XmlError {
        XmlError::WellFormedness {
            message: message.into(),
            pos: self.position(),
        }
    }

    /// Split, parse in parallel, re-intern shard-local names and stitch
    /// the stack summaries. Runs once, on the first pull.
    fn prepare(&mut self) -> Result<()> {
        self.prepared = true;
        let max_by_size = (self.input.len() / self.config.min_shard_bytes.max(1)).max(1);
        let requested = self.config.shards.clamp(1, max_by_size);
        let points = splitter::split_points(&self.input, requested);
        let reader_config = self.config.reader_config();

        let input = &self.input[..];
        let seed = &self.symbols;
        let results: Vec<Result<ShardEvents>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, &start) in points.iter().enumerate().skip(1) {
                let end = points.get(i + 1).copied().unwrap_or(input.len());
                let chunk = &input[start..end];
                let cfg = &reader_config;
                handles.push(scope.spawn(move || parse_fragment(chunk, start as u64, cfg, seed)));
            }
            // Shard 0 parses on the current thread while the others run.
            let end = points.get(1).copied().unwrap_or(input.len());
            let first = parse_fragment(&input[..end], 0, &reader_config, seed);
            let mut results = vec![first];
            for h in handles {
                results.push(h.join().expect("shard worker panicked"));
            }
            results
        });

        // Report the error of the earliest failing shard: its chunk lies
        // entirely before every later shard's, so it is the first error
        // the sequential reader could have reached.
        let mut shards = Vec::with_capacity(results.len());
        for result in results {
            shards.push(result?);
        }

        // Re-intern shard-local names into the merged namespace, and
        // stitch each shard's stack summary against one running stack as
        // we go. Local mismatches were already rejected by the fragment
        // readers, so only seam-crossing closes need checking: a shard's
        // prefix closes pop the innermost elements left open by earlier
        // shards (always with an empty local stack, so summary order is
        // stream order), and its suffix opens land on top.
        let seed_len = self.seed_len;
        let mut stack: Vec<Symbol> = Vec::new();
        let mut replay: Vec<ReplayShard> = Vec::with_capacity(shards.len());
        for s in shards {
            let remap: Vec<Symbol> = s.new_names.iter().map(|n| self.symbols.intern(n)).collect();
            let resolve = |sym: Symbol| {
                if sym.index() < seed_len {
                    sym
                } else {
                    remap[sym.index() - seed_len]
                }
            };
            let pos = Position {
                offset: s.base_offset,
                line: 1,
                column: 1,
            };
            for &close in &s.closes {
                let close = resolve(close);
                match stack.pop() {
                    Some(open) if open == close => {}
                    Some(open) => {
                        return Err(XmlError::WellFormedness {
                            message: format!(
                                "mismatched end tag: expected </{}>, found </{}>",
                                self.symbols.name(open),
                                self.symbols.name(close)
                            ),
                            pos,
                        })
                    }
                    None => {
                        return Err(XmlError::WellFormedness {
                            message: format!(
                                "end tag </{}> with no open element",
                                self.symbols.name(close)
                            ),
                            pos,
                        })
                    }
                }
            }
            stack.extend(s.opens.iter().copied().map(resolve));
            replay.push(ReplayShard {
                remap,
                events: s.events,
                attrs: s.attrs,
                arena: s.arena,
                base_offset: s.base_offset,
            });
        }
        if !stack.is_empty() {
            return Err(XmlError::UnexpectedEof {
                expected: "closing tags for open elements",
                pos: Position {
                    offset: self.input.len() as u64,
                    line: 1,
                    column: 1,
                },
            });
        }

        self.shards = replay;
        Ok(())
    }

    /// Decodes one encoded event into `ev`.
    fn decode(&self, shard: &ReplayShard, e: &EncEvent, ev: &mut RawEvent) {
        ev.reset(e.kind);
        ev.set_name(shard.resolve(e.name, self.seed_len));
        ev.text_mut().push_str(&shard.arena[e.text.0..e.text.1]);
        ev.target_mut()
            .push_str(&shard.arena[e.target.0..e.target.1]);
        ev.set_has_internal_subset(e.has_internal_subset);
        ev.set_text_synthetic(e.text_synthetic);
        for attr in &shard.attrs[e.attrs.0..e.attrs.1] {
            let name = shard.resolve(attr.name, self.seed_len);
            ev.push_attr(name)
                .push_str(&shard.arena[attr.value.0..attr.value.1]);
        }
    }

    /// Pulls the next event into the caller-owned `ev` — the same contract
    /// as [`flux_xml::XmlReader::next_into`]. The first call triggers the
    /// parallel parse.
    pub fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        if self.finished {
            return Ok(false);
        }
        if !self.prepared {
            if let Err(e) = self.prepare() {
                self.finished = true;
                return Err(e);
            }
        }
        if !self.emitted_start {
            self.emitted_start = true;
            ev.reset(RawEventKind::StartDocument);
            return Ok(true);
        }
        loop {
            if self.shard_idx >= self.shards.len() {
                // End of the tape: the epilog checks.
                self.finished = true;
                if !self.root_seen {
                    return Err(XmlError::UnexpectedEof {
                        expected: "root element",
                        pos: self.position(),
                    });
                }
                ev.reset(RawEventKind::EndDocument);
                return Ok(true);
            }
            if self.event_idx >= self.shards[self.shard_idx].events.len() {
                self.shard_idx += 1;
                self.event_idx = 0;
                continue;
            }
            let e = self.shards[self.shard_idx].events[self.event_idx];
            self.event_idx += 1;
            // Re-check the document-level rules the fragment readers
            // relaxed, so verdicts match the sequential reader.
            match e.kind {
                RawEventKind::StartElement => {
                    if self.depth == 0 && self.root_done {
                        self.finished = true;
                        return Err(self.replay_error("multiple root elements"));
                    }
                    if self.depth >= self.config.max_depth {
                        self.finished = true;
                        return Err(self.replay_error(format!(
                            "element nesting deeper than the configured limit of {}",
                            self.config.max_depth
                        )));
                    }
                    self.depth += 1;
                    self.root_seen = true;
                }
                RawEventKind::EndElement => {
                    // Stitching guaranteed global balance.
                    self.depth -= 1;
                    if self.depth == 0 {
                        self.root_done = true;
                    }
                }
                RawEventKind::Text if self.depth == 0 => {
                    let shard = &self.shards[self.shard_idx];
                    let whitespace = shard.arena[e.text.0..e.text.1]
                        .bytes()
                        .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'));
                    if whitespace && !e.text_synthetic {
                        // Literal prolog/epilog whitespace: the sequential
                        // reader skips it silently. Whitespace produced by
                        // entity references or CDATA does NOT qualify —
                        // sequentially that is character data outside the
                        // root, an error.
                        continue;
                    }
                    self.finished = true;
                    let message = if self.root_seen {
                        "character data after the root element"
                    } else {
                        "character data before the root element"
                    };
                    return Err(self.replay_error(message));
                }
                RawEventKind::DoctypeDecl if self.root_seen => {
                    self.finished = true;
                    return Err(
                        self.replay_error("DOCTYPE declaration after the root element has started")
                    );
                }
                _ => {}
            }
            let shard = &self.shards[self.shard_idx];
            self.decode(shard, &e, ev);
            return Ok(true);
        }
    }
}

impl EventSource for ShardedReader {
    fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        ShardedReader::next_into(self, ev)
    }

    fn symbols(&self) -> &SymbolTable {
        ShardedReader::symbols(self)
    }

    fn position(&self) -> Position {
        ShardedReader::position(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_xml::{parse_to_events, XmlEvent};

    /// Collects the owned events a sharded reader produces.
    fn sharded_events(doc: &str, shards: usize) -> Result<Vec<XmlEvent>> {
        // min_shard_bytes = 1 so even tiny unit-test documents shard.
        let mut config = ShardConfig::new(shards);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
        let mut ev = RawEvent::new();
        let mut out = Vec::new();
        while reader.next_into(&mut ev)? {
            out.push(ev.to_xml_event(reader.symbols()));
        }
        Ok(out)
    }

    fn assert_equivalent(doc: &str, shards: usize) {
        let sequential = parse_to_events(doc).expect("sequential parse");
        let sharded = sharded_events(doc, shards).expect("sharded parse");
        assert_eq!(sequential, sharded, "doc: {doc}, shards: {shards}");
    }

    #[test]
    fn matches_sequential_events_small_docs() {
        let docs = [
            "<a/>",
            "<a><b>text</b><c/></a>",
            "<bib><book year=\"1994\"><title>T &amp; U</title></book><book/></bib>",
            "  <r>one<x/>two<y>three</y></r>  ",
            "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]><r><s/></r>",
        ];
        for doc in docs {
            for shards in [1, 2, 3, 8] {
                assert_equivalent(doc, shards);
            }
        }
    }

    #[test]
    fn matches_sequential_on_deep_nesting_across_seams() {
        // Elements that straddle several shard boundaries.
        let mut doc = String::new();
        for i in 0..40 {
            doc.push_str(&format!("<d{i}>filler text to widen the chunk "));
        }
        for i in (0..40).rev() {
            doc.push_str(&format!("</d{i}>"));
        }
        for shards in [2, 3, 8] {
            assert_equivalent(&doc, shards);
        }
    }

    #[test]
    fn shard_count_reported_after_first_pull() {
        let doc = "<a>".to_string() + &"<b>x</b>".repeat(500) + "</a>";
        let mut config = ShardConfig::new(4);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.into_bytes(), config);
        assert_eq!(reader.shard_count(), 0);
        let mut ev = RawEvent::new();
        assert!(reader.next_into(&mut ev).unwrap());
        assert_eq!(reader.shard_count(), 4);
    }

    #[test]
    fn new_names_from_different_shards_merge_consistently() {
        // The same late name in two different shards must resolve to one
        // merged symbol even though the shard-local indices differ.
        let mut doc = String::from("<r>");
        doc.push_str(&"<common>x</common>".repeat(50));
        doc.push_str("<zeta/>");
        doc.push_str(&"<common>x</common>".repeat(50));
        doc.push_str("<zeta/>");
        doc.push_str("</r>");
        let mut config = ShardConfig::new(3);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(doc.as_bytes().to_vec(), config);
        let mut ev = RawEvent::new();
        let mut zeta_syms = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement && reader.symbols().name(ev.name()) == "zeta"
            {
                zeta_syms.push(ev.name());
            }
        }
        assert_eq!(zeta_syms.len(), 2);
        assert_eq!(zeta_syms[0], zeta_syms[1], "one merged symbol per name");
    }

    #[test]
    fn seeded_symbols_are_preserved() {
        let mut seed = SymbolTable::new();
        let book = seed.intern("book");
        let doc = "<book/>";
        let mut reader =
            ShardedReader::with_symbols(doc.as_bytes().to_vec(), ShardConfig::new(2), seed);
        let mut ev = RawEvent::new();
        let mut seen = None;
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement {
                seen = Some(ev.name());
            }
        }
        assert_eq!(seen, Some(book));
    }

    #[test]
    fn errors_match_sequential_verdicts() {
        let bad_docs = [
            "<a><b></a></b>",    // mismatched
            "<a><b></b>",        // unclosed root
            "<a/><b/>",          // multiple roots
            "hello<a/>",         // text before root
            "<a/>hello",         // text after root
            "",                  // empty
            "&#32;<a/>",         // charref whitespace before root
            "<a/>&#x20;",        // charref whitespace after root
            "<![CDATA[ ]]><a/>", // CDATA whitespace before root
            "<a/><![CDATA[]]>",  // CDATA after root
        ];
        for doc in bad_docs {
            assert!(parse_to_events(doc).is_err(), "sequential accepts {doc:?}");
            for shards in [1, 2, 3] {
                assert!(
                    sharded_events(doc, shards).is_err(),
                    "sharded ({shards}) accepts {doc:?}"
                );
            }
        }
    }

    #[test]
    fn error_is_terminal_then_eof() {
        let mut config = ShardConfig::new(2);
        config.min_shard_bytes = 1;
        let mut reader = ShardedReader::new(b"<a></b>".to_vec(), config);
        let mut ev = RawEvent::new();
        let mut saw_error = false;
        loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => break,
                Err(_) => saw_error = true,
            }
        }
        assert!(saw_error);
        assert!(!reader.next_into(&mut ev).unwrap());
    }
}
