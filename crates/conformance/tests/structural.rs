//! Structural-prescan conformance over the malformed corpus and the
//! pathological workload generators.
//!
//! The proptest suite in `flux_xml` establishes kernel equivalence on
//! synthetic byte soup; this suite pins it on the repository's *real*
//! adversarial inputs — all corpus entries (truncations, stray bytes,
//! invalid UTF-8, constructs split mid-token) and the pathological
//! workload documents (deep nesting, attribute walls, text floods,
//! unbounded name minting). Every kernel this host can run must produce
//! a byte-identical structural index to the per-byte reference on each
//! of them, with the sweep both whole and split at refill-like offsets.
//! The CI legs that re-run the whole suite under `FLUX_FORCE_SWAR=1`
//! and `FLUX_FORCE_ISA=avx2` extend the same guarantee to the parser's
//! event streams.

use flux_conformance::corpus;
use flux_xml::simd::{available_isas, prescan_with, Isa, StructuralIndex};
use flux_xmlgen::{
    attr_heavy_string, deep_string, mint_string, text_heavy_string, AttrHeavyConfig, DeepConfig,
    MintConfig, TextHeavyConfig,
};

/// Per-byte reference, no kernels: lane order `<`, `>`, quote, `&`, `\n`.
fn naive_lanes(bytes: &[u8]) -> [Vec<u64>; 5] {
    let mut lanes: [Vec<u64>; 5] = Default::default();
    for (i, &b) in bytes.iter().enumerate() {
        let lane = match b {
            b'<' => 0,
            b'>' => 1,
            b'"' | b'\'' => 2,
            b'&' => 3,
            b'\n' => 4,
            _ => continue,
        };
        lanes[lane].push(i as u64);
    }
    lanes
}

fn drain(mut idx: StructuralIndex) -> [Vec<u64>; 5] {
    [
        std::iter::from_fn(|| idx.lt.pop()).collect(),
        std::iter::from_fn(|| idx.gt.pop()).collect(),
        std::iter::from_fn(|| idx.quote.pop()).collect(),
        std::iter::from_fn(|| idx.amp.pop()).collect(),
        std::iter::from_fn(|| idx.nl.pop()).collect(),
    ]
}

fn sweep(isa: Isa, bytes: &[u8], piece: usize) -> [Vec<u64>; 5] {
    let mut idx = StructuralIndex::new();
    if piece == 0 {
        prescan_with(isa, bytes, 0, &mut idx);
    } else {
        // Refill-shaped sweep: the scanner prescans each fill separately
        // into the shared index.
        let mut at = 0usize;
        while at < bytes.len() {
            let end = (at + piece).min(bytes.len());
            prescan_with(isa, &bytes[at..end], at as u64, &mut idx);
            at = end;
        }
    }
    drain(idx)
}

fn assert_kernels_conform(label: &str, bytes: &[u8]) {
    let want = naive_lanes(bytes);
    for isa in available_isas() {
        // Whole-input sweep plus two refill-like piece sizes: one that
        // misaligns every vector step, one block-sized.
        for piece in [0usize, 37, 4096] {
            assert_eq!(
                sweep(isa, bytes, piece),
                want,
                "{label}: {isa:?} diverges from the per-byte reference (piece {piece})"
            );
        }
    }
}

#[test]
fn every_corpus_entry_indexes_identically_on_all_kernels() {
    let entries = corpus();
    assert!(
        entries.len() >= 35,
        "corpus shrank to {} entries",
        entries.len()
    );
    for entry in &entries {
        assert_kernels_conform(entry.id, &entry.bytes);
    }
}

#[test]
fn pathological_workloads_index_identically_on_all_kernels() {
    let docs = [
        ("deep", deep_string(&DeepConfig::new(200, 8, 11))),
        (
            "attr_heavy",
            attr_heavy_string(&AttrHeavyConfig::new(40, 24, 12)),
        ),
        (
            "text_heavy",
            text_heavy_string(&TextHeavyConfig::new(40, 60, 13)),
        ),
        ("mint", mint_string(&MintConfig::new(40, 12, 14))),
    ];
    for (label, doc) in &docs {
        assert_kernels_conform(label, doc.as_bytes());
    }
}

#[test]
fn quoted_and_commented_decoys_index_every_occurrence() {
    // The index is intentionally context-free: a `>` inside a quoted
    // attribute value and a `<` inside a comment are still recorded —
    // context (quote parity, construct state) is phase two's job. Pin
    // that contract so a "helpful" kernel never starts filtering.
    let doc = br#"<a k="v>w" k2='x<y'><!-- <fake> & friends --><![CDATA[<z>]]>&amp;</a>"#;
    assert_kernels_conform("decoys", doc);
    let want = naive_lanes(doc);
    let lt_count = doc.iter().filter(|&&b| b == b'<').count();
    assert_eq!(want[0].len(), lt_count, "reference must count every `<`");
    assert!(lt_count > 4, "decoy doc must contain hidden `<` bytes");
}
