//! Parser for DTD declarations (`<!ELEMENT>`, `<!ATTLIST>`, `<!ENTITY>`).
//!
//! Accepts both standalone DTD files and the internal subset captured by the
//! XML reader's DOCTYPE handling.

use crate::content_model::{AttDef, AttDefault, ContentSpec, Particle};
use crate::error::{DtdError, Result};
use crate::symbol::SymbolTable;

/// A raw, unresolved declaration stream as parsed from DTD text.
#[derive(Debug, Default)]
pub struct ParsedDtd {
    pub elements: Vec<RawElementDecl>,
    pub attlists: Vec<RawAttlistDecl>,
    pub entities: Vec<(String, String)>,
}

#[derive(Debug)]
pub struct RawElementDecl {
    pub name: String,
    pub spec: ContentSpec,
}

#[derive(Debug)]
pub struct RawAttlistDecl {
    pub element: String,
    pub attributes: Vec<AttDef>,
}

pub struct DtdParser<'a> {
    input: &'a [u8],
    pos: usize,
    symbols: &'a mut SymbolTable,
}

impl<'a> DtdParser<'a> {
    pub fn new(input: &'a str, symbols: &'a mut SymbolTable) -> Self {
        DtdParser {
            input: input.as_bytes(),
            pos: 0,
            symbols,
        }
    }

    fn err(&self, message: impl Into<String>) -> DtdError {
        DtdError::at(message, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn looking_at(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.looking_at(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn require_ws(&mut self) -> Result<()> {
        if !matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            return Err(self.err("whitespace required"));
        }
        self.skip_ws();
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80 => {}
            _ => return Err(self.err("expected a name")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.') || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8(self.input[start..self.pos].to_vec())
            .map_err(|_| self.err("invalid UTF-8 in name"))
    }

    fn parse_quoted(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let text = String::from_utf8(self.input[start..self.pos].to_vec())
                    .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                self.pos += 1;
                return Ok(text);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated quoted literal"))
    }

    /// Parses the complete declaration stream.
    pub fn parse(&mut self) -> Result<ParsedDtd> {
        let mut out = ParsedDtd::default();
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Ok(out);
            }
            if self.looking_at("<!--") {
                self.pos += 4;
                match find_sub(&self.input[self.pos..], b"-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.looking_at("<?") {
                self.pos += 2;
                match find_sub(&self.input[self.pos..], b"?>") {
                    Some(end) => self.pos += end + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.looking_at("<!ELEMENT") {
                out.elements.push(self.parse_element_decl()?);
            } else if self.looking_at("<!ATTLIST") {
                out.attlists.push(self.parse_attlist_decl()?);
            } else if self.looking_at("<!ENTITY") {
                if let Some(entity) = self.parse_entity_decl()? {
                    out.entities.push(entity);
                }
            } else if self.looking_at("<!NOTATION") {
                // Parsed for tolerance, contents ignored.
                match find_sub(&self.input[self.pos..], b">") {
                    Some(end) => self.pos += end + 1,
                    None => return Err(self.err("unterminated NOTATION declaration")),
                }
            } else if self.peek() == Some(b'%') {
                return Err(
                    self.err("parameter entities are not supported; inline them before parsing")
                );
            } else {
                return Err(self.err("expected a DTD declaration"));
            }
        }
    }

    fn parse_element_decl(&mut self) -> Result<RawElementDecl> {
        self.expect("<!ELEMENT")?;
        self.require_ws()?;
        let name = self.parse_name()?;
        self.require_ws()?;
        let spec = self.parse_content_spec()?;
        self.skip_ws();
        self.expect(">")?;
        Ok(RawElementDecl { name, spec })
    }

    fn parse_content_spec(&mut self) -> Result<ContentSpec> {
        if self.eat("EMPTY") {
            return Ok(ContentSpec::Empty);
        }
        if self.eat("ANY") {
            return Ok(ContentSpec::Any);
        }
        if self.peek() != Some(b'(') {
            return Err(self.err("expected `(`, EMPTY or ANY"));
        }
        // Look ahead for #PCDATA to distinguish mixed content.
        let save = self.pos;
        self.pos += 1; // consume '('
        self.skip_ws();
        if self.looking_at("#PCDATA") {
            self.pos += "#PCDATA".len();
            return self.parse_mixed_tail();
        }
        self.pos = save;
        let particle = self.parse_cp()?;
        Ok(ContentSpec::Children(particle))
    }

    /// Parses the remainder of a mixed model after `(#PCDATA`.
    fn parse_mixed_tail(&mut self) -> Result<ContentSpec> {
        let mut names = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(")") {
                // `(#PCDATA)` may optionally be followed by `*`;
                // `(#PCDATA | a)*` requires it.
                let starred = self.eat("*");
                if !names.is_empty() && !starred {
                    return Err(self.err("mixed content with elements must end in `)*`"));
                }
                return Ok(ContentSpec::Mixed(names));
            }
            self.expect("|")?;
            self.skip_ws();
            let name = self.parse_name()?;
            let sym = self.symbols.intern(&name);
            if !names.contains(&sym) {
                names.push(sym);
            }
        }
    }

    /// Parses a content particle: name or parenthesised group, with an
    /// optional occurrence modifier.
    fn parse_cp(&mut self) -> Result<Particle> {
        self.skip_ws();
        let base = if self.eat("(") {
            self.parse_group()?
        } else {
            let name = self.parse_name()?;
            Particle::Name(self.symbols.intern(&name))
        };
        Ok(match self.peek() {
            Some(b'?') => {
                self.pos += 1;
                Particle::Opt(Box::new(base))
            }
            Some(b'*') => {
                self.pos += 1;
                Particle::Star(Box::new(base))
            }
            Some(b'+') => {
                self.pos += 1;
                Particle::Plus(Box::new(base))
            }
            _ => base,
        })
    }

    /// Parses the inside of `( ... )`: either a `,`-sequence or a
    /// `|`-choice (the XML spec forbids mixing them at one level).
    fn parse_group(&mut self) -> Result<Particle> {
        let first = self.parse_cp()?;
        self.skip_ws();
        match self.peek() {
            Some(b')') => {
                self.pos += 1;
                // A single-item group is a one-element sequence.
                Ok(first)
            }
            Some(b',') => {
                let mut items = vec![first];
                while self.eat(",") {
                    items.push(self.parse_cp()?);
                    self.skip_ws();
                }
                self.expect(")")?;
                Ok(Particle::Seq(items))
            }
            Some(b'|') => {
                let mut items = vec![first];
                while self.eat("|") {
                    items.push(self.parse_cp()?);
                    self.skip_ws();
                }
                self.expect(")")?;
                Ok(Particle::Choice(items))
            }
            _ => Err(self.err("expected `,`, `|` or `)` in content model")),
        }
    }

    fn parse_attlist_decl(&mut self) -> Result<RawAttlistDecl> {
        self.expect("<!ATTLIST")?;
        self.require_ws()?;
        let element = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(">") {
                return Ok(RawAttlistDecl {
                    element,
                    attributes,
                });
            }
            let name = self.parse_name()?;
            self.require_ws()?;
            let att_type = self.parse_att_type()?;
            self.require_ws()?;
            let default = self.parse_att_default()?;
            attributes.push(AttDef {
                name,
                att_type,
                default,
            });
        }
    }

    fn parse_att_type(&mut self) -> Result<String> {
        if self.peek() == Some(b'(') {
            // Enumeration: capture verbatim up to the closing paren.
            let start = self.pos;
            let mut depth = 0;
            while let Some(b) = self.bump() {
                if b == b'(' {
                    depth += 1;
                } else if b == b')' {
                    depth -= 1;
                    if depth == 0 {
                        return String::from_utf8(self.input[start..self.pos].to_vec())
                            .map_err(|_| self.err("invalid UTF-8 in enumeration"));
                    }
                }
            }
            return Err(self.err("unterminated enumeration"));
        }
        for t in [
            "CDATA", "IDREFS", "IDREF", "ID", "ENTITIES", "ENTITY", "NMTOKENS", "NMTOKEN",
        ] {
            if self.eat(t) {
                return Ok(t.to_string());
            }
        }
        if self.eat("NOTATION") {
            self.require_ws()?;
            if self.peek() != Some(b'(') {
                return Err(self.err("expected `(` after NOTATION"));
            }
            let start = self.pos;
            while let Some(b) = self.bump() {
                if b == b')' {
                    let inner = String::from_utf8(self.input[start..self.pos].to_vec())
                        .map_err(|_| self.err("invalid UTF-8 in notation list"))?;
                    return Ok(format!("NOTATION {inner}"));
                }
            }
            return Err(self.err("unterminated notation list"));
        }
        Err(self.err("expected an attribute type"))
    }

    fn parse_att_default(&mut self) -> Result<AttDefault> {
        if self.eat("#REQUIRED") {
            return Ok(AttDefault::Required);
        }
        if self.eat("#IMPLIED") {
            return Ok(AttDefault::Implied);
        }
        if self.eat("#FIXED") {
            self.require_ws()?;
            return Ok(AttDefault::Fixed(self.parse_quoted()?));
        }
        Ok(AttDefault::Default(self.parse_quoted()?))
    }

    /// Parses `<!ENTITY name "value">`; returns `None` for external or
    /// parameter entities (which are tolerated but unusable).
    fn parse_entity_decl(&mut self) -> Result<Option<(String, String)>> {
        self.expect("<!ENTITY")?;
        self.require_ws()?;
        if self.eat("%") {
            // Parameter entity declaration: skip to `>`.
            match find_sub(&self.input[self.pos..], b">") {
                Some(end) => self.pos += end + 1,
                None => return Err(self.err("unterminated entity declaration")),
            }
            return Ok(None);
        }
        let name = self.parse_name()?;
        self.require_ws()?;
        if self.looking_at("SYSTEM") || self.looking_at("PUBLIC") {
            match find_sub(&self.input[self.pos..], b">") {
                Some(end) => self.pos += end + 1,
                None => return Err(self.err("unterminated entity declaration")),
            }
            return Ok(None);
        }
        let value = self.parse_quoted()?;
        self.skip_ws();
        self.expect(">")?;
        Ok(Some((name, value)))
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &str) -> (ParsedDtd, SymbolTable) {
        let mut table = SymbolTable::new();
        let parsed = DtdParser::new(input, &mut table)
            .parse()
            .expect("parse failed");
        (parsed, table)
    }

    #[test]
    fn paper_weak_dtd() {
        let (parsed, table) = parse("<!ELEMENT bib (book)*>\n<!ELEMENT book (title|author)*>");
        assert_eq!(parsed.elements.len(), 2);
        assert_eq!(parsed.elements[0].name, "bib");
        match &parsed.elements[0].spec {
            ContentSpec::Children(p) => {
                assert_eq!(p.display(&table).to_string(), "book*");
            }
            other => panic!("unexpected spec {other:?}"),
        }
        match &parsed.elements[1].spec {
            ContentSpec::Children(p) => {
                assert_eq!(p.display(&table).to_string(), "(title|author)*");
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn paper_fig1_dtd() {
        let (parsed, table) = parse(
            "<!ELEMENT bib (book)*>\n<!ELEMENT book (title,(author+|editor+),publisher,price)>",
        );
        match &parsed.elements[1].spec {
            ContentSpec::Children(p) => {
                assert_eq!(
                    p.display(&table).to_string(),
                    "(title,(author+|editor+),publisher,price)"
                );
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn empty_and_any() {
        let (parsed, _) = parse("<!ELEMENT a EMPTY><!ELEMENT b ANY>");
        assert_eq!(parsed.elements[0].spec, ContentSpec::Empty);
        assert_eq!(parsed.elements[1].spec, ContentSpec::Any);
    }

    #[test]
    fn pcdata_only() {
        let (parsed, _) = parse("<!ELEMENT title (#PCDATA)>");
        assert_eq!(parsed.elements[0].spec, ContentSpec::Mixed(vec![]));
    }

    #[test]
    fn mixed_with_elements() {
        let (parsed, table) = parse("<!ELEMENT p (#PCDATA | em | strong)*>");
        match &parsed.elements[0].spec {
            ContentSpec::Mixed(names) => {
                let rendered: Vec<_> = names.iter().map(|&s| table.name(s)).collect();
                assert_eq!(rendered, vec!["em", "strong"]);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn mixed_without_star_rejected() {
        let mut table = SymbolTable::new();
        let err = DtdParser::new("<!ELEMENT p (#PCDATA | em)>", &mut table)
            .parse()
            .unwrap_err();
        assert!(err.message.contains(")*"));
    }

    #[test]
    fn nested_groups() {
        let (parsed, table) = parse("<!ELEMENT a ((b, c)+ | (d?, e))*>");
        match &parsed.elements[0].spec {
            ContentSpec::Children(p) => {
                assert_eq!(p.display(&table).to_string(), "((b,c)+|(d?,e))*");
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn attlist_parsed() {
        let (parsed, _) = parse(
            r#"<!ELEMENT book (title)>
               <!ATTLIST book year CDATA #REQUIRED
                              id ID #IMPLIED
                              lang (en|de) "en"
                              rel CDATA #FIXED "canonical">"#,
        );
        let attlist = &parsed.attlists[0];
        assert_eq!(attlist.element, "book");
        assert_eq!(attlist.attributes.len(), 4);
        assert_eq!(attlist.attributes[0].name, "year");
        assert_eq!(attlist.attributes[0].default, AttDefault::Required);
        assert_eq!(attlist.attributes[1].att_type, "ID");
        assert_eq!(attlist.attributes[1].default, AttDefault::Implied);
        assert_eq!(attlist.attributes[2].att_type, "(en|de)");
        assert_eq!(
            attlist.attributes[2].default,
            AttDefault::Default("en".to_string())
        );
        assert_eq!(
            attlist.attributes[3].default,
            AttDefault::Fixed("canonical".to_string())
        );
    }

    #[test]
    fn entities_collected() {
        let (parsed, _) = parse(r#"<!ENTITY company "ACME Corp">"#);
        assert_eq!(
            parsed.entities,
            vec![("company".to_string(), "ACME Corp".to_string())]
        );
    }

    #[test]
    fn external_entity_skipped() {
        let (parsed, _) = parse(r#"<!ENTITY chap1 SYSTEM "chap1.xml">"#);
        assert!(parsed.entities.is_empty());
    }

    #[test]
    fn comments_and_pis_skipped() {
        let (parsed, _) = parse(
            "<!-- a comment with <!ELEMENT fake (x)> inside -->\n<?pi data?>\n<!ELEMENT real EMPTY>",
        );
        assert_eq!(parsed.elements.len(), 1);
        assert_eq!(parsed.elements[0].name, "real");
    }

    #[test]
    fn parameter_entities_rejected() {
        let mut table = SymbolTable::new();
        let err = DtdParser::new("%common;", &mut table).parse().unwrap_err();
        assert!(err.message.contains("parameter entities"));
    }

    #[test]
    fn garbage_rejected() {
        let mut table = SymbolTable::new();
        assert!(DtdParser::new("<!BOGUS x>", &mut table).parse().is_err());
    }

    #[test]
    fn single_name_group() {
        let (parsed, table) = parse("<!ELEMENT a (b)>");
        match &parsed.elements[0].spec {
            ContentSpec::Children(p) => {
                assert_eq!(p.display(&table).to_string(), "b");
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn whitespace_tolerance() {
        let (parsed, table) = parse("<!ELEMENT a ( b , c , d )>");
        match &parsed.elements[0].spec {
            ContentSpec::Children(p) => {
                assert_eq!(p.display(&table).to_string(), "(b,c,d)");
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn mixed_separators_rejected() {
        // The XML spec forbids mixing `,` and `|` at one group level.
        let mut table = SymbolTable::new();
        assert!(DtdParser::new("<!ELEMENT a (b, c | d)>", &mut table)
            .parse()
            .is_err());
    }
}
