//! # flux-xmlgen
//!
//! Deterministic synthetic data for tests, examples and benchmarks:
//!
//! * [`bib`] — bibliography documents in the paper's two content models
//!   (Sec. 2 weak DTD and Figure 1), standing in for the XML Query Use
//!   Cases' XMP data;
//! * [`auction`] — a compact XMark-style auction site for join workloads;
//! * [`pathological`] — adversarial shapes for the workload matrix (deep
//!   recursion, attribute-heavy, text-heavy, name-minting);
//! * [`mod@corpus`] — the malformed-input corpus with its expected-error
//!   manifest.
//!
//! All generation is seeded; the same configuration always yields the same
//! bytes, so experiments are reproducible.

pub mod auction;
pub mod bib;
pub mod corpus;
pub mod pathological;
pub mod stream;
pub mod text;

pub use auction::{auction_string, write_auction, AuctionConfig, AUCTION_DTD};
pub use bib::{bib_string, write_bib, BibConfig, BibMode};
pub use corpus::{corpus, CorpusEntry, ExpectedKind};
pub use pathological::{
    attr_heavy_string, deep_string, mint_string, text_heavy_string, AttrHeavyConfig, DeepConfig,
    MintConfig, TextHeavyConfig,
};
pub use stream::AuctionStream;
