//! Deterministic memory accounting and run statistics.
//!
//! The paper's evaluation metric is *buffer consumption*. We account every
//! byte that enters the buffer store (element shells, projected subtree
//! copies, text) and track the peak — a deterministic, allocator-independent
//! measure of what the engine architecture must hold in memory.

use std::time::Duration;

/// Tracks current and peak buffered memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    current_bytes: usize,
    peak_bytes: usize,
    current_nodes: usize,
    peak_nodes: usize,
    total_allocated_bytes: u64,
}

impl MemoryTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn allocate(&mut self, bytes: usize) {
        self.current_bytes += bytes;
        self.current_nodes += 1;
        self.total_allocated_bytes += bytes as u64;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        self.peak_nodes = self.peak_nodes.max(self.current_nodes);
    }

    /// Accounts growth of an existing node (e.g. text appended to a merged
    /// text node).
    pub fn grow(&mut self, bytes: usize) {
        self.current_bytes += bytes;
        self.total_allocated_bytes += bytes as u64;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
    }

    pub fn release(&mut self, bytes: usize) {
        debug_assert!(self.current_bytes >= bytes, "released more than allocated");
        self.current_bytes = self.current_bytes.saturating_sub(bytes);
        self.current_nodes = self.current_nodes.saturating_sub(1);
    }

    pub fn current_bytes(&self) -> usize {
        self.current_bytes
    }

    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    pub fn current_nodes(&self) -> usize {
        self.current_nodes
    }

    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// Total bytes ever allocated (allocation traffic, not residency).
    pub fn total_allocated_bytes(&self) -> u64 {
        self.total_allocated_bytes
    }
}

/// Statistics of one query execution.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Peak bytes held in buffers at any point during execution.
    pub peak_buffer_bytes: usize,
    /// Peak number of buffered nodes.
    pub peak_buffer_nodes: usize,
    /// Total buffer allocation traffic in bytes.
    pub total_buffered_bytes: u64,
    /// Bytes written to the output stream.
    pub output_bytes: u64,
    /// Input events processed (SAX + on-first).
    pub events: u64,
    /// Wall-clock execution time.
    pub duration: Duration,
}

impl RunStats {
    /// Rough throughput in events per second.
    pub fn events_per_second(&self) -> f64 {
        if self.duration.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.events as f64 / self.duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_peak_survives_release() {
        let mut t = MemoryTracker::new();
        t.allocate(100);
        t.allocate(50);
        assert_eq!(t.current_bytes(), 150);
        assert_eq!(t.peak_bytes(), 150);
        t.release(100);
        assert_eq!(t.current_bytes(), 50);
        assert_eq!(t.peak_bytes(), 150);
        t.allocate(30);
        assert_eq!(
            t.peak_bytes(),
            150,
            "peak unchanged below the high-water mark"
        );
        assert_eq!(t.total_allocated_bytes(), 180);
    }

    #[test]
    fn grow_counts_bytes_not_nodes() {
        let mut t = MemoryTracker::new();
        t.allocate(10);
        t.grow(5);
        assert_eq!(t.current_bytes(), 15);
        assert_eq!(t.current_nodes(), 1);
        assert_eq!(t.peak_nodes(), 1);
    }
}
