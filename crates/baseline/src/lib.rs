//! # flux-baseline
//!
//! The two comparison engines of the paper's evaluation:
//!
//! * [`DomEngine`] — materialise the whole document, then evaluate (the
//!   memory architecture of conventional main-memory XQuery engines);
//! * [`ProjectionEngine`] — stream, materialise only the query's projection
//!   paths, then evaluate (Marian & Siméon, the paper's reference \[10\]).
//!
//! Both use the same parser, tree and interpreter as the FluXQuery engine,
//! so measured differences reflect the *architecture* (what must be
//! buffered), not incidental implementation differences. Neither validates
//! against the DTD nor exploits it — that is precisely what FluXQuery adds.

pub mod dom;
pub mod error;
pub mod projection;

pub use dom::DomEngine;
pub use error::{BaselineError, Result};
pub use projection::ProjectionEngine;

use flux_xml::{Input, MemoryBudget, ReaderConfig, XmlError};
use std::io::Read;
use std::sync::Arc;

/// What [`resolve_input`] hands back: the opened byte source, the reader
/// configuration with the input's window and budget threaded in, and the
/// budget itself for post-run enforcement.
pub(crate) type ResolvedSource = (
    Box<dyn Read + Send>,
    ReaderConfig,
    Option<Arc<MemoryBudget>>,
);

/// Resolves a unified [`Input`] for a baseline run: opens the source
/// (path/gzip/stream), threads the input's window and budget into `config`
/// and hands back the budget so the caller can fold in the run's buffer
/// peak and enforce the limit post-run.
pub(crate) fn resolve_input(input: Input, mut config: ReaderConfig) -> Result<ResolvedSource> {
    config.window = input.window_bytes();
    let budget = input.memory_budget().cloned();
    config.budget = budget.clone();
    let reader = input.into_source().map_err(XmlError::from)?.into_reader();
    Ok((reader, config, budget))
}

/// Post-run budget enforcement shared by both baselines: fold the
/// evaluator's buffer peak into the budget, then check the limit.
pub(crate) fn enforce_budget(
    budget: Option<Arc<MemoryBudget>>,
    peak_buffer_bytes: usize,
) -> Result<()> {
    if let Some(b) = budget {
        b.record_peak(flux_xml::BudgetKind::Buffer, peak_buffer_bytes as u64);
        b.check()?;
    }
    Ok(())
}
