//! Using XSAX standalone: validate a stream against a DTD and watch
//! `on-first` events fire at the earliest schema-implied positions.
//!
//! Run with: `cargo run --example validate_stream`

use fluxquery::dtd::{Dtd, PAPER_FIG1_DTD};
use fluxquery::xml::XmlEvent;
use fluxquery::xsax::{PastLabels, XsaxEvent, XsaxParser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dtd = Dtd::parse(PAPER_FIG1_DTD)?;
    let book = dtd.lookup("book").expect("declared");
    let title = dtd.lookup("title").expect("declared");
    let author = dtd.lookup("author").expect("declared");

    let doc = "<bib><book><title>Streams</title><author>Koch</author>\
               <author>Scherzinger</author><publisher>VLDB</publisher>\
               <price>10</price></book></bib>";

    let mut parser = XsaxParser::new(doc.as_bytes(), &dtd)?;
    let past = parser.register_past(book, PastLabels::labels([title, author]))?;
    println!("registered past(title, author) on book as {past:?}\n");

    while let Some(event) = parser.next()? {
        match event {
            XsaxEvent::Sax(XmlEvent::StartElement { name, .. }) => println!("<{name}>"),
            XsaxEvent::Sax(XmlEvent::EndElement { name }) => println!("</{name}>"),
            XsaxEvent::Sax(XmlEvent::Text(t)) => println!("  {t:?}"),
            XsaxEvent::OnFirstPast { id, depth } => {
                println!(">>> on-first past(title,author) fired ({id:?}, depth {depth})");
                println!(">>> the DTD now guarantees: no more titles or authors in this book");
            }
            _ => {}
        }
    }

    // An invalid document: author before title violates Figure 1.
    let bad = "<bib><book><author>A</author><title>T</title>\
               <publisher>P</publisher><price>1</price></book></bib>";
    let mut parser = XsaxParser::new(bad.as_bytes(), &dtd)?;
    let err = loop {
        match parser.next() {
            Ok(Some(_)) => continue,
            Ok(None) => unreachable!("document is invalid"),
            Err(e) => break e,
        }
    };
    println!("\nvalidation rejects reordered input:\n  {err}");
    Ok(())
}
