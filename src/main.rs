//! The `fluxquery` command-line tool: compile an XQuery against a DTD and
//! run it over an XML stream.
//!
//! ```text
//! fluxquery --query q.xq --dtd bib.dtd [--input doc.xml] [OPTIONS]
//!
//! Options:
//!   --query <FILE|STRING>   query file, or inline text when no such file exists
//!   --dtd <FILE|STRING>     DTD file, or inline DTD text
//!   --input <FILE|->        input document; `-` reads stdin (the default).
//!                           `.gz` files are decompressed transparently
//!   --output <FILE>         result stream (default: stdout)
//!   --engine <flux|dom|projection>   engine architecture (default: flux)
//!   --shards <N>            parse the input with N parallel shards (flux
//!                           engine only; files and stdin are streamed
//!                           chunk by chunk, never fully buffered)
//!   --window <BYTES>        scanner window size (accepts k/m/g suffixes)
//!   --memory-budget <BYTES> enforce a tracked-memory budget on the run:
//!                           scanner windows + in-flight shard tapes and
//!                           chunks + runtime buffers (k/m/g suffixes)
//!   --explain               print the compilation report instead of running
//!   --stats                 print run statistics to stderr
//!   --report <json|text>    print the pipeline telemetry RunReport to stderr
//!                           (flux engine only; measurements require a build
//!                           with `--features telemetry`)
//!   --no-optimizer          disable the algebraic optimizer (ablation)
//! ```

use fluxquery::{EngineKind, FluxEngine, Input, MemoryBudget, Options, Parallelism};
use std::io::Write;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReportFormat {
    Json,
    Text,
}

struct Args {
    query: Option<String>,
    dtd: Option<String>,
    input: Option<String>,
    output: Option<String>,
    engine: EngineKind,
    shards: Option<usize>,
    window: Option<usize>,
    memory_budget: Option<u64>,
    explain: bool,
    stats: bool,
    report: Option<ReportFormat>,
    no_optimizer: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fluxquery --query <FILE|STRING> --dtd <FILE|STRING> \
         [--input FILE|-] [--output FILE] [--engine flux|dom|projection] \
         [--shards N] [--window BYTES] [--memory-budget BYTES] \
         [--explain] [--stats] [--report json|text] [--no-optimizer]"
    );
    std::process::exit(2);
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (binary units).
fn parse_bytes(value: &str) -> Option<u64> {
    let value = value.trim();
    let (digits, multiplier) = match value.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&value[..i], 1024),
        (i, 'm') | (i, 'M') => (&value[..i], 1024 * 1024),
        (i, 'g') | (i, 'G') => (&value[..i], 1024 * 1024 * 1024),
        _ => (value, 1),
    };
    digits.parse::<u64>().ok().map(|n| n * multiplier)
}

fn parse_args() -> Args {
    let mut args = Args {
        query: None,
        dtd: None,
        input: None,
        output: None,
        engine: EngineKind::Flux,
        shards: None,
        window: None,
        memory_budget: None,
        explain: false,
        stats: false,
        report: None,
        no_optimizer: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--query" | "-q" => args.query = Some(value(&mut it)),
            "--dtd" | "-d" => args.dtd = Some(value(&mut it)),
            "--input" | "-i" => args.input = Some(value(&mut it)),
            "--output" | "-o" => args.output = Some(value(&mut it)),
            "--engine" | "-e" => {
                args.engine = match value(&mut it).as_str() {
                    "flux" => EngineKind::Flux,
                    "dom" => EngineKind::Dom,
                    "projection" => EngineKind::Projection,
                    other => {
                        eprintln!("unknown engine `{other}`");
                        usage()
                    }
                }
            }
            "--shards" => {
                args.shards = match value(&mut it).parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--shards expects a positive integer");
                        usage()
                    }
                }
            }
            "--window" => {
                args.window = match parse_bytes(&value(&mut it)) {
                    Some(n) if n > 0 => Some(n as usize),
                    _ => {
                        eprintln!("--window expects a byte count (k/m/g suffixes allowed)");
                        usage()
                    }
                }
            }
            "--memory-budget" => {
                args.memory_budget = match parse_bytes(&value(&mut it)) {
                    Some(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!("--memory-budget expects a byte count (k/m/g suffixes allowed)");
                        usage()
                    }
                }
            }
            "--explain" => args.explain = true,
            "--stats" => args.stats = true,
            "--report" => {
                args.report = match value(&mut it).as_str() {
                    "json" => Some(ReportFormat::Json),
                    "text" => Some(ReportFormat::Text),
                    other => {
                        eprintln!("--report expects `json` or `text`, got `{other}`");
                        usage()
                    }
                }
            }
            "--no-optimizer" => args.no_optimizer = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    args
}

/// Treats the value as a file path when such a file exists, inline text
/// otherwise.
fn file_or_inline(value: &str) -> std::io::Result<String> {
    if std::path::Path::new(value).is_file() {
        std::fs::read_to_string(value)
    } else {
        Ok(value.to_string())
    }
}

fn run() -> Result<(), String> {
    let args = parse_args();
    let (Some(query_arg), Some(dtd_arg)) = (&args.query, &args.dtd) else {
        usage();
    };
    let query = file_or_inline(query_arg).map_err(|e| format!("reading query: {e}"))?;
    let dtd = file_or_inline(dtd_arg).map_err(|e| format!("reading DTD: {e}"))?;

    if args.explain {
        let mut options = Options::default();
        if args.no_optimizer {
            options = Options::without_algebraic_optimizer();
        }
        let engine =
            FluxEngine::compile_with_schema(&query, &dtd, &options).map_err(|e| e.to_string())?;
        println!("{}", engine.explain());
        return Ok(());
    }

    // The unified ingestion entry point: `-` (or no --input) streams
    // stdin, paths get transparent `.gz` decompression, and the window /
    // budget knobs ride along. Nothing below ever materialises the input.
    let mut input = match args.input.as_deref() {
        Some("-") | None => Input::from_reader(std::io::stdin()),
        Some(path) => Input::from_path(path),
    };
    if let Some(window) = args.window {
        input = input.window(window);
    }
    let budget = args.memory_budget.map(MemoryBudget::new);
    if let Some(b) = &budget {
        input = input.budget(std::sync::Arc::clone(b));
    }
    let output: Box<dyn Write> = match &args.output {
        Some(path) => {
            Box::new(std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?)
        }
        None => Box::new(std::io::stdout()),
    };

    let stats = if args.engine == EngineKind::Flux {
        let mut options = Options::default();
        if args.no_optimizer {
            options = Options::without_algebraic_optimizer();
        }
        if let Some(n) = args.shards {
            options.parallelism = Parallelism::Shards(n);
        }
        let engine =
            FluxEngine::compile_with_schema(&query, &dtd, &options).map_err(|e| e.to_string())?;
        if let Some(format) = args.report {
            let (stats, report) = engine
                .run_input_with_report(input, output)
                .map_err(|e| e.to_string())?;
            // The report goes to stderr like `--stats`, keeping stdout a
            // pure result stream.
            match format {
                ReportFormat::Json => eprintln!("{}", report.to_json()),
                ReportFormat::Text => eprint!("{}", report.to_text()),
            }
            stats
        } else {
            engine.run_input(input, output).map_err(|e| e.to_string())?
        }
    } else {
        if args.shards.is_some() {
            return Err("--shards is only supported by the flux engine".to_string());
        }
        if args.report.is_some() {
            return Err("--report is only supported by the flux engine".to_string());
        }
        let engine = Options::new()
            .compile(args.engine, &query, &dtd)
            .map_err(|e| e.to_string())?;
        engine.run_input(input, output).map_err(|e| e.to_string())?
    };

    if let Some(b) = &budget {
        // The engine already failed the run if the budget was exceeded;
        // on success, report how close it came when asked for stats.
        if args.stats {
            eprintln!(
                "memory budget: peak {} of {} bytes",
                b.peak_total(),
                b.limit()
            );
        }
    }

    if args.stats {
        eprintln!();
        eprintln!("engine: {} | {stats}", args.engine.label());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fluxquery: {message}");
            ExitCode::FAILURE
        }
    }
}
