//! Abstract syntax of **FluX**, the paper's internal query language: XQuery
//! extended with the event-based `process-stream` construct (Sec. 2).

use flux_xquery::{AttrConstructor, Expr, VarName};
use std::collections::BTreeSet;
use std::fmt;

/// The label set of an `on-first past(...)` handler, at the string level
/// (symbols are resolved when the runtime registers the query with XSAX).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PastSet {
    /// Child element labels that must all be "past".
    pub labels: BTreeSet<String>,
    /// Whether character data must be past as well.
    pub text: bool,
    /// Whether the whole subtree must be complete (fires at the closing
    /// tag); subsumes `labels` and `text`.
    pub all: bool,
}

impl PastSet {
    pub fn all() -> PastSet {
        PastSet {
            all: true,
            ..PastSet::default()
        }
    }

    pub fn union(&mut self, other: &PastSet) {
        self.labels.extend(other.labels.iter().cloned());
        self.text |= other.text;
        self.all |= other.all;
    }

    pub fn insert_label(&mut self, label: impl Into<String>) {
        self.labels.insert(label.into());
    }

    /// An empty set fires immediately when the element opens.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() && !self.text && !self.all
    }
}

impl fmt::Display for PastSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all {
            return write!(f, "past(*)");
        }
        write!(f, "past(")?;
        let mut first = true;
        for label in &self.labels {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{label}")?;
            first = false;
        }
        if self.text {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "text()")?;
        }
        write!(f, ")")
    }
}

/// A handler inside a `process-stream` expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Handler {
    /// `on label as $var return body` — fires on each child with the label,
    /// in document order, with `$var` bound to the child.
    On {
        label: String,
        var: VarName,
        body: FluxExpr,
    },
    /// `on-first past(L) return body` — fires exactly once, at the earliest
    /// stream position where the DTD implies no further `L`-child can
    /// occur; the body is XQuery evaluated over buffered data.
    OnFirstPast { labels: PastSet, body: FluxExpr },
}

/// A FluX expression.
#[derive(Debug, Clone, PartialEq)]
pub enum FluxExpr {
    Empty,
    /// Adjacent expressions (element content).
    Sequence(Vec<FluxExpr>),
    StringLit(String),
    /// Copy the current handler variable's subtree to the output as its
    /// events arrive — the zero-buffer path (`on title as $t return {$t}`).
    StreamCopy(VarName),
    /// Direct element constructor around further FluX.
    Element {
        name: String,
        attributes: Vec<AttrConstructor>,
        content: Box<FluxExpr>,
    },
    /// `process-stream $var: handlers` — consume the children of the node
    /// bound to `$var`, dispatching to handlers.
    ProcessStream {
        var: VarName,
        handlers: Vec<Handler>,
    },
    /// A normal-form XQuery expression evaluated over buffered data (the
    /// bodies of `on-first` handlers, and constants).
    Buffered(Expr),
}

impl FluxExpr {
    /// Counts `process-stream` constructs (for tests and explain output).
    pub fn process_stream_count(&self) -> usize {
        match self {
            FluxExpr::Empty
            | FluxExpr::StringLit(_)
            | FluxExpr::StreamCopy(_)
            | FluxExpr::Buffered(_) => 0,
            FluxExpr::Sequence(items) => items.iter().map(FluxExpr::process_stream_count).sum(),
            FluxExpr::Element { content, .. } => content.process_stream_count(),
            FluxExpr::ProcessStream { handlers, .. } => {
                1 + handlers
                    .iter()
                    .map(|h| match h {
                        Handler::On { body, .. } | Handler::OnFirstPast { body, .. } => {
                            body.process_stream_count()
                        }
                    })
                    .sum::<usize>()
            }
        }
    }

    /// Whether this expression consumes a stream region: it contains a
    /// `process-stream` or stream-copy, so its output is produced over the
    /// *duration* of the current child rather than instantly at its start.
    pub fn has_spine(&self) -> bool {
        match self {
            FluxExpr::Empty | FluxExpr::StringLit(_) | FluxExpr::Buffered(_) => false,
            FluxExpr::StreamCopy(_) | FluxExpr::ProcessStream { .. } => true,
            FluxExpr::Sequence(items) => items.iter().any(FluxExpr::has_spine),
            FluxExpr::Element { content, .. } => content.has_spine(),
        }
    }

    /// Counts buffered (`on-first`) handlers — the buffering obligations of
    /// the query. Zero means fully streaming execution.
    pub fn buffered_handler_count(&self) -> usize {
        match self {
            FluxExpr::Empty
            | FluxExpr::StringLit(_)
            | FluxExpr::StreamCopy(_)
            | FluxExpr::Buffered(_) => 0,
            FluxExpr::Sequence(items) => items.iter().map(FluxExpr::buffered_handler_count).sum(),
            FluxExpr::Element { content, .. } => content.buffered_handler_count(),
            FluxExpr::ProcessStream { handlers, .. } => handlers
                .iter()
                .map(|h| match h {
                    Handler::On { body, .. } => body.buffered_handler_count(),
                    Handler::OnFirstPast { body, .. } => 1 + body.buffered_handler_count(),
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn past_set_display() {
        let mut set = PastSet::default();
        set.insert_label("title");
        set.insert_label("author");
        assert_eq!(set.to_string(), "past(author,title)");
        set.text = true;
        assert_eq!(set.to_string(), "past(author,title,text())");
        assert_eq!(PastSet::all().to_string(), "past(*)");
        assert_eq!(PastSet::default().to_string(), "past()");
    }

    #[test]
    fn past_set_union() {
        let mut a = PastSet::default();
        a.insert_label("x");
        let mut b = PastSet::default();
        b.insert_label("y");
        b.text = true;
        a.union(&b);
        assert!(a.labels.contains("x") && a.labels.contains("y"));
        assert!(a.text);
        assert!(!a.all);
    }

    #[test]
    fn counting() {
        let ps = FluxExpr::ProcessStream {
            var: "x".into(),
            handlers: vec![
                Handler::On {
                    label: "a".into(),
                    var: "v".into(),
                    body: FluxExpr::StreamCopy("v".into()),
                },
                Handler::OnFirstPast {
                    labels: PastSet::all(),
                    body: FluxExpr::Buffered(Expr::Empty),
                },
            ],
        };
        assert_eq!(ps.process_stream_count(), 1);
        assert_eq!(ps.buffered_handler_count(), 1);
    }
}
