//! The corpus manifest is honest: every entry really fails the sequential
//! reader with the documented error class and message fragment. (The
//! sharded byte-exactness half of the contract lives in `flux_shard` and
//! `flux_conformance`.)

use flux_xml::XmlReader;
use flux_xmlgen::corpus;

#[test]
fn every_entry_fails_sequentially_as_documented() {
    for entry in corpus() {
        let mut reader = XmlReader::new(entry.bytes.as_slice());
        let err = loop {
            match reader.advance() {
                Ok(true) => continue,
                Ok(false) => panic!(
                    "corpus entry `{}` parsed cleanly — it must be malformed",
                    entry.id
                ),
                Err(e) => break e,
            }
        };
        entry.check_error(&err);
        assert!(
            err.position().is_some(),
            "corpus entry `{}`: error carries no position: {err}",
            entry.id
        );
    }
}
