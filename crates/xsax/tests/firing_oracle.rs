//! Property tests of the `on-first` firing discipline over random content
//! models and random valid documents:
//!
//! 1. each registered query fires **exactly once** per element instance;
//! 2. the fire is never **premature**: after the fire seam, no child with a
//!    label in the past-set starts within the same instance (data would be
//!    incomplete — the bug class that matters for correctness);
//! 3. the fire happens **at or before** the closing tag.

// The oracle drives the deprecated owned-event wrapper on purpose: it is
// the simplest full-fidelity view of the event stream under test.
#![allow(deprecated)]

use flux_dtd::{Dtd, Symbol};
use flux_xml::XmlEvent;
use flux_xsax::{PastLabels, XsaxEvent, XsaxParser};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const LEAVES: &[&str] = &["a", "b", "c"];

/// Random content-model text over the leaf alphabet.
fn random_model(rng: &mut SmallRng, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.35) {
        return LEAVES[rng.gen_range(0..LEAVES.len())].to_string();
    }
    let combine = |parts: Vec<String>, sep: &str| format!("({})", parts.join(sep));
    match rng.gen_range(0..5) {
        0 => {
            let parts = (0..rng.gen_range(2..=3))
                .map(|_| random_model(rng, depth - 1))
                .collect();
            combine(parts, ",")
        }
        1 => {
            let parts = (0..rng.gen_range(2..=3))
                .map(|_| random_model(rng, depth - 1))
                .collect();
            combine(parts, "|")
        }
        2 => format!("({})?", random_model(rng, depth - 1)),
        3 => format!("({})*", random_model(rng, depth - 1)),
        _ => format!("({})+", random_model(rng, depth - 1)),
    }
}

/// Builds a DTD with `root (model)` and EMPTY leaves; returns None if the
/// model is degenerate (e.g. rejects everything reachable in short walks).
fn build_dtd(model: &str) -> Dtd {
    let text = format!(
        "<!ELEMENT root ({model})>\n<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>"
    );
    // Unused leaves would make root inference ambiguous: name it explicitly.
    Dtd::parse_with_root(&text, "root").expect("generated DTD parses")
}

/// Random valid child word: a random accepting walk on the DFA, bounded.
fn random_valid_word(dtd: &Dtd, rng: &mut SmallRng) -> Option<Vec<Symbol>> {
    let root = dtd.lookup("root")?;
    let dfa = &dtd.element(root)?.dfa;
    let mut state = dfa.start();
    let mut word = Vec::new();
    for _ in 0..24 {
        if dfa.is_accepting(state) && (rng.gen_bool(0.3) || word.len() >= 16) {
            return Some(word);
        }
        let transitions = dfa.transitions(state);
        // Prefer transitions that stay co-accessible.
        let viable: Vec<_> = transitions
            .iter()
            .filter(|&&(_, t)| dfa.is_co_accessible(t))
            .collect();
        if viable.is_empty() {
            return if dfa.is_accepting(state) {
                Some(word)
            } else {
                None
            };
        }
        let &&(sym, next) = &viable[rng.gen_range(0..viable.len())];
        word.push(sym);
        state = next;
    }
    let final_ok = dfa.is_accepting(state);
    final_ok.then_some(word)
}

fn word_to_doc(dtd: &Dtd, word: &[Symbol]) -> String {
    let mut doc = String::from("<root>");
    for &s in word {
        doc.push('<');
        doc.push_str(dtd.name(s));
        doc.push_str("/>");
    }
    doc.push_str("</root>");
    doc
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 150,
        ..ProptestConfig::default()
    })]

    #[test]
    fn firing_discipline(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = random_model(&mut rng, 3);
        let dtd = build_dtd(&model);
        let Some(word) = random_valid_word(&dtd, &mut rng) else {
            return Ok(()); // degenerate model, nothing to check
        };
        let doc = word_to_doc(&dtd, &word);
        let root = dtd.lookup("root").expect("declared");

        // Random nonempty past-set over the leaves.
        let mut labels = std::collections::BTreeSet::new();
        for leaf in LEAVES {
            if rng.gen_bool(0.5) {
                if let Some(sym) = dtd.lookup(leaf) {
                    labels.insert(sym);
                }
            }
        }
        if labels.is_empty() {
            labels.insert(dtd.lookup("a").expect("declared"));
        }
        let watched = labels.clone();

        let mut parser = XsaxParser::new(doc.as_bytes(), &dtd).expect("parser");
        parser
            .register_past(root, PastLabels::Labels(labels))
            .expect("register");

        let mut fires = 0usize;
        let mut saw_watched_after_fire = false;
        let mut root_closed_before_fire = false;
        while let Some(ev) = parser.next().unwrap_or_else(|e| panic!("{doc}: {e}")) {
            match ev {
                XsaxEvent::OnFirstPast { .. } => {
                    fires += 1;
                }
                XsaxEvent::Sax(XmlEvent::StartElement { ref name, .. }) if name != "root" => {
                    let sym = dtd.lookup(name).expect("declared");
                    if fires > 0 && watched.contains(&sym) {
                        saw_watched_after_fire = true;
                    }
                }
                XsaxEvent::Sax(XmlEvent::EndElement { ref name }) if name == "root"
                    && fires == 0 => {
                        root_closed_before_fire = true;
                    }
                _ => {}
            }
        }
        prop_assert_eq!(fires, 1, "exactly one fire per instance: {} {}", model, doc);
        prop_assert!(
            !saw_watched_after_fire,
            "premature fire: a watched label started after past() in model {} doc {}",
            model,
            doc
        );
        prop_assert!(
            !root_closed_before_fire,
            "fire must happen no later than the closing tag: {} {}",
            model,
            doc
        );
    }

    /// Validation agrees with the DFA: random valid words validate, and a
    /// random mutation that the DFA rejects is rejected by XSAX too.
    #[test]
    fn validation_matches_dfa(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = random_model(&mut rng, 3);
        let dtd = build_dtd(&model);
        let Some(word) = random_valid_word(&dtd, &mut rng) else {
            return Ok(());
        };
        let doc = word_to_doc(&dtd, &word);
        let mut parser = XsaxParser::new(doc.as_bytes(), &dtd).expect("parser");
        while let Some(_ev) = parser.next().unwrap_or_else(|e| panic!("valid doc rejected: {doc} ({model}): {e}")) {}

        // Mutate: append one extra child; check XSAX agrees with the DFA.
        let root = dtd.lookup("root").expect("declared");
        let dfa = &dtd.element(root).expect("declared").dfa;
        let extra = dtd.lookup(LEAVES[rng.gen_range(0..LEAVES.len())]).expect("leaf");
        let mut mutated = word.clone();
        mutated.push(extra);
        let dfa_accepts = dfa.accepts(mutated.iter().copied());
        let mutated_doc = word_to_doc(&dtd, &mutated);
        let mut parser = XsaxParser::new(mutated_doc.as_bytes(), &dtd).expect("parser");
        let mut rejected = false;
        loop {
            match parser.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => {
                    rejected = true;
                    break;
                }
            }
        }
        prop_assert_eq!(
            rejected,
            !dfa_accepts,
            "XSAX and DFA disagree on {} under {}",
            mutated_doc,
            model
        );
    }
}
