//! The per-shard worker: parses one chunk as a document fragment onto an
//! [`EventTape`] that the merger replays without re-parsing — or copying.
//!
//! Workers are where the expensive work happens — tokenisation, UTF-8
//! validation, entity unescaping, name interning — and they run fully in
//! parallel, each on its own thread, handing finished tapes to the
//! consumer through a channel as they complete. Each worker clones the
//! shared seed [`SymbolTable`]; clones preserve indices, so every symbol
//! below the seed length means the same name in every shard. Names first
//! seen *inside* a shard are shard-local and reported back via
//! [`ShardTape::new_names`] for the merger to re-intern (the only renaming
//! anywhere in the pipeline).
//!
//! Two properties make replay exact:
//!
//! * every tape event records the fragment reader's [`Position`] right
//!   after it was produced, so the merger can compose chunk-local
//!   positions into global ones and report errors at exactly the
//!   sequential reader's position;
//! * a parse error does not discard the tape — the valid prefix is kept
//!   and the error is attached as the tape's terminal, so the merger
//!   streams the same prefix a sequential reader would before surfacing
//!   the same error.

use flux_symbols::{Symbol, SymbolTable};
use flux_telemetry::{ReaderCounters, ScanCounters, ShardLane, Stopwatch};
use flux_xml::{EventTape, Position, RawEventKind, ReaderConfig, XmlError, XmlReader};

/// Everything one shard produces: its event tape, the names it interned
/// past the seed prefix, and how the chunk ended.
#[derive(Debug)]
pub(crate) struct ShardTape {
    pub tape: EventTape,
    /// Names interned beyond the seed prefix, in shard-local index order.
    pub new_names: Vec<String>,
    /// Chunk-local position at end of parse (composed by the merger into
    /// the next chunk's global base).
    pub end_pos: Position,
    /// Terminal parse error, chunk-local positions. The tape holds the
    /// valid prefix parsed before it.
    pub error: Option<XmlError>,
    /// This shard's timeline lane. The worker fills the parse side
    /// (`parse_ns`, `events`, `tape_bytes`); the consumer fills the replay
    /// side when it activates and exhausts the tape. Zero-sized unless the
    /// `telemetry` feature is on.
    pub lane: ShardLane,
    /// Epoch-relative instant the finished tape was handed to the channel;
    /// the consumer subtracts it from its pickup instant to get the
    /// channel-dwell span (always 0 when telemetry is off).
    pub ready_at_ns: u64,
    /// The fragment reader's scanner counters, harvested at join time.
    pub scan: ScanCounters,
    /// The fragment reader's fast/slow path counters.
    pub reader: ReaderCounters,
}

/// Parses `chunk` as a fragment onto a tape. Infallible by design: errors
/// ride inside the returned [`ShardTape`] so the consumer can replay the
/// valid prefix first, exactly like the sequential reader streams it.
/// `epoch` is the pipeline-wide stopwatch copy all timeline points are
/// measured against.
pub(crate) fn parse_fragment(
    chunk: &[u8],
    reader_config: &ReaderConfig,
    seed: &SymbolTable,
    epoch: Stopwatch,
) -> ShardTape {
    debug_assert!(reader_config.fragment, "workers parse fragments");
    debug_assert!(
        reader_config.max_symbols.is_none(),
        "sharding uses unbounded interners; bound memory by shard instead"
    );
    let parse_started = epoch.elapsed_ns();
    let mut reader = XmlReader::with_symbols(chunk, reader_config.clone(), seed.clone());
    // Typical markup density: one event per ~20 bytes, payloads well under
    // half the chunk. Reserving avoids regrowth churn in the hot loop.
    let mut tape = EventTape::with_capacity(chunk.len() / 16, chunk.len() / 2);
    let mut error = None;
    loop {
        match reader.advance() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
        // The merger synthesises the document brackets itself.
        if matches!(
            reader.view().kind(),
            RawEventKind::StartDocument | RawEventKind::EndDocument
        ) {
            continue;
        }
        // Construct-start and just-after positions bracket the event; the
        // merger reports its document-level re-checks at the start — where
        // the sequential reader raises them.
        tape.push(&reader.view(), reader.event_start(), reader.position());
    }
    let end_pos = reader.position();
    let table = reader.symbols();
    let new_names: Vec<String> = (seed.len()..table.len())
        .map(|i| table.name(Symbol::from_index(i)).to_string())
        .collect();
    // Two clock reads bracket the whole fragment parse; everything else
    // below folds to nothing when telemetry is off.
    let ready_at_ns = epoch.elapsed_ns();
    let mut lane = ShardLane::default();
    lane.parse_ns(ready_at_ns.saturating_sub(parse_started));
    lane.events(tape.len() as u64);
    lane.tape_bytes(tape.byte_size() as u64);
    ShardTape {
        scan: reader.scan_telemetry(),
        reader: reader.reader_telemetry(),
        tape,
        new_names,
        end_pos,
        error,
        lane,
        ready_at_ns,
    }
}
