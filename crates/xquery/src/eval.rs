//! The streaming cursor evaluator: runs a [`CompiledExpr`] over an
//! in-memory [`Document`].
//!
//! Shared by three consumers with identical semantics:
//! * the DOM baseline engine (whole document materialised),
//! * the projection baseline engine (projected document materialised),
//! * the FluXQuery runtime's buffered execution (`on-first` handler bodies
//!   run over the buffer arena).
//!
//! Evaluation is the second stage of the compile-then-stream pipeline
//! (see [`compile`](crate::compile)): names arrive pre-resolved as
//! [`Symbol`](flux_xml::Symbol)s, variables as dense slots, and sequences
//! stream through [`SequenceCursor`]s instead of materialising `Vec`s —
//! `for`-bodies iterate as matches surface, predicates short-circuit via
//! cursor probing, and buffered subtrees copy out through the sink's
//! symbol fast path. All scratch (cursor stacks, string values, attribute
//! buffers) is pooled on the evaluator, so steady-state evaluation over
//! already-buffered data allocates nothing.
//!
//! Comparison semantics are XPath-style *general comparisons*: `A op B`
//! holds iff some pair of items satisfies `op`, numerically when both
//! values parse as numbers, else by string comparison.

use crate::ast::{CmpOp, ROOT_VAR};
use crate::compile::{
    compile_for_document, CompiledAttr, CompiledAttrPart, CompiledCond, CompiledExpr,
    CompiledOperand, CompiledPath, PathTail, SlotMap, Slots,
};
use crate::cursor::{CursorItem, CursorPool, ItemCursor, PathCursor, SequenceCursor};
use crate::error::{Result, XQueryError};
use flux_xml::tree::{Document, NodeId, NodeKind};
use flux_xml::{Attribute, XmlWriter};
use std::io::Write;

/// Output receiver for query results.
pub trait QuerySink {
    fn start_element(&mut self, name: &str, attrs: &[Attribute]) -> Result<()>;
    fn end_element(&mut self) -> Result<()>;
    fn text(&mut self, text: &str) -> Result<()>;

    /// Start tag of a buffered element node — the symbol fast path used
    /// when copying stored subtrees out. The default materialises owned
    /// strings through [`QuerySink::start_element`]; sinks that can
    /// resolve names straight from the document's table (the XML writer)
    /// override it to allocate nothing.
    fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        let attrs: Vec<Attribute> = doc
            .attributes(id)
            .iter()
            .map(|a| Attribute::new(doc.symbols().name(a.name), a.value.clone()))
            .collect();
        let name = doc
            .name(id)
            .ok_or_else(|| XQueryError::eval("start_element_node on a non-element node"))?;
        self.start_element(name, &attrs)
    }
}

impl<W: Write> QuerySink for XmlWriter<W> {
    fn start_element(&mut self, name: &str, attrs: &[Attribute]) -> Result<()> {
        XmlWriter::start_element(self, name, attrs)
            .map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }

    fn end_element(&mut self) -> Result<()> {
        XmlWriter::end_element(self).map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }

    fn text(&mut self, text: &str) -> Result<()> {
        XmlWriter::text(self, text).map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }

    fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        XmlWriter::start_element_node(self, doc, id)
            .map_err(|e| XQueryError::eval(format!("output error: {e}")))
    }
}

/// A sink that counts output bytes without storing them (benchmarks).
#[derive(Debug, Default)]
pub struct CountingSink {
    pub bytes: u64,
    pub events: u64,
    depth: usize,
}

impl CountingSink {
    /// The serialized-size model shared by both start paths: 2 bytes of
    /// tag punctuation, 4 per attribute (space, `=`, both quotes).
    fn count_start_tag(
        &mut self,
        name_len: usize,
        attr_lens: impl Iterator<Item = (usize, usize)>,
    ) {
        self.bytes += 2 + name_len as u64;
        for (name, value) in attr_lens {
            self.bytes += 4 + name as u64 + value as u64;
        }
        self.events += 1;
        self.depth += 1;
    }
}

impl QuerySink for CountingSink {
    fn start_element(&mut self, name: &str, attrs: &[Attribute]) -> Result<()> {
        self.count_start_tag(
            name.len(),
            attrs.iter().map(|a| (a.name.len(), a.value.len())),
        );
        Ok(())
    }

    fn end_element(&mut self) -> Result<()> {
        if self.depth == 0 {
            return Err(XQueryError::eval("unbalanced end element in output"));
        }
        self.depth -= 1;
        self.bytes += 3;
        self.events += 1;
        Ok(())
    }

    fn text(&mut self, text: &str) -> Result<()> {
        self.bytes += text.len() as u64;
        self.events += 1;
        Ok(())
    }

    fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        // Count through the symbol table without materialising anything.
        let name = doc
            .name(id)
            .ok_or_else(|| XQueryError::eval("start_element_node on a non-element node"))?;
        self.count_start_tag(
            name.len(),
            doc.attributes(id)
                .iter()
                .map(|a| (doc.symbols().name(a.name).len(), a.value.len())),
        );
        Ok(())
    }
}

/// A growable list of string values whose buffers are reused in place
/// (`clear` resets the length; the `String`s keep their capacity).
#[derive(Debug, Default)]
struct ValueBuf {
    strings: Vec<String>,
    len: usize,
}

impl ValueBuf {
    fn clear(&mut self) {
        self.len = 0;
    }

    fn push_slot(&mut self) -> &mut String {
        if self.len == self.strings.len() {
            self.strings.push(String::new());
        }
        let s = &mut self.strings[self.len];
        s.clear();
        self.len += 1;
        s
    }

    fn iter(&self) -> impl Iterator<Item = &str> {
        self.strings[..self.len].iter().map(String::as_str)
    }
}

/// A growable attribute list whose `Attribute` strings are reused in place.
#[derive(Debug, Default)]
struct AttrBuf {
    attrs: Vec<Attribute>,
    len: usize,
}

impl AttrBuf {
    fn clear(&mut self) {
        self.len = 0;
    }

    fn push_slot(&mut self) -> &mut Attribute {
        if self.len == self.attrs.len() {
            self.attrs
                .push(Attribute::new(String::new(), String::new()));
        }
        let a = &mut self.attrs[self.len];
        a.name.clear();
        a.value.clear();
        self.len += 1;
        a
    }

    fn as_slice(&self) -> &[Attribute] {
        &self.attrs[..self.len]
    }
}

/// The streaming evaluator. Owns every piece of evaluation scratch —
/// cursor stacks, atomization strings, comparison value lists, attribute
/// buffers — and recycles all of it across calls, so a long-lived
/// evaluator reaches an allocation-free steady state (proven by the
/// counting-allocator suite).
#[derive(Debug, Default)]
pub struct CursorEvaluator {
    pool: CursorPool,
    /// Pooled scratch strings (atomized node values).
    strings: Vec<String>,
    /// Comparison operand values, left and right.
    cmp_lhs: ValueBuf,
    cmp_rhs: ValueBuf,
    /// Pooled attribute lists for constructed elements.
    attr_bufs: Vec<AttrBuf>,
}

impl CursorEvaluator {
    pub fn new() -> Self {
        CursorEvaluator::default()
    }

    /// Evaluates a compiled expression over `doc` under `slots`, emitting
    /// results to `sink`.
    pub fn eval(
        &mut self,
        doc: &Document,
        expr: &CompiledExpr,
        slots: &mut Slots,
        sink: &mut impl QuerySink,
    ) -> Result<()> {
        match expr {
            CompiledExpr::Empty => Ok(()),
            CompiledExpr::StringLit(s) => sink.text(s),
            CompiledExpr::Var { slot, name } => {
                let node = bound(slots, *slot, name)?;
                copy_node(doc, node, sink)
            }
            CompiledExpr::Path(p) => {
                let start = bound(slots, p.start_slot, &p.start_name)?;
                let mut cursor = ItemCursor::new(doc, p, start, &mut self.pool);
                let result = loop {
                    match cursor.next_item() {
                        Some(CursorItem::Node(n)) => {
                            if let Err(e) = copy_node(doc, n, sink) {
                                break Err(e);
                            }
                        }
                        Some(CursorItem::Str(s)) => {
                            if let Err(e) = sink.text(s) {
                                break Err(e);
                            }
                        }
                        None => break Ok(()),
                    }
                };
                cursor.recycle(&mut self.pool);
                result
            }
            CompiledExpr::Sequence(items) => {
                for item in items {
                    self.eval(doc, item, slots, sink)?;
                }
                Ok(())
            }
            CompiledExpr::Element {
                name,
                attributes,
                content,
            } => {
                self.start_element_with_attrs(doc, &name.literal, attributes, slots, sink)?;
                self.eval(doc, content, slots, sink)?;
                sink.end_element()
            }
            CompiledExpr::For {
                var_slot,
                source,
                where_clause,
                body,
            } => {
                if source.tail != PathTail::None {
                    return Err(XQueryError::eval(format!(
                        "path {source} used where element nodes are required"
                    )));
                }
                let start = bound(slots, source.start_slot, &source.start_name)?;
                let mut cursor = PathCursor::new(doc, source, start, &mut self.pool);
                let result = loop {
                    let Some(node) = cursor.next_node() else {
                        break Ok(());
                    };
                    let shadowed = slots[*var_slot].replace(node);
                    let step = (|| -> Result<()> {
                        let keep = match where_clause {
                            Some(cond) => self.eval_cond(doc, cond, slots)?,
                            None => true,
                        };
                        if keep {
                            self.eval(doc, body, slots, sink)?;
                        }
                        Ok(())
                    })();
                    slots[*var_slot] = shadowed;
                    if let Err(e) = step {
                        break Err(e);
                    }
                };
                cursor.recycle(&mut self.pool);
                result
            }
            CompiledExpr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_cond(doc, cond, slots)? {
                    self.eval(doc, then_branch, slots, sink)
                } else {
                    self.eval(doc, else_branch, slots, sink)
                }
            }
        }
    }

    /// Evaluates attribute templates and opens an element — without the
    /// matching end tag, for callers (the runtime's plan executor) that
    /// close elements on their own schedule.
    pub fn start_element_with_attrs(
        &mut self,
        doc: &Document,
        name: &str,
        attributes: &[CompiledAttr],
        slots: &mut Slots,
        sink: &mut impl QuerySink,
    ) -> Result<()> {
        if attributes.is_empty() {
            return sink.start_element(name, &[]);
        }
        let mut buf = self.attr_bufs.pop().unwrap_or_default();
        buf.clear();
        let result = (|| -> Result<()> {
            for attr in attributes {
                let mut value = self.strings.pop().unwrap_or_default();
                value.clear();
                let filled = self.eval_attr_template(doc, &attr.value, slots, &mut value);
                let slot = buf.push_slot();
                slot.name.push_str(&attr.name);
                slot.value.push_str(&value);
                self.strings.push(value);
                filled?;
            }
            sink.start_element(name, buf.as_slice())
        })();
        self.attr_bufs.push(buf);
        result
    }

    /// Evaluates an attribute value template into `out` (cleared first).
    /// Items within one expression part join with single spaces, per
    /// XQuery attribute semantics.
    pub fn eval_attr_template(
        &mut self,
        doc: &Document,
        parts: &[CompiledAttrPart],
        slots: &mut Slots,
        out: &mut String,
    ) -> Result<()> {
        out.clear();
        for part in parts {
            match part {
                CompiledAttrPart::Literal(t) => out.push_str(t),
                CompiledAttrPart::Expr(e) => {
                    let mut scratch = self.strings.pop().unwrap_or_default();
                    let mut first = true;
                    let r = self.atomize_into(doc, e, slots, out, &mut scratch, &mut first);
                    self.strings.push(scratch);
                    r?;
                }
            }
        }
        Ok(())
    }

    /// Streams the string values of an atomizable expression into `out`,
    /// space-separated (`first` tracks whether a separator is due).
    fn atomize_into(
        &mut self,
        doc: &Document,
        expr: &CompiledExpr,
        slots: &mut Slots,
        out: &mut String,
        scratch: &mut String,
        first: &mut bool,
    ) -> Result<()> {
        fn emit(out: &mut String, first: &mut bool, value: &str) {
            if !*first {
                out.push(' ');
            }
            *first = false;
            out.push_str(value);
        }
        match expr {
            CompiledExpr::Empty => Ok(()),
            CompiledExpr::StringLit(s) => {
                emit(out, first, s);
                Ok(())
            }
            CompiledExpr::Var { slot, name } => {
                let node = bound(slots, *slot, name)?;
                doc.string_value_into(node, scratch);
                emit(out, first, scratch);
                Ok(())
            }
            CompiledExpr::Path(p) => {
                let start = bound(slots, p.start_slot, &p.start_name)?;
                let mut cursor = ItemCursor::new(doc, p, start, &mut self.pool);
                while let Some(item) = cursor.next_item() {
                    match item {
                        CursorItem::Node(n) => {
                            doc.string_value_into(n, scratch);
                            emit(out, first, scratch);
                        }
                        CursorItem::Str(s) => emit(out, first, s),
                    }
                }
                cursor.recycle(&mut self.pool);
                Ok(())
            }
            CompiledExpr::Sequence(items) => {
                for item in items {
                    self.atomize_into(doc, item, slots, out, scratch, first)?;
                }
                Ok(())
            }
            other => Err(XQueryError::eval(format!(
                "expression cannot be atomized: {other:?}"
            ))),
        }
    }

    /// Evaluates a condition to a boolean. Existence probes pull at most
    /// one item from their cursor.
    pub fn eval_cond(
        &mut self,
        doc: &Document,
        cond: &CompiledCond,
        slots: &mut Slots,
    ) -> Result<bool> {
        match cond {
            CompiledCond::True => Ok(true),
            CompiledCond::False => Ok(false),
            CompiledCond::And(a, b) => {
                Ok(self.eval_cond(doc, a, slots)? && self.eval_cond(doc, b, slots)?)
            }
            CompiledCond::Or(a, b) => {
                Ok(self.eval_cond(doc, a, slots)? || self.eval_cond(doc, b, slots)?)
            }
            CompiledCond::Not(c) => Ok(!self.eval_cond(doc, c, slots)?),
            CompiledCond::Exists(p) => self.probe(doc, p, slots),
            CompiledCond::Empty(p) => Ok(!self.probe(doc, p, slots)?),
            CompiledCond::Cmp { lhs, op, rhs } => {
                // Operand value lists are tiny (usually one item); the
                // buffers are reused in place across comparisons.
                let mut left = std::mem::take(&mut self.cmp_lhs);
                let mut right = std::mem::take(&mut self.cmp_rhs);
                let filled = self
                    .operand_into(doc, lhs, slots, &mut left)
                    .and_then(|()| self.operand_into(doc, rhs, slots, &mut right));
                let held = filled.map(|()| {
                    left.iter()
                        .any(|a| right.iter().any(|b| compare(a, b, *op)))
                });
                self.cmp_lhs = left;
                self.cmp_rhs = right;
                held
            }
        }
    }

    /// True iff the path yields at least one item.
    fn probe(&mut self, doc: &Document, path: &CompiledPath, slots: &mut Slots) -> Result<bool> {
        let start = bound(slots, path.start_slot, &path.start_name)?;
        let mut cursor = ItemCursor::new(doc, path, start, &mut self.pool);
        let found = cursor.next_item().is_some();
        cursor.recycle(&mut self.pool);
        Ok(found)
    }

    /// Fills `values` with the string values of a comparison operand.
    fn operand_into(
        &mut self,
        doc: &Document,
        op: &CompiledOperand,
        slots: &mut Slots,
        values: &mut ValueBuf,
    ) -> Result<()> {
        values.clear();
        match op {
            CompiledOperand::StringLit(s) | CompiledOperand::NumberLit(s) => {
                values.push_slot().push_str(s);
                Ok(())
            }
            CompiledOperand::Path(p) => {
                let start = bound(slots, p.start_slot, &p.start_name)?;
                let mut cursor = ItemCursor::new(doc, p, start, &mut self.pool);
                while let Some(item) = cursor.next_item() {
                    match item {
                        CursorItem::Node(n) => doc.string_value_into(n, values.push_slot()),
                        CursorItem::Str(s) => values.push_slot().push_str(s),
                    }
                }
                cursor.recycle(&mut self.pool);
                Ok(())
            }
        }
    }
}

/// The node bound in `slot`, or the unbound-variable diagnostic.
#[inline]
fn bound(slots: &Slots, slot: usize, name: &str) -> Result<NodeId> {
    slots
        .get(slot)
        .copied()
        .flatten()
        .ok_or_else(|| XQueryError::eval(format!("unbound variable `${name}`")))
}

/// Copies a node's subtree to the sink. Element start tags go through the
/// sink's symbol fast path — no name strings materialise.
pub fn copy_node(doc: &Document, node: NodeId, sink: &mut impl QuerySink) -> Result<()> {
    match doc.kind(node) {
        NodeKind::Document => {
            for &c in doc.children(node) {
                copy_node(doc, c, sink)?;
            }
            Ok(())
        }
        NodeKind::Element { .. } => {
            sink.start_element_node(doc, node)?;
            for &c in doc.children(node) {
                copy_node(doc, c, sink)?;
            }
            sink.end_element()
        }
        _ => sink.text(doc.text(node).expect("text node")),
    }
}

/// General-comparison of two string values: numeric when both sides parse
/// as numbers, string comparison otherwise.
pub fn compare(a: &str, b: &str, op: CmpOp) -> bool {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        _ => match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        },
    }
}

/// Convenience for tests and baselines: compiles `expr` against the
/// document's own symbol table, binds `$ROOT` to the document node, and
/// returns the serialized output.
pub fn eval_to_string(doc: &Document, expr: &crate::ast::Expr) -> Result<String> {
    let mut slot_map = SlotMap::new();
    let root = slot_map.slot(ROOT_VAR);
    let compiled = compile_for_document(expr, doc, &mut slot_map)?;
    let mut slots = slot_map.make_slots();
    slots[root] = Some(doc.document_node());
    let mut evaluator = CursorEvaluator::new();
    let mut writer = XmlWriter::new(Vec::new());
    evaluator.eval(doc, &compiled, &mut slots, &mut writer)?;
    writer
        .finish()
        .map_err(|e| XQueryError::eval(format!("output error: {e}")))?;
    String::from_utf8(writer.into_inner()).map_err(|_| XQueryError::eval("invalid UTF-8 output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::parse_query;
    use crate::reference::reference_eval_to_string;

    const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author><author>Wright</author><publisher>AW</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author>Abiteboul</author><publisher>MK</publisher><price>39.95</price></book></bib>"#;

    fn run(query: &str, doc_text: &str) -> String {
        let doc = Document::parse_str(doc_text).unwrap();
        let expr = parse_query(query).unwrap();
        let out = eval_to_string(&doc, &expr).unwrap();
        // Every unit case doubles as a differential check against the
        // materialising reference interpreter.
        assert_eq!(out, reference_eval_to_string(&doc, &expr).unwrap());
        out
    }

    fn run_normalized(query: &str, doc_text: &str) -> String {
        let doc = Document::parse_str(doc_text).unwrap();
        let expr = normalize(&parse_query(query).unwrap()).unwrap();
        eval_to_string(&doc, &expr).unwrap()
    }

    #[test]
    fn q3_direct() {
        let out = run(
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#,
            BIB,
        );
        assert_eq!(
            out,
            "<results><result><title>TCP/IP</title><author>Stevens</author><author>Wright</author></result><result><title>Data on the Web</title><author>Abiteboul</author></result></results>"
        );
    }

    #[test]
    fn normalized_equals_direct() {
        let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;
        assert_eq!(run(q, BIB), run_normalized(q, BIB));
    }

    #[test]
    fn where_filtering() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/publisher = "AW" return $b/title }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><title>TCP/IP</title></r>");
    }

    #[test]
    fn numeric_comparison_on_attribute() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/@year > 1994 return $b/title }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><title>Data on the Web</title></r>");
    }

    #[test]
    fn numeric_vs_string_comparison() {
        // 65.95 < 100 numerically (string comparison would say otherwise).
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/price < 100 return $b/title }</r>"#,
            BIB,
        );
        assert!(out.contains("TCP/IP") && out.contains("Data on the Web"));
    }

    #[test]
    fn existential_comparison_any_pair() {
        // Second author matches even though the first doesn't.
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/author = "Wright" return $b/title }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><title>TCP/IP</title></r>");
    }

    #[test]
    fn attribute_output() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return <y>{$b/@year}</y> }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><y>1994</y><y>2000</y></r>");
    }

    #[test]
    fn attribute_value_template() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return <book y="{$b/@year}-ed"/> }</r>"#,
            BIB,
        );
        assert_eq!(
            out,
            r#"<r><book y="1994-ed"></book><book y="2000-ed"></book></r>"#
        );
    }

    #[test]
    fn text_step() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return <t>{$b/title/text()}</t> }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><t>TCP/IP</t><t>Data on the Web</t></r>");
    }

    #[test]
    fn whole_variable_copy() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book where $b/@year = 2000 return $b }</r>"#,
            BIB,
        );
        assert!(out.contains(r#"<book year="2000">"#));
        assert!(out.contains("<publisher>MK</publisher>"));
    }

    #[test]
    fn if_else_branches() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return if ($b/author = "Stevens") then <s/> else <o/> }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><s></s><o></o></r>");
    }

    #[test]
    fn exists_and_empty() {
        let out = run(
            r#"<r>{ for $b in $ROOT/bib/book return if (exists($b/editor)) then <e/> else if (empty($b/editor)) then <n/> else () }</r>"#,
            BIB,
        );
        assert_eq!(out, "<r><n></n><n></n></r>");
    }

    #[test]
    fn join_across_branches() {
        let doc = r#"<top><bib><book><title>A</title></book><book><title>B</title></book></bib><reviews><entry><title>B</title><rating>5</rating></entry></reviews></top>"#;
        let out = run(
            r#"<out>{ for $b in $ROOT/top/bib/book, $e in $ROOT/top/reviews/entry where $b/title = $e/title return <hit>{$b/title}{$e/rating}</hit> }</out>"#,
            doc,
        );
        assert_eq!(
            out,
            "<out><hit><title>B</title><rating>5</rating></hit></out>"
        );
    }

    #[test]
    fn unbound_variable_is_error() {
        let doc = Document::parse_str("<a/>").unwrap();
        let expr = parse_query("<r>{$nope/x}</r>").unwrap();
        let err = eval_to_string(&doc, &expr).unwrap_err();
        assert_eq!(
            err.to_string(),
            reference_eval_to_string(&doc, &expr)
                .unwrap_err()
                .to_string()
        );
    }

    #[test]
    fn counting_sink_counts() {
        let doc = Document::parse_str(BIB).unwrap();
        let expr = parse_query(r#"<r>{ for $b in $ROOT/bib/book return $b/title }</r>"#).unwrap();
        let mut slot_map = SlotMap::new();
        let root = slot_map.slot(ROOT_VAR);
        let compiled = compile_for_document(&expr, &doc, &mut slot_map).unwrap();
        let mut slots = slot_map.make_slots();
        slots[root] = Some(doc.document_node());
        let mut evaluator = CursorEvaluator::new();
        let mut sink = CountingSink::default();
        evaluator
            .eval(&doc, &compiled, &mut slots, &mut sink)
            .unwrap();
        assert!(sink.bytes > 0);
        assert!(sink.events >= 6);
    }

    #[test]
    fn repeated_evaluation_reuses_scratch() {
        // Steady state: the second and later evaluations draw all cursor
        // stacks and string scratch from the evaluator's pools. (The
        // allocation-free property itself is proven by the
        // counting-allocator integration test; this pins pool plumbing.)
        let doc = Document::parse_str(BIB).unwrap();
        let expr = parse_query(
            r#"<r>{ for $b in $ROOT/bib/book where $b/price < 100 return <x p="{$b/@year}">{$b/title}</x> }</r>"#,
        )
        .unwrap();
        let mut slot_map = SlotMap::new();
        let root = slot_map.slot(ROOT_VAR);
        let compiled = compile_for_document(&expr, &doc, &mut slot_map).unwrap();
        let mut slots = slot_map.make_slots();
        slots[root] = Some(doc.document_node());
        let mut evaluator = CursorEvaluator::new();
        let mut first = None;
        for _ in 0..3 {
            let mut sink = CountingSink::default();
            evaluator
                .eval(&doc, &compiled, &mut slots, &mut sink)
                .unwrap();
            let snapshot = (sink.bytes, sink.events);
            assert_eq!(*first.get_or_insert(snapshot), snapshot);
        }
    }

    #[test]
    fn compare_function_directly() {
        assert!(compare("10", "9", CmpOp::Gt), "numeric comparison");
        assert!(!compare("10", "9", CmpOp::Lt));
        assert!(compare("abc", "abd", CmpOp::Lt), "string comparison");
        assert!(compare("1.5", "1.50", CmpOp::Eq), "numeric equality");
        assert!(!compare("1.5x", "1.50", CmpOp::Eq), "falls back to string");
    }
}
