//! Malformed-corpus conformance: every corpus entry replays through the
//! sequential reader and the sharded reader at shard counts {1, 2, 8}
//! in both replay modes, and the terminal error is **byte-exact** — the
//! same rendered message and the same offset/line/column — in every
//! configuration. The expected-error manifest pins each entry's kind and
//! message fragment so the corpus can't rot into "fails somehow".

use flux_conformance::{assert_stream_equivalent, corpus};

#[test]
fn corpus_errors_byte_exact_across_all_configurations() {
    let entries = corpus();
    assert!(entries.len() >= 20, "corpus shrank to {}", entries.len());
    for entry in &entries {
        let outcome = assert_stream_equivalent(entry.id, &entry.bytes);
        let (message, position) = outcome
            .error
            .as_ref()
            .unwrap_or_else(|| panic!("{}: corpus entry parsed cleanly", entry.id));
        // assert_stream_equivalent already proved every sharded
        // configuration reproduces this exact message and position.
        assert!(
            position.is_some(),
            "{}: error carries no position: {message}",
            entry.id
        );
    }
}

#[test]
fn corpus_matches_manifest() {
    use flux_xml::{ReaderConfig, XmlReader};
    for entry in corpus() {
        let mut reader = XmlReader::with_config(&entry.bytes[..], ReaderConfig::default());
        let err = loop {
            match reader.advance() {
                Ok(true) => {}
                Ok(false) => panic!("{}: parsed cleanly", entry.id),
                Err(e) => break e,
            }
        };
        entry.check_error(&err);
    }
}

#[test]
fn seam_entries_exercise_real_shard_boundaries() {
    // The seam-straddling entries exist to put the malformation across a
    // shard boundary at realistic shard sizes. They must stay large
    // enough that an 8-way split with the default 16 KiB minimum still
    // produces more than one shard.
    let seams: Vec<_> = corpus()
        .into_iter()
        .filter(|e| e.id.starts_with("seam-"))
        .collect();
    assert!(seams.len() >= 5, "only {} seam entries", seams.len());
    for entry in seams {
        assert!(
            entry.bytes.len() > 2 * 16 * 1024,
            "{}: {} bytes is too small to split at default shard sizes",
            entry.id,
            entry.bytes.len()
        );
    }
}
