//! Algebraic optimization of normal-form XQuery using DTD constraints
//! (paper Sec. 3.1, step 2).
//!
//! Three rule families, each individually toggleable for the ablation
//! experiments:
//!
//! * **R1 — loop merging under cardinality constraints**: adjacent loops
//!   over the same path `$x/a` merge when `a ∈ ||≤1 type(x)` (the paper's
//!   publisher example);
//! * **R2 — unsatisfiable-conditional elimination under language
//!   constraints**: a condition that requires both `$x/a` and `$x/b` to be
//!   nonempty is false when `never_together(type(x), a, b)` (the paper's
//!   author/editor example);
//! * **R3 — constraint-based constant folding**: `exists($x/a)` folds to
//!   true/false under `at_least_one`/`never_occurs`, loops over impossible
//!   labels disappear, and constant conditions propagate.
//!
//! The optimizer runs to a fixpoint and records every application in a
//! trace for `explain()`.

use flux_dtd::{Dtd, Symbol, SymbolTable};
use flux_xquery::{Cond, Expr, Operand, Path, Step, VarName};
use std::collections::HashMap;

/// Which rule families to apply.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub merge_loops: bool,
    pub eliminate_unsatisfiable: bool,
    pub fold_constants: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            merge_loops: true,
            eliminate_unsatisfiable: true,
            fold_constants: true,
        }
    }
}

impl OptimizerConfig {
    /// Everything off — the unoptimized baseline for ablations.
    pub fn disabled() -> Self {
        OptimizerConfig {
            merge_loops: false,
            eliminate_unsatisfiable: false,
            fold_constants: false,
        }
    }
}

/// One applied rewrite, for the optimizer trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleApplication {
    /// "R1", "R2" or "R3".
    pub rule: &'static str,
    pub description: String,
}

/// Static types of variables: the element symbol a variable ranges over.
/// Variables over undeclared labels are untyped and get no optimization.
type TypeEnv = HashMap<VarName, Symbol>;

pub struct Optimizer<'d> {
    dtd: &'d Dtd,
    config: OptimizerConfig,
    pub trace: Vec<RuleApplication>,
}

impl<'d> Optimizer<'d> {
    pub fn new(dtd: &'d Dtd, config: OptimizerConfig) -> Self {
        Optimizer {
            dtd,
            config,
            trace: Vec::new(),
        }
    }

    /// Optimizes a normal-form expression to a fixpoint.
    pub fn optimize(&mut self, expr: &Expr) -> Expr {
        let mut env = TypeEnv::new();
        env.insert(flux_xquery::ROOT_VAR.to_string(), SymbolTable::DOCUMENT);
        let mut current = expr.clone();
        // The rule set strictly shrinks the expression, so the fixpoint
        // terminates; a generous bound guards against surprises.
        for _ in 0..64 {
            let before = self.trace.len();
            current = self.rewrite(&current, &mut env);
            if self.trace.len() == before {
                break;
            }
        }
        current
    }

    /// The element type a one-step child path ranges over, if known.
    fn step_type(&self, env: &TypeEnv, path: &Path) -> Option<(Symbol, Symbol)> {
        let parent = *env.get(&path.start)?;
        match path.steps.as_slice() {
            [Step::Child(label)] => {
                let child = self.dtd.lookup(label)?;
                Some((parent, child))
            }
            _ => None,
        }
    }

    fn rewrite(&mut self, expr: &Expr, env: &mut TypeEnv) -> Expr {
        match expr {
            Expr::Empty | Expr::StringLit(_) | Expr::Var(_) | Expr::Path(_) => expr.clone(),
            Expr::Sequence(items) => {
                // Splice before merging: constant folding can turn an item
                // into a nested sequence (or empty), and adjacent-loop
                // merging should see the spliced items, not the wrapper.
                let mut rewritten: Vec<Expr> = Vec::with_capacity(items.len());
                for item in items {
                    match self.rewrite(item, env) {
                        Expr::Empty => {}
                        Expr::Sequence(inner) => rewritten.extend(inner),
                        other => rewritten.push(other),
                    }
                }
                if self.config.merge_loops {
                    rewritten = self.merge_adjacent_loops(rewritten, env);
                }
                Expr::seq(rewritten)
            }
            Expr::Element {
                name,
                attributes,
                content,
            } => Expr::Element {
                name: name.clone(),
                attributes: attributes.clone(),
                content: Box::new(self.rewrite(content, env)),
            },
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                // R3: loops over labels the schema forbids are dead code.
                if self.config.fold_constants {
                    if let Some(parent) = env.get(&source.start).copied() {
                        if let [Step::Child(label)] = source.steps.as_slice() {
                            let impossible = match self.dtd.lookup(label) {
                                Some(child) => self.dtd.never_occurs(parent, child),
                                // A label the DTD never declares cannot occur
                                // in a valid document at all.
                                None => self.dtd.element(parent).is_some(),
                            };
                            if impossible {
                                self.trace.push(RuleApplication {
                                    rule: "R3",
                                    description: format!(
                                        "removed loop over {source}: label `{label}` cannot occur below `{}`",
                                        self.dtd.name(parent)
                                    ),
                                });
                                return Expr::Empty;
                            }
                        }
                    }
                }
                let shadowed = self.bind(env, var, source);
                let body = self.rewrite(body, env);
                self.unbind(env, var, shadowed);
                Expr::For {
                    var: var.clone(),
                    source: source.clone(),
                    where_clause: where_clause.clone(),
                    body: Box::new(body),
                }
            }
            Expr::Let { var, value, body } => Expr::Let {
                var: var.clone(),
                value: Box::new(self.rewrite(value, env)),
                body: Box::new(self.rewrite(body, env)),
            },
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let simplified = self.simplify_cond(cond, env);
                match simplified {
                    Cond::True if self.config.fold_constants => {
                        self.trace.push(RuleApplication {
                            rule: "R3",
                            description: "folded if(true())".to_string(),
                        });
                        self.rewrite(then_branch, env)
                    }
                    Cond::False if self.config.fold_constants => {
                        self.trace.push(RuleApplication {
                            rule: "R3",
                            description: "folded if(false()) to the else branch".to_string(),
                        });
                        self.rewrite(else_branch, env)
                    }
                    simplified => Expr::If {
                        cond: Box::new(simplified),
                        then_branch: Box::new(self.rewrite(then_branch, env)),
                        else_branch: Box::new(self.rewrite(else_branch, env)),
                    },
                }
            }
        }
    }

    fn bind(&self, env: &mut TypeEnv, var: &str, source: &Path) -> Option<Option<Symbol>> {
        let ty = self.step_type(env, source).map(|(_, child)| child);
        match ty {
            Some(ty) => Some(env.insert(var.to_string(), ty)),
            None => {
                // Untyped binding: remove any shadowed type so constraints
                // aren't wrongly applied inside the body.
                let old = env.remove(var);
                if old.is_some() {
                    Some(old)
                } else {
                    None
                }
            }
        }
    }

    fn unbind(&self, env: &mut TypeEnv, var: &str, shadowed: Option<Option<Symbol>>) {
        match shadowed {
            Some(Some(old)) => {
                env.insert(var.to_string(), old);
            }
            Some(None) | None => {
                env.remove(var);
            }
        }
    }

    /// R1: merges runs of adjacent for-loops over the same at-most-one path.
    fn merge_adjacent_loops(&mut self, items: Vec<Expr>, env: &TypeEnv) -> Vec<Expr> {
        let mut out: Vec<Expr> = Vec::with_capacity(items.len());
        for item in items {
            let merged = match (out.last_mut(), &item) {
                (
                    Some(Expr::For {
                        var: v1,
                        source: s1,
                        where_clause: None,
                        body: b1,
                    }),
                    Expr::For {
                        var: v2,
                        source: s2,
                        where_clause: None,
                        body: b2,
                    },
                ) if s1 == s2 => {
                    let at_most_one = self
                        .step_type(env, s1)
                        .is_some_and(|(parent, child)| self.dtd.at_most_one(parent, child));
                    if at_most_one {
                        // Rename $v2 to $v1 in the second body; the bodies
                        // of normalized loops never rebind these variables
                        // to conflicting values because normalizer-generated
                        // names are unique, but user queries can shadow, so
                        // check before renaming.
                        if rebinds(b2, v2) || uses_var(b1, v2) {
                            false
                        } else {
                            let renamed = rename_var(b2, v2, v1);
                            let combined = Expr::seq(vec![(**b1).clone(), renamed]);
                            self.trace.push(RuleApplication {
                                rule: "R1",
                                description: format!(
                                    "merged adjacent loops over {s1} (cardinality ≤ 1)"
                                ),
                            });
                            **b1 = combined;
                            true
                        }
                    } else {
                        false
                    }
                }
                _ => false,
            };
            if !merged {
                out.push(item);
            }
        }
        out
    }

    /// Simplifies a condition using schema constraints.
    fn simplify_cond(&mut self, cond: &Cond, env: &TypeEnv) -> Cond {
        // First: R2 global unsatisfiability of the whole condition.
        if self.config.eliminate_unsatisfiable {
            if let Some(desc) = self.unsatisfiable(cond, env) {
                self.trace.push(RuleApplication {
                    rule: "R2",
                    description: desc,
                });
                return Cond::False;
            }
        }
        // Then: R3 leaf folding + boolean propagation.
        if self.config.fold_constants {
            self.fold_cond(cond, env)
        } else {
            cond.clone()
        }
    }

    /// Returns a description when the condition cannot hold on any valid
    /// document: some conjunctively-required pair of sibling paths is
    /// excluded by a language constraint.
    fn unsatisfiable(&self, cond: &Cond, env: &TypeEnv) -> Option<String> {
        let required = required_paths(cond);
        for (i, p1) in required.iter().enumerate() {
            for p2 in &required[i + 1..] {
                if p1.start != p2.start {
                    continue;
                }
                let Some((parent, a)) = self.step_type(env, p1) else {
                    continue;
                };
                let Some((_, b)) = self.step_type(env, p2) else {
                    continue;
                };
                if a != b && self.dtd.never_together(parent, a, b) {
                    return Some(format!(
                        "condition requires both {p1} and {p2}, but `{}` and `{}` never occur together below `{}`",
                        self.dtd.name(a),
                        self.dtd.name(b),
                        self.dtd.name(parent)
                    ));
                }
            }
        }
        None
    }

    fn fold_cond(&mut self, cond: &Cond, env: &TypeEnv) -> Cond {
        match cond {
            Cond::True | Cond::False => cond.clone(),
            Cond::Exists(p) => match self.path_possibility(p, env) {
                Some(true) => {
                    self.trace.push(RuleApplication {
                        rule: "R3",
                        description: format!("exists({p}) always holds (cardinality ≥ 1)"),
                    });
                    Cond::True
                }
                Some(false) => {
                    self.trace.push(RuleApplication {
                        rule: "R3",
                        description: format!("exists({p}) never holds (label impossible)"),
                    });
                    Cond::False
                }
                None => cond.clone(),
            },
            Cond::Empty(p) => match self.path_possibility(p, env) {
                Some(true) => Cond::False,
                Some(false) => Cond::True,
                None => cond.clone(),
            },
            Cond::Cmp { lhs, op, rhs } => {
                // A comparison over an impossible path is false (existential
                // semantics over an empty sequence).
                for operand in [lhs, rhs] {
                    if let Operand::Path(p) = operand {
                        if self.path_possibility(p, env) == Some(false) {
                            self.trace.push(RuleApplication {
                                rule: "R3",
                                description: format!(
                                    "comparison over impossible path {p} is false"
                                ),
                            });
                            return Cond::False;
                        }
                    }
                }
                Cond::Cmp {
                    lhs: lhs.clone(),
                    op: *op,
                    rhs: rhs.clone(),
                }
            }
            Cond::And(a, b) => {
                let fa = self.fold_cond(a, env);
                let fb = self.fold_cond(b, env);
                match (fa, fb) {
                    (Cond::False, _) | (_, Cond::False) => Cond::False,
                    (Cond::True, other) | (other, Cond::True) => other,
                    (fa, fb) => Cond::And(Box::new(fa), Box::new(fb)),
                }
            }
            Cond::Or(a, b) => {
                let fa = self.fold_cond(a, env);
                let fb = self.fold_cond(b, env);
                match (fa, fb) {
                    (Cond::True, _) | (_, Cond::True) => Cond::True,
                    (Cond::False, other) | (other, Cond::False) => other,
                    (fa, fb) => Cond::Or(Box::new(fa), Box::new(fb)),
                }
            }
            Cond::Not(c) => match self.fold_cond(c, env) {
                Cond::True => Cond::False,
                Cond::False => Cond::True,
                folded => Cond::Not(Box::new(folded)),
            },
        }
    }

    /// `Some(true)`: the path always has matches; `Some(false)`: never.
    fn path_possibility(&self, path: &Path, env: &TypeEnv) -> Option<bool> {
        let parent = *env.get(&path.start)?;
        let [Step::Child(label)] = path.steps.as_slice() else {
            return None;
        };
        match self.dtd.lookup(label) {
            Some(child) => {
                if self.dtd.never_occurs(parent, child) {
                    Some(false)
                } else if self.dtd.at_least_one(parent, child) {
                    Some(true)
                } else {
                    None
                }
            }
            None => {
                if self.dtd.element(parent).is_some() {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }
}

/// Paths whose nonemptiness the condition requires to hold (an
/// under-approximation that distributes over `and` and intersects over
/// `or`; comparisons require both operand paths nonempty).
fn required_paths(cond: &Cond) -> Vec<Path> {
    match cond {
        Cond::Cmp { lhs, rhs, .. } => {
            let mut out = Vec::new();
            if let Operand::Path(p) = lhs {
                out.push(p.clone());
            }
            if let Operand::Path(p) = rhs {
                out.push(p.clone());
            }
            out
        }
        Cond::Exists(p) => vec![p.clone()],
        Cond::And(a, b) => {
            let mut out = required_paths(a);
            out.extend(required_paths(b));
            out
        }
        Cond::Or(a, b) => {
            let left = required_paths(a);
            let right = required_paths(b);
            left.into_iter().filter(|p| right.contains(p)).collect()
        }
        Cond::Not(_) | Cond::Empty(_) | Cond::True | Cond::False => Vec::new(),
    }
}

/// Whether `expr` rebinds `var` somewhere inside.
fn rebinds(expr: &Expr, var: &str) -> bool {
    let mut found = false;
    expr.visit(&mut |e| match e {
        Expr::For { var: v, .. } | Expr::Let { var: v, .. } if v == var => found = true,
        _ => {}
    });
    found
}

/// Whether `expr` uses `var` freely.
fn uses_var(expr: &Expr, var: &str) -> bool {
    flux_xquery::free_vars(expr).contains(var)
}

/// Renames free occurrences of `from` to `to` (caller has checked that no
/// capture can occur).
fn rename_var(expr: &Expr, from: &str, to: &str) -> Expr {
    use flux_xquery::{AttrConstructor, AttrPart};
    let rename_path = |p: &Path| -> Path {
        if p.start == from {
            Path {
                start: to.to_string(),
                steps: p.steps.clone(),
            }
        } else {
            p.clone()
        }
    };
    let rename_operand = |o: &Operand| -> Operand {
        match o {
            Operand::Path(p) => Operand::Path(rename_path(p)),
            other => other.clone(),
        }
    };
    fn rename_cond(
        c: &Cond,
        rp: &impl Fn(&Path) -> Path,
        ro: &impl Fn(&Operand) -> Operand,
    ) -> Cond {
        match c {
            Cond::Cmp { lhs, op, rhs } => Cond::Cmp {
                lhs: ro(lhs),
                op: *op,
                rhs: ro(rhs),
            },
            Cond::And(a, b) => Cond::And(
                Box::new(rename_cond(a, rp, ro)),
                Box::new(rename_cond(b, rp, ro)),
            ),
            Cond::Or(a, b) => Cond::Or(
                Box::new(rename_cond(a, rp, ro)),
                Box::new(rename_cond(b, rp, ro)),
            ),
            Cond::Not(inner) => Cond::Not(Box::new(rename_cond(inner, rp, ro))),
            Cond::Exists(p) => Cond::Exists(rp(p)),
            Cond::Empty(p) => Cond::Empty(rp(p)),
            Cond::True => Cond::True,
            Cond::False => Cond::False,
        }
    }
    match expr {
        Expr::Empty | Expr::StringLit(_) => expr.clone(),
        Expr::Var(v) => Expr::Var(if v == from { to.to_string() } else { v.clone() }),
        Expr::Path(p) => Expr::Path(rename_path(p)),
        Expr::Sequence(items) => {
            Expr::Sequence(items.iter().map(|e| rename_var(e, from, to)).collect())
        }
        Expr::Element {
            name,
            attributes,
            content,
        } => Expr::Element {
            name: name.clone(),
            attributes: attributes
                .iter()
                .map(|a| AttrConstructor {
                    name: a.name.clone(),
                    value: a
                        .value
                        .iter()
                        .map(|part| match part {
                            AttrPart::Literal(t) => AttrPart::Literal(t.clone()),
                            AttrPart::Expr(e) => AttrPart::Expr(rename_var(e, from, to)),
                        })
                        .collect(),
                })
                .collect(),
            content: Box::new(rename_var(content, from, to)),
        },
        Expr::For {
            var,
            source,
            where_clause,
            body,
        } => {
            let source = rename_path(source);
            if var == from {
                // Shadowed below: only the source sees the rename.
                Expr::For {
                    var: var.clone(),
                    source,
                    where_clause: where_clause.clone(),
                    body: body.clone(),
                }
            } else {
                Expr::For {
                    var: var.clone(),
                    source,
                    where_clause: where_clause
                        .as_ref()
                        .map(|c| Box::new(rename_cond(c, &rename_path, &rename_operand))),
                    body: Box::new(rename_var(body, from, to)),
                }
            }
        }
        Expr::Let { var, value, body } => Expr::Let {
            var: var.clone(),
            value: Box::new(rename_var(value, from, to)),
            body: if var == from {
                body.clone()
            } else {
                Box::new(rename_var(body, from, to))
            },
        },
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Expr::If {
            cond: Box::new(rename_cond(cond, &rename_path, &rename_operand)),
            then_branch: Box::new(rename_var(then_branch, from, to)),
            else_branch: Box::new(rename_var(else_branch, from, to)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::PAPER_FIG1_DTD;
    use flux_xquery::{normalize, parse_query, pretty};

    fn optimize(q: &str, dtd: &Dtd) -> (Expr, Vec<RuleApplication>) {
        let nf = normalize(&parse_query(q).unwrap()).unwrap();
        let mut opt = Optimizer::new(dtd, OptimizerConfig::default());
        let out = opt.optimize(&nf);
        (out, opt.trace.clone())
    }

    fn fig1() -> Dtd {
        Dtd::parse(PAPER_FIG1_DTD).unwrap()
    }

    #[test]
    fn r1_merges_publisher_loops() {
        // The paper's Sec. 3.1 example: two loops over $book/publisher.
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            <r>{ for $x in $b/publisher return <a>{$x}</a> }
               { for $y in $b/publisher return <bb>{$y}</bb> }</r> }</out>"#;
        let (out, trace) = optimize(q, &dtd);
        assert!(trace.iter().any(|r| r.rule == "R1"), "{trace:?}");
        // Only one publisher loop remains.
        let printed = pretty(&out);
        assert_eq!(printed.matches("in $b/publisher").count(), 1, "{printed}");
    }

    #[test]
    fn r1_not_applied_to_authors() {
        // author is not ≤1 under Fig. 1, so merging would be wrong.
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            <r>{ for $x in $b/author return <a>{$x}</a> }
               { for $y in $b/author return <bb>{$y}</bb> }</r> }</out>"#;
        let (out, trace) = optimize(q, &dtd);
        assert!(!trace.iter().any(|r| r.rule == "R1"), "{trace:?}");
        let printed = pretty(&out);
        assert_eq!(printed.matches("in $b/author").count(), 2, "{printed}");
    }

    #[test]
    fn r2_eliminates_goedel_condition() {
        // The paper's example: author = "Goedel" and editor = "Goedel"
        // cannot both hold under Fig. 1.
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            if ($b/author = "Goedel" and $b/editor = "Goedel")
            then <hit/> else () }</out>"#;
        let (out, trace) = optimize(q, &dtd);
        assert!(trace.iter().any(|r| r.rule == "R2"), "{trace:?}");
        let printed = pretty(&out);
        assert!(
            !printed.contains("<hit"),
            "then branch eliminated: {printed}"
        );
        assert!(
            !printed.contains("if ("),
            "conditional folded away: {printed}"
        );
    }

    #[test]
    fn r2_keeps_satisfiable_disjunction() {
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            if ($b/author = "Goedel" or $b/editor = "Goedel")
            then <hit/> else () }</out>"#;
        let (_, trace) = optimize(q, &dtd);
        assert!(!trace.iter().any(|r| r.rule == "R2"), "{trace:?}");
    }

    #[test]
    fn r2_through_or_distribution() {
        // (author = X or author = Y) and editor = Z still requires
        // author+editor jointly: or-branches both require author.
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            if (($b/author = "X" or $b/author = "Y") and $b/editor = "Z")
            then <hit/> else () }</out>"#;
        let (_, trace) = optimize(q, &dtd);
        assert!(trace.iter().any(|r| r.rule == "R2"), "{trace:?}");
    }

    #[test]
    fn r3_exists_title_always_true() {
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            if (exists($b/title)) then <y/> else <n/> }</out>"#;
        let (out, trace) = optimize(q, &dtd);
        assert!(trace.iter().any(|r| r.rule == "R3"), "{trace:?}");
        let printed = pretty(&out);
        assert!(printed.contains("<y/>"), "{printed}");
        assert!(!printed.contains("<n/>"), "{printed}");
    }

    #[test]
    fn r3_loop_over_impossible_label_removed() {
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            for $z in $b/appendix return <z>{$z}</z> }</out>"#;
        let (out, trace) = optimize(q, &dtd);
        assert!(trace.iter().any(|r| r.rule == "R3"), "{trace:?}");
        let printed = pretty(&out);
        assert!(!printed.contains("appendix"), "{printed}");
    }

    #[test]
    fn disabled_config_changes_nothing() {
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            if ($b/author = "Goedel" and $b/editor = "Goedel")
            then <hit/> else () }</out>"#;
        let nf = normalize(&parse_query(q).unwrap()).unwrap();
        let mut opt = Optimizer::new(&dtd, OptimizerConfig::disabled());
        let out = opt.optimize(&nf);
        assert_eq!(out, nf);
        assert!(opt.trace.is_empty());
    }

    #[test]
    fn weak_dtd_no_rules_fire() {
        let dtd = Dtd::parse(flux_dtd::PAPER_WEAK_DTD).unwrap();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            <r>{ for $x in $b/title return <a>{$x}</a> }
               { for $y in $b/title return <bb>{$y}</bb> }</r> }</out>"#;
        let (_, trace) = optimize(q, &dtd);
        assert!(trace.is_empty(), "{trace:?}");
    }

    #[test]
    fn untyped_variables_get_no_optimization() {
        // `chapter` is undeclared: $c is untyped; nothing may fire on its
        // children even if label names coincide.
        let dtd = fig1();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            for $c in $b/title return
            if ($c/sub = "x" and $c/sub2 = "y") then <h/> else () }</out>"#;
        let (_, trace) = optimize(q, &dtd);
        // title is declared (#PCDATA): sub/sub2 are impossible below it →
        // R3 folds the comparison to false. This is correct and desired.
        assert!(trace.iter().any(|r| r.rule == "R3"), "{trace:?}");
    }
}
