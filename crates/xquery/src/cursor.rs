//! Lazy sequence cursors over a buffered [`Document`].
//!
//! A [`SequenceCursor`] yields the items of a compiled path one at a time,
//! walking child spans in document order without materialising any
//! intermediate `Vec` — `for`-bodies iterate as matches surface, and
//! existence probes stop at the first item. Cursor scratch (the descent
//! stack and the per-step symbol vector) is pooled by the evaluator, so
//! steady-state construction allocates nothing.

use crate::compile::{CompiledPath, PathTail};
use flux_xml::tree::{Document, NodeId};
use flux_xml::Symbol;

/// One item yielded by a cursor: a buffered node or a borrowed string
/// (attribute value or text payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorItem<'d> {
    Node(NodeId),
    Str(&'d str),
}

/// A pull cursor over a lazily evaluated sequence.
pub trait SequenceCursor<'d> {
    /// The next item in document order, or `None` when exhausted.
    fn next_item(&mut self) -> Option<CursorItem<'d>>;

    /// `(lower, upper)` bounds on the remaining items, `Iterator`-style.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Reusable cursor scratch: descent stacks and per-step symbol vectors,
/// recycled across evaluations so nested loops reach an allocation-free
/// steady state. Depth of the pool tracks the deepest live cursor nesting.
#[derive(Debug, Default)]
pub struct CursorPool {
    stacks: Vec<Vec<(NodeId, u32)>>,
    syms: Vec<Vec<Option<Symbol>>>,
}

impl CursorPool {
    pub fn new() -> Self {
        CursorPool::default()
    }

    fn take(&mut self) -> (Vec<(NodeId, u32)>, Vec<Option<Symbol>>) {
        (
            self.stacks.pop().unwrap_or_default(),
            self.syms.pop().unwrap_or_default(),
        )
    }

    fn put(&mut self, mut stack: Vec<(NodeId, u32)>, mut syms: Vec<Option<Symbol>>) {
        stack.clear();
        syms.clear();
        self.stacks.push(stack);
        self.syms.push(syms);
    }
}

/// Streams the element nodes of a compiled child-step path in document
/// order: an explicit-stack descent where level `i` scans the children of
/// its node for step `i`'s symbol — integer equality only.
pub struct PathCursor<'d> {
    doc: &'d Document,
    /// `(node, next child index)` per live descent level.
    stack: Vec<(NodeId, u32)>,
    /// The resolved symbol of each child step; `None` (spelling absent
    /// from the document's table) matches nothing.
    syms: Vec<Option<Symbol>>,
    /// Start node, yielded directly for step-less paths.
    pending_start: Option<NodeId>,
}

impl<'d> PathCursor<'d> {
    /// Builds a cursor for `path` starting at `start`. Each step resolves
    /// to a symbol once, here: pre-compiled symbols copy straight over,
    /// and only undeclared spellings pay a table lookup.
    pub fn new(
        doc: &'d Document,
        path: &CompiledPath,
        start: NodeId,
        pool: &mut CursorPool,
    ) -> Self {
        let (mut stack, mut syms) = pool.take();
        syms.extend(path.steps.iter().map(|step| step.resolve(doc)));
        let pending_start = if syms.is_empty() {
            Some(start)
        } else {
            stack.push((start, 0));
            None
        };
        PathCursor {
            doc,
            stack,
            syms,
            pending_start,
        }
    }

    /// Returns the scratch buffers to the pool.
    pub fn recycle(self, pool: &mut CursorPool) {
        pool.put(self.stack, self.syms);
    }

    pub fn doc(&self) -> &'d Document {
        self.doc
    }

    /// The next matching element node in document order.
    pub fn next_node(&mut self) -> Option<NodeId> {
        if self.syms.is_empty() {
            return self.pending_start.take();
        }
        while let Some(&(node, idx)) = self.stack.last() {
            let depth = self.stack.len() - 1;
            let want = self.syms[depth];
            let children = self.doc.children(node);
            let mut i = idx as usize;
            let mut found = None;
            while i < children.len() {
                let c = children[i];
                i += 1;
                if want.is_some() && self.doc.name_sym(c) == want {
                    found = Some(c);
                    break;
                }
            }
            self.stack[depth].1 = i as u32;
            match found {
                Some(c) if depth + 1 == self.syms.len() => return Some(c),
                Some(c) => self.stack.push((c, 0)),
                None => {
                    self.stack.pop();
                }
            }
        }
        None
    }
}

impl<'d> SequenceCursor<'d> for PathCursor<'d> {
    fn next_item(&mut self) -> Option<CursorItem<'d>> {
        self.next_node().map(CursorItem::Node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.syms.is_empty() {
            let n = usize::from(self.pending_start.is_some());
            (n, Some(n))
        } else if self.stack.is_empty() {
            (0, Some(0))
        } else {
            (0, None)
        }
    }
}

/// How an [`ItemCursor`] postprocesses the element nodes of its path.
enum TailState {
    /// Yield the nodes themselves.
    Nodes,
    /// Yield the value of this attribute (resolved once at build).
    Attribute(Option<Symbol>),
    /// Yield text-node children; holds the sub-scan position inside the
    /// current element.
    Text(Option<(NodeId, u32)>),
}

/// Streams the items of any compiled path, tail included: nodes for pure
/// element paths, borrowed strings for `/@attr` and `/text()` tails.
pub struct ItemCursor<'d> {
    inner: PathCursor<'d>,
    tail: TailState,
}

impl<'d> ItemCursor<'d> {
    pub fn new(
        doc: &'d Document,
        path: &CompiledPath,
        start: NodeId,
        pool: &mut CursorPool,
    ) -> Self {
        let tail = match &path.tail {
            PathTail::None => TailState::Nodes,
            PathTail::Attribute(name) => TailState::Attribute(name.resolve(doc)),
            PathTail::Text => TailState::Text(None),
        };
        ItemCursor {
            inner: PathCursor::new(doc, path, start, pool),
            tail,
        }
    }

    pub fn recycle(self, pool: &mut CursorPool) {
        self.inner.recycle(pool);
    }
}

impl<'d> SequenceCursor<'d> for ItemCursor<'d> {
    fn next_item(&mut self) -> Option<CursorItem<'d>> {
        let doc = self.inner.doc;
        loop {
            if let TailState::Text(scan) = &mut self.tail {
                if let Some((node, idx)) = scan {
                    let children = doc.children(*node);
                    let mut i = *idx as usize;
                    while i < children.len() {
                        let c = children[i];
                        i += 1;
                        if let Some(t) = doc.text(c) {
                            *idx = i as u32;
                            return Some(CursorItem::Str(t));
                        }
                    }
                    *scan = None;
                }
            }
            let node = self.inner.next_node()?;
            match &mut self.tail {
                TailState::Nodes => return Some(CursorItem::Node(node)),
                TailState::Attribute(sym) => {
                    if let Some(v) = sym.and_then(|s| doc.attribute_sym(node, s)) {
                        return Some(CursorItem::Str(v));
                    }
                }
                TailState::Text(scan) => *scan = Some((node, 0)),
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.tail {
            TailState::Nodes => self.inner.size_hint(),
            // Tails filter (absent attributes) and fan out (multiple text
            // children): only a proven-empty inner path is conserved.
            _ => match self.inner.size_hint() {
                (_, Some(0)) if matches!(self.tail, TailState::Attribute(_)) => (0, Some(0)),
                _ => (0, None),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_path, SlotMap};
    use crate::parser::parse_query;
    use crate::Expr;

    const DOC: &str = r#"<bib><book year="1994"><title>A</title><author>X</author><author>Y</author></book><junk/><book><title>B</title></book></bib>"#;

    fn path_of(query: &str) -> crate::compile::CompiledPath {
        // Extract the single path inside `<r>{ ... }</r>`.
        let Expr::Element { content, .. } = parse_query(query).unwrap() else {
            panic!("element");
        };
        let Expr::Path(p) = *content else {
            panic!("path");
        };
        let mut slots = SlotMap::new();
        compile_path(&p, &mut slots, &mut |_| None).unwrap()
    }

    #[test]
    fn streams_matches_in_document_order() {
        let doc = Document::parse_str(DOC).unwrap();
        let path = path_of("<r>{$ROOT/bib/book/author}</r>");
        let mut pool = CursorPool::new();
        let mut cursor = PathCursor::new(&doc, &path, doc.document_node(), &mut pool);
        let mut names = Vec::new();
        while let Some(n) = cursor.next_node() {
            names.push(doc.string_value(n));
        }
        cursor.recycle(&mut pool);
        assert_eq!(names, ["X", "Y"]);
        // The pool holds the returned scratch for the next cursor.
        assert_eq!(pool.stacks.len(), 1);
    }

    #[test]
    fn stepless_path_yields_start_once() {
        let doc = Document::parse_str(DOC).unwrap();
        let mut slots = SlotMap::new();
        let path = compile_path(&crate::ast::Path::var("ROOT"), &mut slots, &mut |_| None).unwrap();
        let mut pool = CursorPool::new();
        let mut cursor = PathCursor::new(&doc, &path, doc.document_node(), &mut pool);
        assert_eq!(cursor.size_hint(), (1, Some(1)));
        assert_eq!(cursor.next_node(), Some(doc.document_node()));
        assert_eq!(cursor.next_node(), None);
    }

    #[test]
    fn attribute_tail_yields_borrowed_values() {
        let doc = Document::parse_str(DOC).unwrap();
        let path = path_of("<r>{$ROOT/bib/book/@year}</r>");
        let mut pool = CursorPool::new();
        let mut cursor = ItemCursor::new(&doc, &path, doc.document_node(), &mut pool);
        assert_eq!(cursor.next_item(), Some(CursorItem::Str("1994")));
        // The second book has no year: filtered out, not an empty string.
        assert_eq!(cursor.next_item(), None);
    }

    #[test]
    fn text_tail_walks_text_children() {
        let doc = Document::parse_str(DOC).unwrap();
        let path = path_of("<r>{$ROOT/bib/book/title/text()}</r>");
        let mut pool = CursorPool::new();
        let mut cursor = ItemCursor::new(&doc, &path, doc.document_node(), &mut pool);
        assert_eq!(cursor.next_item(), Some(CursorItem::Str("A")));
        assert_eq!(cursor.next_item(), Some(CursorItem::Str("B")));
        assert_eq!(cursor.next_item(), None);
    }

    #[test]
    fn unknown_step_matches_nothing() {
        let doc = Document::parse_str(DOC).unwrap();
        let path = path_of("<r>{$ROOT/bib/mystery}</r>");
        let mut pool = CursorPool::new();
        let mut cursor = PathCursor::new(&doc, &path, doc.document_node(), &mut pool);
        assert_eq!(cursor.next_node(), None);
    }
}
