//! Zero-overhead pipeline instrumentation for FluXQuery.
//!
//! The paper's evaluation is entirely per-stage measurement — buffer
//! residency under scheduling, event throughput by pipeline phase — and a
//! long-lived streaming engine cannot be debugged or perf-gated without
//! the same visibility. This crate is the instrumentation substrate every
//! hot-path crate embeds:
//!
//! * **Stage counters** ([`ScanCounters`] and friends) — fixed-slot `u64` fields bumped by
//!   inline adder methods, owned by the thread doing the work and merged
//!   at join time. No atomics, no locks, no allocation.
//! * **Span timers** ([`span::Stopwatch`]) — coarse monotonic wall-clock
//!   spans (two `Instant` reads per span, never per event).
//! * **A bounded ring journal** ([`journal::Journal`]) — fixed-capacity
//!   event log for pipeline lifecycle moments (shard ready / activated /
//!   exhausted), overwriting the oldest entry when full.
//! * **A residency sampler** ([`residency::Residency`]) — a decimating
//!   high-water trace of buffered bytes over the run, held in a fixed
//!   inline array so sampling never allocates.
//! * **The [`report::RunReport`] tree** — the serializable per-run
//!   rollup (stages → counters/spans/rates) every instrumented component
//!   appends itself to, rendered as JSON or text.
//!
//! # The `enabled` feature
//!
//! Everything that records is compiled twice: a real implementation under
//! `#[cfg(feature = "enabled")]` and a zero-sized, no-op mirror without
//! it. Consumers embed the types and call the methods unconditionally —
//! with the feature off, the structs occupy zero bytes, the methods are
//! empty `#[inline(always)]` functions, and the optimizer erases every
//! call site. Use [`enabled`] (a `const fn`) to guard work that only
//! exists to *feed* the instrumentation (computing an argument, taking a
//! timestamp): the branch folds away at compile time.
//!
//! The report types and the JSON writer ([`json`]) are always compiled —
//! a build without the feature still renders a [`report::RunReport`]
//! (with a "telemetry disabled" marker and empty stages) and still
//! serializes `RunStats`.

mod counters;
pub mod journal;
pub mod json;
pub mod report;
pub mod residency;
pub mod span;

pub use counters::{
    BufferCounters, ReaderCounters, RuntimeCounters, ScanCounters, ShardLane, XsaxCounters,
};
pub use journal::{Journal, JournalEvent};
pub use report::{RunReport, Stage};
pub use residency::Residency;
pub use span::Stopwatch;

/// Whether the `enabled` cargo feature is compiled in.
///
/// A `const fn`: `if flux_telemetry::enabled() { ... }` is a
/// compile-time-constant branch, so argument computation that only feeds
/// telemetry disappears entirely from uninstrumented builds.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}
