//! Serialisation of XML events back to a byte stream.
//!
//! [`XmlWriter`] is the output side of the streamed query evaluator: result
//! events are written as soon as they are produced, so the output is itself
//! a stream.

use crate::error::{Result, XmlError};
use crate::escape::{escape_attr_into, escape_text_into};
use crate::event::{Attribute, RawAttr, RawEvent, RawEventKind, RawEventRef, XmlEvent};
use crate::tree::{Document, NodeId, NodeKind};
use flux_symbols::{Symbol, SymbolTable};
use std::io::Write;

/// Configuration for [`XmlWriter`].
#[derive(Debug, Clone, Default)]
pub struct WriterConfig {
    /// Pretty-print with two-space indentation. Only safe for data-oriented
    /// documents (it inserts whitespace between elements).
    pub indent: bool,
    /// Write an `<?xml version="1.0" encoding="UTF-8"?>` declaration first.
    pub xml_declaration: bool,
}

/// Streaming XML serialiser with well-formedness checking.
pub struct XmlWriter<W: Write> {
    sink: W,
    config: WriterConfig,
    stack: Vec<String>,
    /// Name buffers recycled from closed elements, so the steady-state
    /// output loop does not allocate per start tag.
    spare_names: Vec<String>,
    /// Whether anything was written inside the current element (affects
    /// indentation only).
    had_child: Vec<bool>,
    /// Bytes written so far.
    bytes_written: u64,
    scratch: String,
    wrote_declaration: bool,
}

impl<W: Write> XmlWriter<W> {
    pub fn new(sink: W) -> Self {
        Self::with_config(sink, WriterConfig::default())
    }

    pub fn with_config(sink: W, config: WriterConfig) -> Self {
        XmlWriter {
            sink,
            config,
            stack: Vec::new(),
            spare_names: Vec::new(),
            had_child: Vec::new(),
            bytes_written: 0,
            scratch: String::new(),
            wrote_declaration: false,
        }
    }

    /// Number of bytes written so far (after escaping).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Consumes the writer, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    fn raw(&mut self, s: &str) -> Result<()> {
        self.sink.write_all(s.as_bytes())?;
        self.bytes_written += s.len() as u64;
        Ok(())
    }

    fn newline_indent(&mut self) -> Result<()> {
        if self.config.indent && (!self.stack.is_empty() || self.bytes_written > 0) {
            let depth = self.stack.len();
            self.raw("\n")?;
            for _ in 0..depth {
                self.raw("  ")?;
            }
        }
        Ok(())
    }

    fn maybe_declaration(&mut self) -> Result<()> {
        if self.config.xml_declaration && !self.wrote_declaration {
            self.raw("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")?;
            if self.config.indent {
                self.raw("\n")?;
            }
            self.wrote_declaration = true;
        }
        Ok(())
    }

    /// Opens a start tag (everything up to the attributes) and pushes the
    /// element name onto the open stack, recycling a spare name buffer.
    fn open_tag(&mut self, name: &str) -> Result<()> {
        self.maybe_declaration()?;
        if let Some(flag) = self.had_child.last_mut() {
            *flag = true;
        }
        self.newline_indent()?;
        self.raw("<")?;
        self.raw(name)?;
        let mut owned = self.spare_names.pop().unwrap_or_default();
        owned.clear();
        owned.push_str(name);
        self.stack.push(owned);
        Ok(())
    }

    /// Writes one escaped attribute.
    fn write_attr(&mut self, name: &str, value: &str) -> Result<()> {
        self.raw(" ")?;
        self.raw(name)?;
        self.raw("=\"")?;
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        escape_attr_into(value, &mut scratch);
        let res = self.raw(&scratch);
        scratch.clear();
        self.scratch = scratch;
        res?;
        self.raw("\"")
    }

    /// Writes a start tag.
    pub fn start_element(&mut self, name: &str, attributes: &[Attribute]) -> Result<()> {
        self.open_tag(name)?;
        for attr in attributes {
            self.write_attr(&attr.name, &attr.value)?;
        }
        self.raw(">")?;
        self.had_child.push(false);
        Ok(())
    }

    /// Writes a start tag from interned-symbol parts, mapping names back
    /// through the shared `symbols` table. The steady-state cost is the
    /// same as [`XmlWriter::start_element`] minus all name allocations.
    ///
    /// The element `name` must be a real table symbol: a bounded-interner
    /// [`SymbolTable::OVERFLOW`] element carries its literal name in the
    /// event's target buffer, which this signature cannot see — write such
    /// events through [`XmlWriter::write_raw_event`] instead (overflow
    /// *attributes* are fine; they carry their own name).
    pub fn start_element_raw(
        &mut self,
        symbols: &SymbolTable,
        name: Symbol,
        attributes: &[RawAttr],
    ) -> Result<()> {
        if name == SymbolTable::OVERFLOW {
            return Err(XmlError::WriterMisuse {
                message: "start_element_raw cannot resolve an overflow element name; \
                          use write_raw_event for bounded-interner events"
                    .to_string(),
            });
        }
        self.start_tag_raw(symbols.name(name), symbols, attributes)
    }

    /// Shared start-tag emission for the raw paths: resolved name string,
    /// overflow-aware attribute names.
    fn start_tag_raw(
        &mut self,
        name: &str,
        symbols: &SymbolTable,
        attributes: &[RawAttr],
    ) -> Result<()> {
        self.open_tag(name)?;
        for attr in attributes {
            self.write_attr(attr.name_str(symbols), &attr.value)?;
        }
        self.raw(">")?;
        self.had_child.push(false);
        Ok(())
    }

    /// Writes the start tag of a borrowed event view — the zero-copy
    /// output path: names resolve through `symbols`, attribute payloads
    /// stream straight from the view's backing storage into the sink.
    pub fn start_element_view(
        &mut self,
        symbols: &SymbolTable,
        ev: &RawEventRef<'_>,
    ) -> Result<()> {
        self.open_tag(ev.name_str(symbols))?;
        for attr in ev.attrs() {
            self.write_attr(attr.name_str(symbols), attr.value)?;
        }
        self.raw(">")?;
        self.had_child.push(false);
        Ok(())
    }

    /// Writes the start tag of a buffered element node — the symbol fast
    /// path for serialising tree nodes: the element and attribute names
    /// resolve through the document's own table and stream straight into
    /// the sink, so copying a buffered subtree out allocates nothing.
    pub fn start_element_node(&mut self, doc: &Document, id: NodeId) -> Result<()> {
        let NodeKind::Element { name, attributes } = doc.kind(id) else {
            return Err(XmlError::WriterMisuse {
                message: "start_element_node requires an element node".to_string(),
            });
        };
        self.open_tag(doc.symbols().name(*name))?;
        for attr in attributes {
            self.write_attr(doc.symbols().name(attr.name), &attr.value)?;
        }
        self.raw(">")?;
        self.had_child.push(false);
        Ok(())
    }

    /// Writes one borrowed event view, mapping symbols back through
    /// `symbols`. `StartDocument`/`EndDocument`/doctype events are
    /// accepted and ignored so a view stream can be piped through
    /// unchanged.
    pub fn write_event_ref(&mut self, symbols: &SymbolTable, ev: &RawEventRef<'_>) -> Result<()> {
        match ev.kind() {
            RawEventKind::StartDocument | RawEventKind::EndDocument | RawEventKind::DoctypeDecl => {
                Ok(())
            }
            RawEventKind::StartElement => self.start_element_view(symbols, ev),
            RawEventKind::EndElement => self.end_element(),
            RawEventKind::Text => self.text(ev.text()),
            RawEventKind::Comment => self.comment(ev.text()),
            RawEventKind::ProcessingInstruction => {
                self.processing_instruction(ev.target(), ev.text())
            }
        }
    }

    /// Writes an end tag for the innermost open element.
    pub fn end_element(&mut self) -> Result<()> {
        let name = self.stack.pop().ok_or_else(|| XmlError::WriterMisuse {
            message: "end_element with no open element".to_string(),
        })?;
        let had_child = self.had_child.pop().unwrap_or(false);
        if had_child {
            self.newline_indent()?;
        }
        self.raw("</")?;
        self.raw(&name)?;
        self.raw(">")?;
        self.spare_names.push(name);
        Ok(())
    }

    /// Writes character data (escaped).
    pub fn text(&mut self, text: &str) -> Result<()> {
        if text.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        escape_text_into(text, &mut scratch);
        let res = self.raw(&scratch);
        scratch.clear();
        self.scratch = scratch;
        res
    }

    /// Writes a comment.
    pub fn comment(&mut self, text: &str) -> Result<()> {
        if text.contains("--") {
            return Err(XmlError::WriterMisuse {
                message: "`--` is not allowed inside comments".to_string(),
            });
        }
        self.raw("<!--")?;
        self.raw(text)?;
        self.raw("-->")
    }

    /// Writes a processing instruction (shared by both event paths).
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<()> {
        self.raw("<?")?;
        self.raw(target)?;
        if !data.is_empty() {
            self.raw(" ")?;
            self.raw(data)?;
        }
        self.raw("?>")
    }

    /// Writes one event. `StartDocument`/`EndDocument` are accepted and
    /// ignored so an event stream can be piped through unchanged.
    pub fn write_event(&mut self, event: &XmlEvent) -> Result<()> {
        match event {
            XmlEvent::StartDocument | XmlEvent::EndDocument | XmlEvent::DoctypeDecl { .. } => {
                Ok(())
            }
            XmlEvent::StartElement { name, attributes } => self.start_element(name, attributes),
            XmlEvent::EndElement { .. } => self.end_element(),
            XmlEvent::Text(t) => self.text(t),
            XmlEvent::Comment(c) => self.comment(c),
            XmlEvent::ProcessingInstruction { target, data } => {
                self.processing_instruction(target, data)
            }
        }
    }

    /// Writes one raw (interned) event, mapping symbols back through
    /// `symbols`. `StartDocument`/`EndDocument`/doctype events are accepted
    /// and ignored so a raw event stream can be piped through unchanged.
    pub fn write_raw_event(&mut self, symbols: &SymbolTable, event: &RawEvent) -> Result<()> {
        match event.kind() {
            RawEventKind::StartDocument | RawEventKind::EndDocument | RawEventKind::DoctypeDecl => {
                Ok(())
            }
            RawEventKind::StartElement => {
                // Resolve names through the overflow-aware accessors so
                // bounded-interner streams serialise correctly.
                self.start_tag_raw(event.name_str(symbols), symbols, event.attributes())
            }
            RawEventKind::EndElement => self.end_element(),
            RawEventKind::Text => self.text(event.text()),
            RawEventKind::Comment => self.comment(event.text()),
            RawEventKind::ProcessingInstruction => {
                self.processing_instruction(event.target(), event.text())
            }
        }
    }

    /// Checks that all elements are closed and flushes the sink.
    pub fn finish(&mut self) -> Result<()> {
        if !self.stack.is_empty() {
            return Err(XmlError::WriterMisuse {
                message: format!("{} element(s) still open at finish", self.stack.len()),
            });
        }
        self.sink.flush()?;
        Ok(())
    }
}

/// Serialises a list of events to a string (tests and small outputs).
pub fn events_to_string(events: &[XmlEvent]) -> Result<String> {
    let mut writer = XmlWriter::new(Vec::new());
    for ev in events {
        writer.write_event(ev)?;
    }
    writer.finish()?;
    let bytes = writer.into_inner();
    String::from_utf8(bytes).map_err(|_| XmlError::WriterMisuse {
        message: "writer produced invalid UTF-8".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_to_events;

    #[test]
    fn simple_output() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a", &[Attribute::new("k", "v")]).unwrap();
        w.text("x < y").unwrap();
        w.end_element().unwrap();
        w.finish().unwrap();
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(out, r#"<a k="v">x &lt; y</a>"#);
    }

    #[test]
    fn attribute_escaping() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a", &[Attribute::new("k", "say \"hi\" & <go>")])
            .unwrap();
        w.end_element().unwrap();
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(out, r#"<a k="say &quot;hi&quot; &amp; &lt;go>"></a>"#);
    }

    #[test]
    fn unbalanced_end_rejected() {
        let mut w = XmlWriter::new(Vec::new());
        assert!(w.end_element().is_err());
    }

    #[test]
    fn unclosed_at_finish_rejected() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a", &[]).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn bytes_written_counts_escapes() {
        let mut w = XmlWriter::new(Vec::new());
        w.start_element("a", &[]).unwrap();
        w.text("&").unwrap();
        w.end_element().unwrap();
        // <a>&amp;</a> = 12 bytes
        assert_eq!(w.bytes_written(), 12);
    }

    #[test]
    fn round_trip_through_reader() {
        let original = r#"<bib><book year="1994"><title>TCP/IP &amp; co</title><author>Stevens</author></book></bib>"#;
        let events = parse_to_events(original).unwrap();
        let written = events_to_string(&events).unwrap();
        assert_eq!(written, original);
        // And a second round trip is a fixpoint.
        let events2 = parse_to_events(&written).unwrap();
        assert_eq!(events, events2);
    }

    #[test]
    fn indentation() {
        let mut w = XmlWriter::with_config(
            Vec::new(),
            WriterConfig {
                indent: true,
                xml_declaration: false,
            },
        );
        w.start_element("a", &[]).unwrap();
        w.start_element("b", &[]).unwrap();
        w.end_element().unwrap();
        w.end_element().unwrap();
        w.finish().unwrap();
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(out, "<a>\n  <b></b>\n</a>");
    }

    #[test]
    fn xml_declaration_written_once() {
        let mut w = XmlWriter::with_config(
            Vec::new(),
            WriterConfig {
                indent: false,
                xml_declaration: true,
            },
        );
        w.start_element("a", &[]).unwrap();
        w.end_element().unwrap();
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a></a>");
    }

    #[test]
    fn comment_with_double_dash_rejected() {
        let mut w = XmlWriter::new(Vec::new());
        assert!(w.comment("a--b").is_err());
    }

    #[test]
    fn event_pipe_through() {
        let input = r#"<r><x a="1">t</x><y/></r>"#;
        let events = parse_to_events(input).unwrap();
        let out = events_to_string(&events).unwrap();
        assert_eq!(out, r#"<r><x a="1">t</x><y></y></r>"#);
    }
}
