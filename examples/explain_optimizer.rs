//! The optimizer at work: the paper's Section 3.1 examples, end to end.
//!
//! Run with: `cargo run --example explain_optimizer`

use fluxquery::{FluxEngine, Options, PAPER_FIG1_DTD};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cardinality constraints: two loops over $b/publisher merge, because
    // Figure 1 implies publisher ∈ ||≤1 book.
    let merge_query = r#"<out>{ for $b in $ROOT/bib/book return
        <r>{ for $x in $b/publisher return <first>{$x}</first> }
           { for $y in $b/publisher return <second>{$y}</second> }</r> }</out>"#;
    let engine = FluxEngine::compile(merge_query, PAPER_FIG1_DTD, &Options::default())?;
    println!("=== loop merging (cardinality constraints) ===\n");
    println!("{}", engine.explain());

    // Language constraints: a book never has both authors and editors, so
    // the conjunction is unsatisfiable and the conditional disappears.
    let unsat_query = r#"<out>{ for $b in $ROOT/bib/book return
        if ($b/author = "Goedel" and $b/editor = "Goedel")
        then <goedel-book/> else () }</out>"#;
    let engine = FluxEngine::compile(unsat_query, PAPER_FIG1_DTD, &Options::default())?;
    println!("\n=== unsatisfiable conditional elimination (language constraints) ===\n");
    println!("{}", engine.explain());

    // Order constraints: the full Q3 pipeline, zero buffering under Fig. 1.
    let q3 = r#"<results>{ for $b in $ROOT/bib/book return
        <result>{$b/title}{$b/author}</result> }</results>"#;
    let engine = FluxEngine::compile(q3, PAPER_FIG1_DTD, &Options::default())?;
    println!("\n=== Q3 scheduling (order constraints) ===\n");
    println!("{}", engine.explain());
    println!(
        "buffering handlers under Figure 1: {}",
        engine.buffered_handler_count()
    );
    Ok(())
}
