//! AVX2 prescan kernel: 32 bytes per step on x86_64.
//!
//! One `vpcmpeqb` + `vpmovmskb` pair per byte class per vector; the
//! resulting bitmasks are walked lowest-bit-first so lane pushes stay
//! strictly increasing. The sub-vector tail falls through to the SWAR
//! kernel, which keeps the two paths trivially consistent at the edges.
//!
//! `unsafe` is confined to this module: the workspace denies it, and only
//! the intrinsic calls here (guarded by runtime feature detection) are
//! exempted.
#![allow(unsafe_code)]

use super::index::{DeltaLane, StructuralIndex};
use super::swar;

/// Pushes every set bit of `mask` (bit i = byte `base + i` matched).
#[inline]
fn push_mask(lane: &mut DeltaLane, mut mask: u32, base: u64) {
    while mask != 0 {
        lane.push(base + mask.trailing_zeros() as u64);
        mask &= mask - 1;
    }
}

/// Safe entry point: verifies AVX2 support before touching intrinsics.
pub fn prescan(bytes: &[u8], base: u64, idx: &mut StructuralIndex) {
    assert!(
        is_x86_feature_detected!("avx2"),
        "AVX2 prescan invoked on a host without AVX2"
    );
    // SAFETY: the assert above proves the required target feature is
    // available on this CPU; `prescan_impl` has no other preconditions.
    unsafe { prescan_impl(bytes, base, idx) }
}

#[target_feature(enable = "avx2")]
unsafe fn prescan_impl(bytes: &[u8], base: u64, idx: &mut StructuralIndex) {
    use std::arch::x86_64::*;

    let lt = _mm256_set1_epi8(b'<' as i8);
    let gt = _mm256_set1_epi8(b'>' as i8);
    let dq = _mm256_set1_epi8(b'"' as i8);
    let sq = _mm256_set1_epi8(b'\'' as i8);
    let amp = _mm256_set1_epi8(b'&' as i8);
    let nl = _mm256_set1_epi8(b'\n' as i8);

    let mut offset = 0usize;
    while offset + 32 <= bytes.len() {
        // SAFETY: `offset + 32 <= len`, and loadu has no alignment needs.
        let v = unsafe { _mm256_loadu_si256(bytes.as_ptr().add(offset) as *const __m256i) };
        let at = base + offset as u64;
        let m_lt = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, lt)) as u32;
        let m_gt = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, gt)) as u32;
        let m_dq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, dq)) as u32;
        let m_sq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, sq)) as u32;
        let m_amp = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, amp)) as u32;
        let m_nl = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, nl)) as u32;
        push_mask(&mut idx.lt, m_lt, at);
        push_mask(&mut idx.gt, m_gt, at);
        push_mask(&mut idx.quote, m_dq | m_sq, at);
        push_mask(&mut idx.amp, m_amp, at);
        push_mask(&mut idx.nl, m_nl, at);
        offset += 32;
    }
    swar::prescan(&bytes[offset..], base + offset as u64, idx);
}
