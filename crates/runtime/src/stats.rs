//! Deterministic memory accounting and run statistics.
//!
//! The paper's evaluation metric is *buffer consumption*. We account every
//! byte that enters the buffer store (element shells, projected subtree
//! copies, text) and track the peak — a deterministic, allocator-independent
//! measure of what the engine architecture must hold in memory.

use flux_telemetry::json::JsonWriter;
use flux_telemetry::{BufferCounters, Residency};
use std::fmt;
use std::time::Duration;

/// Tracks current and peak buffered memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    current_bytes: usize,
    peak_bytes: usize,
    current_nodes: usize,
    peak_nodes: usize,
    total_allocated_bytes: u64,
    /// Alloc/free/grow traffic counters (zero-sized unless telemetry is
    /// enabled).
    tel: BufferCounters,
    /// Buffer-residency high-water sampler: a bounded trace of how the
    /// buffered-byte level evolved over the run (empty no-op when
    /// telemetry is off).
    residency: Residency,
}

impl MemoryTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn allocate(&mut self, bytes: usize) {
        self.current_bytes += bytes;
        self.current_nodes += 1;
        self.total_allocated_bytes += bytes as u64;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        self.peak_nodes = self.peak_nodes.max(self.current_nodes);
        self.tel.buffer_allocs(1);
        self.residency.tick(self.current_bytes as u64);
    }

    /// Accounts growth of an existing node (e.g. text appended to a merged
    /// text node).
    pub fn grow(&mut self, bytes: usize) {
        self.current_bytes += bytes;
        self.total_allocated_bytes += bytes as u64;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        self.tel.buffer_grows(1);
        self.residency.tick(self.current_bytes as u64);
    }

    pub fn release(&mut self, bytes: usize) {
        debug_assert!(self.current_bytes >= bytes, "released more than allocated");
        self.current_bytes = self.current_bytes.saturating_sub(bytes);
        self.current_nodes = self.current_nodes.saturating_sub(1);
        self.tel.buffer_frees(1);
        self.residency.tick(self.current_bytes as u64);
    }

    /// A copy of the buffer traffic counters.
    pub fn telemetry(&self) -> BufferCounters {
        self.tel
    }

    /// The residency high-water trace.
    pub fn residency(&self) -> &Residency {
        &self.residency
    }

    pub fn current_bytes(&self) -> usize {
        self.current_bytes
    }

    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    pub fn current_nodes(&self) -> usize {
        self.current_nodes
    }

    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// Total bytes ever allocated (allocation traffic, not residency).
    pub fn total_allocated_bytes(&self) -> u64 {
        self.total_allocated_bytes
    }
}

/// Statistics of one query execution.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Peak bytes held in buffers at any point during execution.
    pub peak_buffer_bytes: usize,
    /// Peak number of buffered nodes.
    pub peak_buffer_nodes: usize,
    /// Total buffer allocation traffic in bytes.
    pub total_buffered_bytes: u64,
    /// Bytes written to the output stream.
    pub output_bytes: u64,
    /// Input events processed (SAX + on-first).
    pub events: u64,
    /// Wall-clock execution time.
    pub duration: Duration,
}

impl RunStats {
    /// Rough throughput in events per second.
    pub fn events_per_second(&self) -> f64 {
        if self.duration.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.events as f64 / self.duration.as_secs_f64()
    }

    /// Renders the stats as pretty-printed JSON (hand-rolled — no
    /// dependencies; always available, telemetry feature or not). The
    /// same rendering is spliced into the `RunReport` as `run_stats`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("peak_buffer_bytes", self.peak_buffer_bytes as u64);
        w.field_u64("peak_buffer_nodes", self.peak_buffer_nodes as u64);
        w.field_u64("total_buffered_bytes", self.total_buffered_bytes);
        w.field_u64("output_bytes", self.output_bytes);
        w.field_u64("events", self.events);
        w.field_u64(
            "duration_ns",
            u64::try_from(self.duration.as_nanos()).unwrap_or(u64::MAX),
        );
        w.field_f64("events_per_second", self.events_per_second());
        w.end_obj();
        w.finish()
    }
}

/// The one-line human rendering shared by the CLI `--stats` switch,
/// conformance failure diagnostics and the text report.
impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events: {} | peak buffer: {} bytes / {} nodes | buffered total: {} bytes | output: {} bytes | {:.2?} ({:.0} events/s)",
            self.events,
            self.peak_buffer_bytes,
            self.peak_buffer_nodes,
            self.total_buffered_bytes,
            self.output_bytes,
            self.duration,
            self.events_per_second()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_peak_survives_release() {
        let mut t = MemoryTracker::new();
        t.allocate(100);
        t.allocate(50);
        assert_eq!(t.current_bytes(), 150);
        assert_eq!(t.peak_bytes(), 150);
        t.release(100);
        assert_eq!(t.current_bytes(), 50);
        assert_eq!(t.peak_bytes(), 150);
        t.allocate(30);
        assert_eq!(
            t.peak_bytes(),
            150,
            "peak unchanged below the high-water mark"
        );
        assert_eq!(t.total_allocated_bytes(), 180);
    }

    #[test]
    fn grow_counts_bytes_not_nodes() {
        let mut t = MemoryTracker::new();
        t.allocate(10);
        t.grow(5);
        assert_eq!(t.current_bytes(), 15);
        assert_eq!(t.current_nodes(), 1);
        assert_eq!(t.peak_nodes(), 1);
    }

    #[test]
    fn residency_trace_agrees_with_tracker_peak() {
        let mut t = MemoryTracker::new();
        for _ in 0..500 {
            t.allocate(64);
        }
        for _ in 0..500 {
            t.release(64);
        }
        if flux_telemetry::enabled() {
            assert_eq!(t.residency().max_high_water(), t.peak_bytes() as u64);
            let snap = t.telemetry().snapshot();
            assert!(snap.contains(&("buffer_allocs", 500)), "{snap:?}");
            assert!(snap.contains(&("buffer_frees", 500)), "{snap:?}");
        } else {
            assert!(t.residency().snapshot().is_empty());
        }
    }

    #[test]
    fn stats_render_as_json_and_text() {
        let stats = RunStats {
            peak_buffer_bytes: 1234,
            peak_buffer_nodes: 7,
            total_buffered_bytes: 9999,
            output_bytes: 321,
            events: 1000,
            duration: Duration::from_millis(250),
        };
        let json = stats.to_json();
        for needle in [
            "\"peak_buffer_bytes\": 1234",
            "\"peak_buffer_nodes\": 7",
            "\"total_buffered_bytes\": 9999",
            "\"output_bytes\": 321",
            "\"events\": 1000",
            "\"duration_ns\": 250000000",
            "\"events_per_second\": 4000.0",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let text = stats.to_string();
        assert!(text.contains("events: 1000"));
        assert!(text.contains("peak buffer: 1234 bytes / 7 nodes"));
        assert!(text.contains("4000 events/s"));
    }
}
