//! Differential testing of the content-model pipeline: a naive backtracking
//! regular-expression matcher serves as the oracle for the Glushkov →
//! subset-construction DFA, and the enumerated language serves as the
//! oracle for every derived schema constraint.

use flux_dtd::{glushkov, Dfa, Particle, Symbol, SymbolTable};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Naive oracle: the set of word positions reachable after matching
/// `particle` starting at `pos`.
fn naive_match(particle: &Particle, word: &[Symbol], pos: usize) -> BTreeSet<usize> {
    match particle {
        Particle::Epsilon => BTreeSet::from([pos]),
        Particle::Name(s) => {
            if word.get(pos) == Some(s) {
                BTreeSet::from([pos + 1])
            } else {
                BTreeSet::new()
            }
        }
        Particle::Seq(parts) => {
            let mut current = BTreeSet::from([pos]);
            for part in parts {
                let mut next = BTreeSet::new();
                for &p in &current {
                    next.extend(naive_match(part, word, p));
                }
                current = next;
                if current.is_empty() {
                    break;
                }
            }
            current
        }
        Particle::Choice(parts) => {
            let mut out = BTreeSet::new();
            for part in parts {
                out.extend(naive_match(part, word, pos));
            }
            out
        }
        Particle::Opt(inner) => {
            let mut out = naive_match(inner, word, pos);
            out.insert(pos);
            out
        }
        Particle::Star(inner) => {
            let mut out = BTreeSet::from([pos]);
            loop {
                let mut added = false;
                let frontier: Vec<usize> = out.iter().copied().collect();
                for p in frontier {
                    for q in naive_match(inner, word, p) {
                        // Guard against epsilon loops.
                        if q > p && out.insert(q) {
                            added = true;
                        }
                    }
                }
                if !added {
                    return out;
                }
            }
        }
        Particle::Plus(inner) => {
            // inner, inner*
            let after_one = naive_match(inner, word, pos);
            let star = Particle::Star(inner.clone());
            let mut out = BTreeSet::new();
            for p in after_one {
                out.extend(naive_match(&star, word, p));
            }
            out
        }
    }
}

fn oracle_accepts(particle: &Particle, word: &[Symbol]) -> bool {
    naive_match(particle, word, 0).contains(&word.len())
}

/// Random particle over `alphabet`, depth-bounded.
fn random_particle(rng: &mut SmallRng, alphabet: &[Symbol], depth: usize) -> Particle {
    if depth == 0 || rng.gen_bool(0.35) {
        return Particle::Name(alphabet[rng.gen_range(0..alphabet.len())]);
    }
    match rng.gen_range(0..5) {
        0 => {
            let n = rng.gen_range(2..=3);
            Particle::Seq(
                (0..n)
                    .map(|_| random_particle(rng, alphabet, depth - 1))
                    .collect(),
            )
        }
        1 => {
            let n = rng.gen_range(2..=3);
            Particle::Choice(
                (0..n)
                    .map(|_| random_particle(rng, alphabet, depth - 1))
                    .collect(),
            )
        }
        2 => Particle::Opt(Box::new(random_particle(rng, alphabet, depth - 1))),
        3 => Particle::Star(Box::new(random_particle(rng, alphabet, depth - 1))),
        _ => Particle::Plus(Box::new(random_particle(rng, alphabet, depth - 1))),
    }
}

/// All words over `alphabet` up to `max_len`.
fn all_words(alphabet: &[Symbol], max_len: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![vec![]];
    let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for &s in alphabet {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn setup(seed: u64) -> (Particle, Dfa, Vec<Symbol>) {
    let mut table = SymbolTable::new();
    let alphabet: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| table.intern(s)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let particle = random_particle(&mut rng, &alphabet, 3);
    let dfa = Dfa::from_glushkov(&glushkov(&particle));
    (particle, dfa, alphabet)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 120,
        ..ProptestConfig::default()
    })]

    /// The DFA accepts exactly the words the naive matcher accepts.
    #[test]
    fn dfa_agrees_with_naive_matcher(seed in 0u64..1_000_000) {
        let (particle, dfa, alphabet) = setup(seed);
        for word in all_words(&alphabet, 5) {
            let expected = oracle_accepts(&particle, &word);
            let got = dfa.accepts(word.iter().copied());
            prop_assert_eq!(
                got,
                expected,
                "word {:?} disagreement for particle {:?} (seed {})",
                word,
                particle,
                seed
            );
        }
    }

    /// Every derived constraint is sound with respect to the enumerated
    /// language, and every enumerated counterexample forces the constraint
    /// off.
    #[test]
    fn constraints_sound_on_enumerated_language(seed in 0u64..1_000_000) {
        let (particle, dfa, alphabet) = setup(seed);
        let accepted: Vec<Vec<Symbol>> = all_words(&alphabet, 6)
            .into_iter()
            .filter(|w| oracle_accepts(&particle, w))
            .collect();
        for &x in &alphabet {
            let count_gt1 = accepted.iter().any(|w| w.iter().filter(|&&s| s == x).count() > 1);
            if dfa.at_most_one(x) {
                prop_assert!(!count_gt1, "at_most_one({x:?}) but {particle:?} has a word with two");
            } else {
                // exists_order(x,x) promised a witness; it may be longer
                // than the enumeration bound, so only check the converse.
            }
            if count_gt1 {
                prop_assert!(!dfa.at_most_one(x));
            }

            let empty_word_free = accepted.iter().any(|w| !w.contains(&x));
            if dfa.at_least_one(x) {
                prop_assert!(!empty_word_free, "at_least_one({x:?}) violated in {particle:?}");
            }
            if empty_word_free {
                prop_assert!(!dfa.at_least_one(x));
            }

            let occurs = accepted.iter().any(|w| w.contains(&x));
            if dfa.never_occurs(x) {
                prop_assert!(!occurs);
            }
            if occurs {
                prop_assert!(!dfa.never_occurs(x));
            }
        }
        for &x in &alphabet {
            for &y in &alphabet {
                // all_before(x, y): no accepted word has y strictly before x.
                let violated = accepted.iter().any(|w| {
                    w.iter().enumerate().any(|(i, &s)| {
                        s == y && w[i + 1..].contains(&x)
                    })
                });
                if dfa.all_before(x, y) {
                    prop_assert!(
                        !violated,
                        "all_before({x:?},{y:?}) violated in {particle:?}"
                    );
                }
                if violated {
                    prop_assert!(!dfa.all_before(x, y));
                }
                if x != y {
                    let together = accepted.iter().any(|w| w.contains(&x) && w.contains(&y));
                    if dfa.never_together(x, y) {
                        prop_assert!(!together);
                    }
                    if together {
                        prop_assert!(!dfa.never_together(x, y));
                    }
                }
            }
        }
    }

    /// `still_possible` is an upper bound on what actually follows in any
    /// accepted continuation, and every actually-following symbol is in it.
    #[test]
    fn still_possible_covers_suffixes(seed in 0u64..1_000_000) {
        let (particle, dfa, alphabet) = setup(seed);
        let accepted: Vec<Vec<Symbol>> = all_words(&alphabet, 6)
            .into_iter()
            .filter(|w| oracle_accepts(&particle, w))
            .collect();
        for word in &accepted {
            let mut state = dfa.start();
            for (i, &sym) in word.iter().enumerate() {
                // Everything in the actual suffix must be still possible
                // before consuming it.
                for &suffix_sym in &word[i..] {
                    prop_assert!(
                        dfa.still_possible(state).contains(&suffix_sym),
                        "{suffix_sym:?} follows at {i} but not in still_possible for {particle:?}"
                    );
                }
                state = dfa.transition(state, sym).expect("accepted word");
            }
        }
    }
}
