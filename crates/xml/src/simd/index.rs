//! The structural index: delta-encoded position lanes filled by the
//! vectorised prescan and consumed by the scanner, reader and shard
//! splitter.
//!
//! One [`DeltaLane`] per structural byte class records the absolute input
//! offsets of every occurrence, stored as `u32` deltas between consecutive
//! positions (gaps wider than a `u32` are bridged by gap markers, so the
//! lane addresses the full `u64` offset space while paying four bytes per
//! entry). Consumption is strictly monotone — the scanner only ever moves
//! forward — so every read is a cursor advance, never a search.

/// Marker entry: "advance the cursor base by [`GAP_SPAN`] bytes, there is
/// no structural position here". Real deltas are always `< u32::MAX`.
const GAP: u32 = u32::MAX;

/// How far one gap marker advances the accumulated base.
const GAP_SPAN: u64 = u32::MAX as u64;

/// One structural byte class: absolute positions, delta-encoded.
///
/// The lane is an append-only queue with a consuming cursor. `push` must
/// be called with strictly increasing positions; `peek`/`pop` and the
/// range helpers resolve deltas back to absolute `u64` offsets.
#[derive(Debug, Default)]
pub struct DeltaLane {
    /// Deltas between consecutive recorded positions ([`GAP`] = marker).
    deltas: Vec<u32>,
    /// Index of the next unconsumed entry.
    head: usize,
    /// Absolute position the delta at `head` is relative to.
    head_base: u64,
    /// Absolute position of the most recently pushed entry (push side).
    tail_abs: u64,
}

impl DeltaLane {
    /// Appends an absolute position. Positions must be strictly
    /// increasing across the life of the lane (the prescan sweeps the
    /// input once, in order).
    #[inline]
    pub fn push(&mut self, abs: u64) {
        debug_assert!(
            self.deltas.is_empty() || abs > self.tail_abs,
            "lane positions must be strictly increasing"
        );
        let mut delta = abs - self.tail_abs;
        while delta >= GAP_SPAN {
            self.deltas.push(GAP);
            delta -= GAP_SPAN;
        }
        self.deltas.push(delta as u32);
        self.tail_abs = abs;
    }

    /// The next unconsumed position, without consuming it. Gap markers
    /// are folded into the cursor base as they are crossed.
    #[inline]
    pub fn peek(&mut self) -> Option<u64> {
        while let Some(&d) = self.deltas.get(self.head) {
            if d != GAP {
                return Some(self.head_base + d as u64);
            }
            self.head += 1;
            self.head_base += GAP_SPAN;
        }
        None
    }

    /// Consumes and returns the next position.
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        let abs = self.peek()?;
        self.head += 1;
        self.head_base = abs;
        Some(abs)
    }

    /// First recorded position `>= from`, consuming everything before it.
    /// Queries must be monotone non-decreasing (enforced by the scanner's
    /// forward-only consumption).
    #[inline]
    pub fn next_at_or_after(&mut self, from: u64) -> Option<u64> {
        loop {
            let abs = self.peek()?;
            if abs >= from {
                return Some(abs);
            }
            self.pop();
        }
    }

    /// Consumes every position in `[from, to)`, returning how many there
    /// were and the last one. Positions before `from` are consumed
    /// silently (they belong to bytes accounted for elsewhere).
    #[inline]
    pub fn take_range(&mut self, from: u64, to: u64) -> (usize, Option<u64>) {
        let mut count = 0usize;
        let mut last = None;
        while let Some(abs) = self.peek() {
            if abs >= to {
                break;
            }
            self.pop();
            if abs >= from {
                count += 1;
                last = Some(abs);
            }
        }
        (count, last)
    }

    /// Consumes every position `< bound` without reporting it. Used to
    /// discard entries for bytes the scanner has already moved past, so
    /// cursors start at the current position and lanes stay bounded by
    /// the window size, not the document size.
    #[inline]
    pub fn drop_before(&mut self, bound: u64) {
        while let Some(abs) = self.peek() {
            if abs >= bound {
                break;
            }
            self.pop();
        }
    }

    /// A read-only cursor over the unconsumed entries: peeking ahead
    /// without committing, so a speculative walk (e.g. the reader's
    /// quote-parity tag-end search) can bail and retry after a refill
    /// with nothing lost.
    #[inline]
    pub fn cursor(&self) -> LaneCursor<'_> {
        LaneCursor {
            deltas: &self.deltas,
            at: self.head,
            base: self.head_base,
        }
    }

    /// Releases the storage of consumed entries, keeping capacity for
    /// reuse — the steady-state parse loop allocates nothing once every
    /// lane has grown to its per-window high-water mark.
    pub fn release_consumed(&mut self) {
        if self.head == self.deltas.len() {
            self.deltas.clear();
        } else if self.head > 0 {
            self.deltas.drain(..self.head);
        }
        self.head = 0;
    }

    /// Number of unconsumed entries (gap markers excluded from positions
    /// but included here; used only by tests and diagnostics).
    pub fn pending(&self) -> usize {
        self.deltas.len() - self.head
    }
}

/// Non-consuming iterator over a lane's unconsumed positions.
pub struct LaneCursor<'a> {
    deltas: &'a [u32],
    at: usize,
    base: u64,
}

impl Iterator for LaneCursor<'_> {
    type Item = u64;

    /// The next position, advancing only this cursor.
    #[inline]
    fn next(&mut self) -> Option<u64> {
        while let Some(&d) = self.deltas.get(self.at) {
            self.at += 1;
            if d != GAP {
                self.base += d as u64;
                return Some(self.base);
            }
            self.base += GAP_SPAN;
        }
        None
    }
}

impl LaneCursor<'_> {
    /// The first remaining position `>= from`.
    #[inline]
    pub fn next_at_or_after(&mut self, from: u64) -> Option<u64> {
        self.find(|&abs| abs >= from)
    }
}

/// Structural byte classes the prescan records.
///
/// `Quote` merges `"` and `'` into one lane — the consumer knows which
/// quote character opened the construct and checks the byte itself, which
/// keeps the prescan at one comparison pair instead of two lanes with
/// separate cursors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// `<` — markup start candidates.
    Lt,
    /// `>` — markup end candidates (may sit inside quoted values).
    Gt,
    /// `"` or `'` — quote-parity boundaries inside markup.
    Quote,
    /// `&` — entity/character reference starts.
    Amp,
    /// `\n` — newline positions feeding line/column accounting.
    Newline,
}

/// The structural index: one delta lane per byte class, covering a
/// contiguous, monotonically growing span of the input.
#[derive(Debug, Default)]
pub struct StructuralIndex {
    pub lt: DeltaLane,
    pub gt: DeltaLane,
    pub quote: DeltaLane,
    pub amp: DeltaLane,
    pub nl: DeltaLane,
}

impl StructuralIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// The lane for `class`.
    #[inline]
    pub fn lane(&mut self, class: Class) -> &mut DeltaLane {
        match class {
            Class::Lt => &mut self.lt,
            Class::Gt => &mut self.gt,
            Class::Quote => &mut self.quote,
            Class::Amp => &mut self.amp,
            Class::Newline => &mut self.nl,
        }
    }

    /// The lane indexing `byte`, when one exists.
    #[inline]
    pub fn lane_for_byte(&mut self, byte: u8) -> Option<&mut DeltaLane> {
        match byte {
            b'<' => Some(&mut self.lt),
            b'>' => Some(&mut self.gt),
            b'"' | b'\'' => Some(&mut self.quote),
            b'&' => Some(&mut self.amp),
            b'\n' => Some(&mut self.nl),
            _ => None,
        }
    }

    /// Discards positions `< bound` in every lane — everything behind the
    /// scanner's current offset is structurally dead.
    pub fn drop_before(&mut self, bound: u64) {
        self.lt.drop_before(bound);
        self.gt.drop_before(bound);
        self.quote.drop_before(bound);
        self.amp.drop_before(bound);
        self.nl.drop_before(bound);
    }

    /// Releases consumed entries in every lane (called when the scanner
    /// compacts its window; capacities are kept).
    pub fn release_consumed(&mut self) {
        self.lt.release_consumed();
        self.gt.release_consumed();
        self.quote.release_consumed();
        self.amp.release_consumed();
        self.nl.release_consumed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trip() {
        let mut lane = DeltaLane::default();
        let positions = [0u64, 1, 7, 8, 1000, 1001, 1_000_000];
        for &p in &positions {
            lane.push(p);
        }
        let mut out = Vec::new();
        while let Some(p) = lane.pop() {
            out.push(p);
        }
        assert_eq!(out, positions);
    }

    #[test]
    fn gap_markers_bridge_u32_overflow() {
        // Positions more than u32::MAX apart exercise the gap markers
        // without allocating 4 GiB of input.
        let mut lane = DeltaLane::default();
        let positions = [
            5u64,
            5 + GAP_SPAN,
            5 + GAP_SPAN + 1,
            20 + 3 * GAP_SPAN,
            u64::from(u32::MAX) * 5 + 17,
        ];
        for &p in &positions {
            lane.push(p);
        }
        let collected: Vec<u64> = std::iter::from_fn(|| lane.pop()).collect();
        assert_eq!(collected, positions);
    }

    #[test]
    fn next_at_or_after_consumes_prefix() {
        let mut lane = DeltaLane::default();
        for p in [2u64, 4, 9, 15] {
            lane.push(p);
        }
        assert_eq!(lane.next_at_or_after(0), Some(2));
        assert_eq!(lane.next_at_or_after(3), Some(4));
        assert_eq!(lane.next_at_or_after(10), Some(15));
        assert_eq!(lane.next_at_or_after(16), None);
    }

    #[test]
    fn take_range_counts_and_reports_last() {
        let mut lane = DeltaLane::default();
        for p in [1u64, 3, 5, 7, 11] {
            lane.push(p);
        }
        assert_eq!(lane.take_range(0, 4), (2, Some(3)));
        // Entries below `from` (none remain) are skipped silently.
        assert_eq!(lane.take_range(6, 12), (2, Some(11)));
        assert_eq!(lane.take_range(12, 100), (0, None));
    }

    #[test]
    fn release_consumed_keeps_pending_entries() {
        let mut lane = DeltaLane::default();
        for p in [10u64, 20, 30, 40] {
            lane.push(p);
        }
        assert_eq!(lane.pop(), Some(10));
        assert_eq!(lane.pop(), Some(20));
        lane.release_consumed();
        assert_eq!(lane.pending(), 2);
        assert_eq!(lane.pop(), Some(30));
        assert_eq!(lane.pop(), Some(40));
        lane.release_consumed();
        assert_eq!(lane.pending(), 0);
        // Pushes keep working across releases.
        lane.push(50);
        assert_eq!(lane.pop(), Some(50));
    }

    #[test]
    fn lane_for_byte_covers_all_classes() {
        let mut idx = StructuralIndex::new();
        for b in [b'<', b'>', b'"', b'\'', b'&', b'\n'] {
            assert!(idx.lane_for_byte(b).is_some(), "byte {b}");
        }
        assert!(idx.lane_for_byte(b'x').is_none());
    }
}
