//! The pull-event source abstraction.
//!
//! [`EventSource`] is the contract between event *producers* (the
//! sequential [`XmlReader`], the parallel `flux_shard::ShardedReader`) and
//! event *consumers* (the XSAX validating parser, the FluX runtime).
//!
//! The hot path is the **borrowed view protocol**:
//! [`EventSource::advance`] moves to the next event and
//! [`EventSource::view`] exposes it as a [`RawEventRef`] whose payloads
//! borrow the source's own storage — the scanner window, an event-tape
//! arena, or a recycled buffer. Delivering an event is a pointer hand-off:
//! zero copies, zero allocations.
//!
//! ## Lifetime rules
//!
//! * A view is valid from the `advance` that produced it until the next
//!   `advance` (or any `next_into`) on the same source. The borrow checker
//!   enforces this — `view` borrows the source shared, `advance` needs it
//!   exclusively.
//! * A consumer that must hold an event across its own pulls (XSAX parks
//!   one event while delivering queued `on-first` fires) must either defer
//!   its next `advance` until the event is fully delivered (what XSAX
//!   does) or materialise the view with [`RawEventRef::copy_into`].
//! * [`EventSource::next_into`] is the copying compatibility wrapper:
//!   same event sequence, one payload copy per event.
//!
//! Names are interned in a [`SymbolTable`] owned by the source; consumers
//! written against this trait work unchanged over a single-threaded stream
//! or a sharded, multi-core one.

use crate::error::{Position, Result};
use crate::event::{RawEvent, RawEventRef};
use crate::reader::XmlReader;
use flux_symbols::SymbolTable;
use std::io::Read;

/// A pull source of XML events, viewable without copies.
pub trait EventSource {
    /// Advances to the next event. Returns `Ok(false)` once `EndDocument`
    /// has been delivered.
    fn advance(&mut self) -> Result<bool>;

    /// A borrowed view of the current event (the one the last successful
    /// [`EventSource::advance`] produced), valid until the next advance.
    fn view(&self) -> RawEventRef<'_>;

    /// The interner mapping the [`flux_symbols::Symbol`]s in delivered
    /// events back to names. Sources seeded from a schema table preserve
    /// its indices, so stream symbols coincide with schema symbols.
    fn symbols(&self) -> &SymbolTable;

    /// Current input position, for error reporting. Replay sources report
    /// the position recorded when the current event was originally parsed,
    /// so errors carry exactly the sequential position.
    fn position(&self) -> Position;

    /// Pulls the next event into the caller-owned `ev`, recycling its
    /// buffers — the copying compatibility path. Returns `Ok(false)` once
    /// `EndDocument` has been delivered.
    fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        if !self.advance()? {
            return Ok(false);
        }
        self.view().copy_into(ev);
        Ok(true)
    }

    /// Appends this source's telemetry stages to `report`. The default is
    /// a no-op so third-party sources need no changes; the in-repo sources
    /// contribute scanner/reader stages (and the sharded reader its
    /// per-shard pipeline timeline). Without the `telemetry` feature the
    /// stages are appended empty — the report stays structurally stable.
    fn report_into(&self, report: &mut flux_telemetry::RunReport) {
        let _ = report;
    }
}

impl<R: Read> EventSource for XmlReader<R> {
    fn advance(&mut self) -> Result<bool> {
        XmlReader::advance(self)
    }

    fn view(&self) -> RawEventRef<'_> {
        XmlReader::view(self)
    }

    fn symbols(&self) -> &SymbolTable {
        XmlReader::symbols(self)
    }

    fn position(&self) -> Position {
        XmlReader::position(self)
    }

    fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        // The reader parses straight into the caller's event — bypassing
        // the internal view storage saves a copy on this path too.
        XmlReader::next_into(self, ev)
    }

    fn report_into(&self, report: &mut flux_telemetry::RunReport) {
        XmlReader::report_into(self, report)
    }
}
