//! Equivalence suite for the structural prescan (phase one of the
//! two-phase parser).
//!
//! The contract under test: **every** kernel — AVX2, NEON, portable SWAR
//! — records exactly the positions a per-byte scan finds, for any input
//! bytes, at any absolute base offset, whether the input arrives in one
//! sweep or split across refill-sized pieces. The parser's correctness
//! rests on this: phase two never re-reads bytes the index already
//! classified, so a single missed or phantom position would silently
//! corrupt tag boundaries.

use flux_xml::simd::{available_isas, prescan_with, Isa, StructuralIndex};
use proptest::prelude::*;

/// Per-byte reference: the positions each lane must hold, computed with
/// no kernels at all. Lane order: `<`, `>`, quote, `&`, newline.
fn naive_lanes(bytes: &[u8], base: u64) -> [Vec<u64>; 5] {
    let mut lanes: [Vec<u64>; 5] = Default::default();
    for (i, &b) in bytes.iter().enumerate() {
        let lane = match b {
            b'<' => 0,
            b'>' => 1,
            b'"' | b'\'' => 2,
            b'&' => 3,
            b'\n' => 4,
            _ => continue,
        };
        lanes[lane].push(base + i as u64);
    }
    lanes
}

/// Drains an index built by `isa` into absolute positions per lane.
fn kernel_lanes(isa: Isa, bytes: &[u8], base: u64) -> [Vec<u64>; 5] {
    let mut idx = StructuralIndex::new();
    prescan_with(isa, bytes, base, &mut idx);
    drain(idx)
}

fn drain(mut idx: StructuralIndex) -> [Vec<u64>; 5] {
    [
        std::iter::from_fn(|| idx.lt.pop()).collect(),
        std::iter::from_fn(|| idx.gt.pop()).collect(),
        std::iter::from_fn(|| idx.quote.pop()).collect(),
        std::iter::from_fn(|| idx.amp.pop()).collect(),
        std::iter::from_fn(|| idx.nl.pop()).collect(),
    ]
}

fn assert_all_kernels_match(bytes: &[u8], base: u64) {
    let want = naive_lanes(bytes, base);
    for isa in available_isas() {
        assert_eq!(
            kernel_lanes(isa, bytes, base),
            want,
            "{isa:?} diverges from the per-byte reference ({} bytes, base {base})",
            bytes.len()
        );
    }
}

#[test]
fn handcrafted_pathological_inputs() {
    let cases: &[&[u8]] = &[
        b"",
        b"<",
        b">",
        b"'",
        b"\n",
        b"&",
        b"plain text with no structure at all",
        b"<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<<",
        b"<>\"'&\n<>\"'&\n<>\"'&\n<>\"'&\n<>\"'&\n<>\"'&\n",
        b"<a href=\"x>y\" alt='p>q'>quoted `>` stays indexed</a>",
        b"<!-- comment full of <fake> tags & ampersands -->",
        b"<![CDATA[raw <b>bytes</b> &amp; more]]>",
        // 31/32/33 bytes straddle the AVX2 step; 7/8/9 the SWAR step.
        b"0123456789012345678901234567890<",
        b"01234567890123456789012345678901<",
        b"012345678901234567890123456789012<",
        b"0123456<",
        b"01234567<",
        b"012345678<",
    ];
    for bytes in cases {
        for base in [0u64, 1, 7, 4096] {
            assert_all_kernels_match(bytes, base);
        }
    }
}

#[test]
fn split_sweeps_concatenate() {
    // The scanner prescans each refill separately into one shared index;
    // any split of the input must build the same lanes as one sweep.
    let doc =
        b"<list>\n  <item id=\"a>b\">text &amp; more</item>\n  <item id='c'>x</item>\n</list>\n";
    for isa in available_isas() {
        let whole = kernel_lanes(isa, doc, 0);
        for split in [1usize, 7, 8, 9, 31, 32, 33, doc.len() - 1] {
            let mut idx = StructuralIndex::new();
            prescan_with(isa, &doc[..split], 0, &mut idx);
            prescan_with(isa, &doc[split..], split as u64, &mut idx);
            assert_eq!(drain(idx), whole, "{isa:?} split at {split}");
        }
    }
}

/// Deterministic byte soup from a seed. With `xmlish`, roughly half the
/// bytes are remapped onto a structure-heavy palette so lane boundaries
/// and dense runs get exercised; otherwise bytes stay uniform.
fn bytes_from_seed(seed: u64, len: usize, xmlish: bool) -> Vec<u8> {
    const PALETTE: &[u8] = b"<<>>\"'&\n<>a b\tc&";
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        for b in next().to_le_bytes() {
            if out.len() == len {
                break;
            }
            if xmlish && b % 2 == 0 {
                out.push(PALETTE[(b as usize / 2) % PALETTE.len()]);
            } else {
                out.push(b);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    /// Arbitrary bytes, arbitrary base: every kernel equals the per-byte
    /// reference.
    #[test]
    fn kernels_match_naive_on_arbitrary_bytes(
        seed in 0u64..u64::MAX,
        len in 0usize..400,
        base in 0u64..1_000_000,
    ) {
        assert_all_kernels_match(&bytes_from_seed(seed, len, false), base);
    }

    /// Structure-dense inputs at misaligned bases.
    #[test]
    fn kernels_match_naive_on_xmlish_bytes(
        seed in 0u64..u64::MAX,
        len in 0usize..600,
        base in 0u64..1_000_000,
    ) {
        assert_all_kernels_match(&bytes_from_seed(seed, len, true), base);
    }

    /// Splitting the sweep at an arbitrary point changes nothing.
    #[test]
    fn arbitrary_splits_concatenate(
        seed in 0u64..u64::MAX,
        len in 1usize..600,
        split_pick in 0usize..600,
    ) {
        let bytes = bytes_from_seed(seed, len, true);
        let split = split_pick % (bytes.len() + 1);
        let want = naive_lanes(&bytes, 0);
        for isa in available_isas() {
            let mut idx = StructuralIndex::new();
            prescan_with(isa, &bytes[..split], 0, &mut idx);
            prescan_with(isa, &bytes[split..], split as u64, &mut idx);
            prop_assert_eq!(&drain(idx), &want, "{:?} split at {}", isa, split);
        }
    }
}
