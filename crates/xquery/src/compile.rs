//! Query compilation: the one-time translation from the normalized AST to
//! a [`CompiledExpr`] whose names carry pre-resolved [`Symbol`]s and whose
//! variables carry dense slot indices.
//!
//! The paper's premise is that everything a query needs to know about the
//! schema is decided at compile time; this module applies the same rule to
//! the evaluator itself. Each path step and element-constructor name is
//! resolved against the *stream's* symbol table exactly once, so steady
//! state evaluation compares interned integers instead of hashing label
//! strings on every step of every firing. Names the compile-time table
//! does not know (bounded-interner `OVERFLOW` spellings, labels outside
//! the DTD) keep their literal spelling and fall back to one table lookup
//! per cursor — the same contract BDF descent uses.

use crate::ast::*;
use crate::error::{Result, XQueryError};
use flux_xml::tree::{Document, NodeId};
use flux_xml::Symbol;
use std::fmt;

/// A name resolved once at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledName {
    /// The pre-resolved symbol, valid in any document seeded from (or
    /// aligned with) the compile-time table. `None` when the compile-time
    /// table declined the name.
    pub sym: Option<Symbol>,
    /// The literal spelling — the fallback identity for unresolved names.
    pub literal: String,
}

impl CompiledName {
    pub fn new(literal: &str, resolve: &mut dyn FnMut(&str) -> Option<Symbol>) -> Self {
        CompiledName {
            sym: resolve(literal),
            literal: literal.to_string(),
        }
    }

    /// The symbol this name denotes in `doc`'s index space: the compiled
    /// symbol when one exists, else a single table lookup by spelling
    /// (undeclared labels only — `None` means no node can match).
    #[inline]
    pub fn resolve(&self, doc: &Document) -> Option<Symbol> {
        match self.sym {
            Some(s) => Some(s),
            None => doc.symbols().lookup(&self.literal),
        }
    }
}

/// Dense variable numbering for one compiled query. Bindings live in a
/// flat `Slots` array indexed by these numbers, so runtime lookup is an
/// array read instead of a hash probe, and shadowing is save/restore of
/// one array cell.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    names: Vec<VarName>,
}

impl SlotMap {
    pub fn new() -> Self {
        SlotMap::default()
    }

    /// Slot of `name`, allocating one on first sight.
    pub fn slot(&mut self, name: &str) -> usize {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name.to_string());
                self.names.len() - 1
            }
        }
    }

    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// A fresh, unbound binding array sized for this map.
    pub fn make_slots(&self) -> Slots {
        vec![None; self.names.len()]
    }
}

/// Runtime variable bindings: one optional node per slot.
pub type Slots = Vec<Option<NodeId>>;

/// The trailing non-element step of a path, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathTail {
    /// Pure element path.
    None,
    /// `/@name` — attribute string values.
    Attribute(CompiledName),
    /// `/text()` — text-node children.
    Text,
}

/// A path whose child steps are pre-resolved symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPath {
    /// Slot of the start variable.
    pub start_slot: usize,
    /// Its name, kept for the unbound-variable diagnostic.
    pub start_name: VarName,
    /// The child steps (the tail excluded).
    pub steps: Vec<CompiledName>,
    pub tail: PathTail,
    /// The AST rendering, kept verbatim for error-message parity with the
    /// reference interpreter.
    pub display: String,
}

impl fmt::Display for CompiledPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display)
    }
}

/// One part of a compiled attribute value template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledAttrPart {
    Literal(String),
    // Boxed: a compiled expression dwarfs a literal, and attribute
    // templates are cold compile-time data.
    Expr(Box<CompiledExpr>),
}

/// A compiled attribute constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledAttr {
    pub name: String,
    pub value: Vec<CompiledAttrPart>,
}

/// A compiled condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledCond {
    True,
    False,
    And(Box<CompiledCond>, Box<CompiledCond>),
    Or(Box<CompiledCond>, Box<CompiledCond>),
    Not(Box<CompiledCond>),
    Exists(CompiledPath),
    Empty(CompiledPath),
    Cmp {
        lhs: CompiledOperand,
        op: CmpOp,
        rhs: CompiledOperand,
    },
}

/// A compiled comparison operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledOperand {
    Path(CompiledPath),
    StringLit(String),
    NumberLit(String),
}

/// The compiled expression form evaluated by
/// [`CursorEvaluator`](crate::eval::CursorEvaluator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledExpr {
    Empty,
    StringLit(String),
    Var {
        slot: usize,
        name: VarName,
    },
    Path(CompiledPath),
    Sequence(Vec<CompiledExpr>),
    Element {
        name: CompiledName,
        attributes: Vec<CompiledAttr>,
        content: Box<CompiledExpr>,
    },
    For {
        var_slot: usize,
        source: CompiledPath,
        where_clause: Option<CompiledCond>,
        body: Box<CompiledExpr>,
    },
    If {
        cond: CompiledCond,
        then_branch: Box<CompiledExpr>,
        else_branch: Box<CompiledExpr>,
    },
}

/// Compiles a normalized expression. `slots` accumulates variable numbering
/// (callers pre-intern `$ROOT` and any externally bound variables);
/// `resolve` maps a label spelling to its symbol in the stream's table —
/// `None` marks the label as unknown, leaving the literal-spelling
/// fallback in place.
pub fn compile_expr(
    expr: &Expr,
    slots: &mut SlotMap,
    resolve: &mut dyn FnMut(&str) -> Option<Symbol>,
) -> Result<CompiledExpr> {
    Ok(match expr {
        Expr::Empty => CompiledExpr::Empty,
        Expr::StringLit(s) => CompiledExpr::StringLit(s.clone()),
        Expr::Var(v) => CompiledExpr::Var {
            slot: slots.slot(v),
            name: v.clone(),
        },
        Expr::Path(p) => CompiledExpr::Path(compile_path(p, slots, resolve)?),
        Expr::Sequence(items) => CompiledExpr::Sequence(
            items
                .iter()
                .map(|e| compile_expr(e, slots, resolve))
                .collect::<Result<_>>()?,
        ),
        Expr::Element {
            name,
            attributes,
            content,
        } => CompiledExpr::Element {
            name: CompiledName::new(name, resolve),
            attributes: attributes
                .iter()
                .map(|a| compile_attr(a, slots, resolve))
                .collect::<Result<_>>()?,
            content: Box::new(compile_expr(content, slots, resolve)?),
        },
        Expr::For {
            var,
            source,
            where_clause,
            body,
        } => {
            let source = compile_path(source, slots, resolve)?;
            let var_slot = slots.slot(var);
            CompiledExpr::For {
                var_slot,
                source,
                where_clause: match where_clause {
                    Some(c) => Some(compile_cond(c, slots, resolve)?),
                    None => None,
                },
                body: Box::new(compile_expr(body, slots, resolve)?),
            }
        }
        Expr::Let { .. } => {
            return Err(XQueryError::eval(
                "let must be inlined by normalization before evaluation",
            ))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => CompiledExpr::If {
            cond: compile_cond(cond, slots, resolve)?,
            then_branch: Box::new(compile_expr(then_branch, slots, resolve)?),
            else_branch: Box::new(compile_expr(else_branch, slots, resolve)?),
        },
    })
}

/// Compiles a path. A non-final attribute or `text()` step is malformed in
/// every context, so it is rejected here (the reference interpreter raises
/// the same message lazily at evaluation time).
pub fn compile_path(
    path: &Path,
    slots: &mut SlotMap,
    resolve: &mut dyn FnMut(&str) -> Option<Symbol>,
) -> Result<CompiledPath> {
    let (element_steps, tail) = match path.steps.last() {
        Some(Step::Attribute(name)) => (
            &path.steps[..path.steps.len() - 1],
            PathTail::Attribute(CompiledName::new(name, resolve)),
        ),
        Some(Step::Text) => (&path.steps[..path.steps.len() - 1], PathTail::Text),
        _ => (&path.steps[..], PathTail::None),
    };
    let mut steps = Vec::with_capacity(element_steps.len());
    for step in element_steps {
        let Step::Child(name) = step else {
            return Err(XQueryError::eval(format!(
                "non-final attribute/text step in {path}"
            )));
        };
        steps.push(CompiledName::new(name, resolve));
    }
    Ok(CompiledPath {
        start_slot: slots.slot(&path.start),
        start_name: path.start.clone(),
        steps,
        tail,
        display: path.to_string(),
    })
}

/// Compiles one attribute constructor (name kept literal — constructed
/// attributes are output-side, never matched against the stream).
pub fn compile_attr(
    attr: &AttrConstructor,
    slots: &mut SlotMap,
    resolve: &mut dyn FnMut(&str) -> Option<Symbol>,
) -> Result<CompiledAttr> {
    Ok(CompiledAttr {
        name: attr.name.clone(),
        value: attr
            .value
            .iter()
            .map(|part| {
                Ok(match part {
                    AttrPart::Literal(t) => CompiledAttrPart::Literal(t.clone()),
                    AttrPart::Expr(e) => {
                        CompiledAttrPart::Expr(Box::new(compile_expr(e, slots, resolve)?))
                    }
                })
            })
            .collect::<Result<_>>()?,
    })
}

pub fn compile_cond(
    cond: &Cond,
    slots: &mut SlotMap,
    resolve: &mut dyn FnMut(&str) -> Option<Symbol>,
) -> Result<CompiledCond> {
    Ok(match cond {
        Cond::True => CompiledCond::True,
        Cond::False => CompiledCond::False,
        Cond::And(a, b) => CompiledCond::And(
            Box::new(compile_cond(a, slots, resolve)?),
            Box::new(compile_cond(b, slots, resolve)?),
        ),
        Cond::Or(a, b) => CompiledCond::Or(
            Box::new(compile_cond(a, slots, resolve)?),
            Box::new(compile_cond(b, slots, resolve)?),
        ),
        Cond::Not(c) => CompiledCond::Not(Box::new(compile_cond(c, slots, resolve)?)),
        Cond::Exists(p) => CompiledCond::Exists(compile_path(p, slots, resolve)?),
        Cond::Empty(p) => CompiledCond::Empty(compile_path(p, slots, resolve)?),
        Cond::Cmp { lhs, op, rhs } => CompiledCond::Cmp {
            lhs: compile_operand(lhs, slots, resolve)?,
            op: *op,
            rhs: compile_operand(rhs, slots, resolve)?,
        },
    })
}

fn compile_operand(
    op: &Operand,
    slots: &mut SlotMap,
    resolve: &mut dyn FnMut(&str) -> Option<Symbol>,
) -> Result<CompiledOperand> {
    Ok(match op {
        Operand::Path(p) => CompiledOperand::Path(compile_path(p, slots, resolve)?),
        Operand::StringLit(s) => CompiledOperand::StringLit(s.clone()),
        Operand::NumberLit(n) => CompiledOperand::NumberLit(n.clone()),
    })
}

/// Compiles against a document's own symbol table — the whole-table
/// resolver used when the evaluation target is already materialised.
pub fn compile_for_document(
    expr: &Expr,
    doc: &Document,
    slots: &mut SlotMap,
) -> Result<CompiledExpr> {
    compile_expr(expr, slots, &mut |label| doc.symbols().lookup(label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use flux_xml::SymbolTable;

    fn compile(query: &str, table: &mut SymbolTable) -> (CompiledExpr, SlotMap) {
        let expr = parse_query(query).unwrap();
        let mut slots = SlotMap::new();
        slots.slot(ROOT_VAR);
        let compiled = compile_expr(&expr, &mut slots, &mut |l| Some(table.intern(l))).unwrap();
        (compiled, slots)
    }

    #[test]
    fn path_steps_carry_symbols() {
        let mut table = SymbolTable::new();
        let (compiled, slots) = compile(
            r#"<r>{ for $b in $ROOT/bib/book return $b/title }</r>"#,
            &mut table,
        );
        assert_eq!(slots.lookup(ROOT_VAR), Some(0));
        let CompiledExpr::Element { content, .. } = compiled else {
            panic!("element");
        };
        let CompiledExpr::For { source, body, .. } = *content else {
            panic!("for");
        };
        assert_eq!(source.start_slot, 0);
        assert!(source.steps.iter().all(|s| s.sym.is_some()));
        assert_eq!(source.steps[0].literal, "bib");
        let CompiledExpr::Path(p) = *body else {
            panic!("path");
        };
        assert_eq!(p.steps[0].sym, Some(table.intern("title")));
        assert_eq!(p.display, "$b/title");
    }

    #[test]
    fn unknown_labels_keep_literal_fallback() {
        let expr = parse_query(r#"<r>{$ROOT/mystery}</r>"#).unwrap();
        let mut slots = SlotMap::new();
        let compiled = compile_expr(&expr, &mut slots, &mut |_| None).unwrap();
        let CompiledExpr::Element { content, .. } = compiled else {
            panic!("element");
        };
        let CompiledExpr::Path(p) = *content else {
            panic!("path");
        };
        assert_eq!(p.steps[0].sym, None);
        assert_eq!(p.steps[0].literal, "mystery");
    }

    #[test]
    fn shared_variable_names_share_slots() {
        let mut table = SymbolTable::new();
        let (_, slots) = compile(
            r#"<r>{ for $b in $ROOT/bib/book return for $b in $b/author return $b }</r>"#,
            &mut table,
        );
        // $ROOT and the (shadowed) $b: two slots, not three.
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn attribute_tail_is_compiled() {
        let mut table = SymbolTable::new();
        let (compiled, _) = compile(r#"<r>{$ROOT/book/@year}</r>"#, &mut table);
        let CompiledExpr::Element { content, .. } = compiled else {
            panic!("element");
        };
        let CompiledExpr::Path(p) = *content else {
            panic!("path");
        };
        assert_eq!(p.steps.len(), 1);
        let PathTail::Attribute(a) = &p.tail else {
            panic!("attr tail");
        };
        assert_eq!(a.literal, "year");
        assert_eq!(a.sym, Some(table.intern("year")));
    }
}
