//! The [`Dtd`] type: parsed schema plus per-element automata and the
//! constraint query API used by the optimizer, the scheduler and XSAX.

use crate::content_model::{AttDef, ContentSpec, Particle};
use crate::dfa::{is_one_unambiguous, Dfa};
use crate::error::{DtdError, Result};
use crate::glushkov::glushkov;
use crate::parser::DtdParser;
use crate::symbol::{Symbol, SymbolTable};
use std::collections::BTreeMap;

/// A declared element type with its compiled child-sequence automaton.
#[derive(Debug, Clone)]
pub struct ElementDecl {
    pub name: Symbol,
    pub spec: ContentSpec,
    /// DFA over the permitted child-element sequences.
    pub dfa: Dfa,
    /// Whether non-whitespace character data may occur among the children.
    pub text_allowed: bool,
    /// Whether the content model is 1-unambiguous as the XML spec requires.
    pub deterministic: bool,
    pub attlist: Vec<AttDef>,
}

/// A parsed and compiled DTD.
#[derive(Debug, Clone)]
pub struct Dtd {
    symbols: SymbolTable,
    elements: BTreeMap<Symbol, ElementDecl>,
    root: Option<Symbol>,
    /// DFA for the virtual document node: exactly one root element.
    document_dfa: Option<Dfa>,
    entities: BTreeMap<String, String>,
}

impl Dtd {
    /// Parses DTD text (a standalone file or an internal subset) and infers
    /// the root element: the unique declared element that appears in no
    /// other element's content model. Use [`Dtd::parse_with_root`] when the
    /// root is ambiguous.
    pub fn parse(input: &str) -> Result<Dtd> {
        Self::build(input, None)
    }

    /// Parses DTD text with an explicitly named root element (as given by a
    /// DOCTYPE declaration).
    pub fn parse_with_root(input: &str, root: &str) -> Result<Dtd> {
        Self::build(input, Some(root))
    }

    fn build(input: &str, root_name: Option<&str>) -> Result<Dtd> {
        let mut symbols = SymbolTable::new();
        let parsed = DtdParser::new(input, &mut symbols).parse()?;
        if parsed.elements.is_empty() {
            return Err(DtdError::new("DTD declares no elements"));
        }

        // Intern all declared names first so `ANY` can expand over them.
        let mut declared: Vec<Symbol> = Vec::new();
        for decl in &parsed.elements {
            let sym = symbols.intern(&decl.name);
            if declared.contains(&sym) {
                return Err(DtdError::new(format!(
                    "element `{}` declared twice",
                    decl.name
                )));
            }
            declared.push(sym);
        }

        let mut elements = BTreeMap::new();
        for decl in &parsed.elements {
            let sym = symbols.lookup(&decl.name).expect("interned above");
            let particle = decl.spec.to_particle(&declared);
            let g = glushkov(&particle);
            let deterministic = is_one_unambiguous(&g);
            let dfa = Dfa::from_glushkov(&g);
            elements.insert(
                sym,
                ElementDecl {
                    name: sym,
                    spec: decl.spec.clone(),
                    dfa,
                    text_allowed: decl.spec.allows_text(),
                    deterministic,
                    attlist: Vec::new(),
                },
            );
        }

        for attlist in &parsed.attlists {
            let sym = symbols
                .lookup(&attlist.element)
                .filter(|s| elements.contains_key(s))
                .ok_or_else(|| {
                    DtdError::new(format!(
                        "ATTLIST for undeclared element `{}`",
                        attlist.element
                    ))
                })?;
            let decl = elements.get_mut(&sym).expect("checked above");
            for att in &attlist.attributes {
                // Later declarations of the same attribute are ignored, as
                // the XML spec prescribes.
                if !decl.attlist.iter().any(|a| a.name == att.name) {
                    decl.attlist.push(att.clone());
                }
            }
        }

        let root = match root_name {
            Some(name) => {
                let sym = symbols
                    .lookup(name)
                    .filter(|s| elements.contains_key(s))
                    .ok_or_else(|| {
                        DtdError::new(format!("root element `{name}` is not declared"))
                    })?;
                Some(sym)
            }
            None => Self::infer_root(&elements, &declared),
        };

        let document_dfa = root.map(|r| Dfa::from_glushkov(&glushkov(&Particle::Name(r))));

        Ok(Dtd {
            symbols,
            elements,
            root,
            document_dfa,
            entities: parsed.entities.into_iter().collect(),
        })
    }

    /// The unique element that no content model mentions, if it exists.
    fn infer_root(elements: &BTreeMap<Symbol, ElementDecl>, declared: &[Symbol]) -> Option<Symbol> {
        let mut mentioned: Vec<Symbol> = Vec::new();
        for decl in elements.values() {
            match &decl.spec {
                ContentSpec::Children(p) | ContentSpec::MixedChildren(p) => {
                    p.symbols(&mut mentioned)
                }
                ContentSpec::Mixed(syms) => mentioned.extend(syms.iter().copied()),
                ContentSpec::Empty | ContentSpec::Any => {}
            }
        }
        let mut candidates = declared.iter().copied().filter(|s| !mentioned.contains(s));
        let first = candidates.next()?;
        if candidates.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// The symbol table (element names ↔ symbols).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Looks up the symbol for an element name, if the DTD mentions it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.symbols.lookup(name)
    }

    /// The name behind a symbol.
    pub fn name(&self, sym: Symbol) -> &str {
        self.symbols.name(sym)
    }

    /// The inferred or declared root element.
    pub fn root(&self) -> Option<Symbol> {
        self.root
    }

    /// The declaration of an element type.
    pub fn element(&self, sym: Symbol) -> Option<&ElementDecl> {
        self.elements.get(&sym)
    }

    /// All declared element types, in symbol order.
    pub fn elements(&self) -> impl Iterator<Item = &ElementDecl> {
        self.elements.values()
    }

    /// General entities declared in the DTD.
    pub fn entity(&self, name: &str) -> Option<&str> {
        self.entities.get(name).map(String::as_str)
    }

    /// The child-sequence DFA of `parent`. [`SymbolTable::DOCUMENT`] yields
    /// the virtual document model (exactly one root element).
    pub fn content_dfa(&self, parent: Symbol) -> Option<&Dfa> {
        if parent == SymbolTable::DOCUMENT {
            self.document_dfa.as_ref()
        } else {
            self.elements.get(&parent).map(|e| &e.dfa)
        }
    }

    /// Whether non-whitespace text may occur directly below `parent`.
    pub fn text_allowed(&self, parent: Symbol) -> bool {
        if parent == SymbolTable::DOCUMENT {
            return false;
        }
        self.elements.get(&parent).is_some_and(|e| e.text_allowed)
    }

    // ----- constraint queries (all relative to a parent element type) -----
    //
    // Unknown parents yield the *weakest* answer (`false`): with no schema
    // information, no optimization applies — queries on undeclared elements
    // simply fall back to full buffering.

    /// Cardinality constraint `child ∈ ||≤1 parent`.
    pub fn at_most_one(&self, parent: Symbol, child: Symbol) -> bool {
        self.content_dfa(parent)
            .is_some_and(|d| d.at_most_one(child))
    }

    /// Every valid `parent` has at least one `child`.
    pub fn at_least_one(&self, parent: Symbol, child: Symbol) -> bool {
        self.content_dfa(parent)
            .is_some_and(|d| d.at_least_one(child))
    }

    /// Every valid `parent` has exactly one `child`.
    pub fn exactly_one(&self, parent: Symbol, child: Symbol) -> bool {
        self.content_dfa(parent)
            .is_some_and(|d| d.exactly_one(child))
    }

    /// No valid `parent` has an `a` child.
    pub fn never_occurs(&self, parent: Symbol, a: Symbol) -> bool {
        self.content_dfa(parent).is_some_and(|d| d.never_occurs(a))
    }

    /// Order constraint: under `parent`, every `a` child precedes every `b`
    /// child. For `a == b` this is the at-most-one cardinality constraint.
    ///
    /// Text is handled conservatively: if `parent` allows text, [`SymbolTable::TEXT`]
    /// can appear anywhere, so no order constraint involving text holds; if
    /// it does not, text never occurs and every constraint involving it
    /// holds vacuously.
    pub fn all_before(&self, parent: Symbol, a: Symbol, b: Symbol) -> bool {
        let text = SymbolTable::TEXT;
        if a == text || b == text {
            return !self.text_allowed(parent);
        }
        self.content_dfa(parent).is_some_and(|d| d.all_before(a, b))
    }

    /// Language constraint: no valid `parent` has both an `a` and a `b`
    /// child (the paper's author/editor example).
    pub fn never_together(&self, parent: Symbol, a: Symbol, b: Symbol) -> bool {
        if a == b {
            return false;
        }
        let text = SymbolTable::TEXT;
        if a == text || b == text {
            return false;
        }
        self.content_dfa(parent)
            .is_some_and(|d| d.never_together(a, b))
    }

    /// Renders the DTD back to declaration syntax (for `explain` output).
    pub fn to_dtd_string(&self) -> String {
        let mut out = String::new();
        for decl in self.elements.values() {
            out.push_str("<!ELEMENT ");
            out.push_str(self.symbols.name(decl.name));
            out.push(' ');
            match &decl.spec {
                ContentSpec::Empty => out.push_str("EMPTY"),
                ContentSpec::Any => out.push_str("ANY"),
                ContentSpec::Mixed(names) => {
                    out.push_str("(#PCDATA");
                    for &n in names {
                        out.push_str(" | ");
                        out.push_str(self.symbols.name(n));
                    }
                    out.push(')');
                    if !names.is_empty() {
                        out.push('*');
                    }
                }
                ContentSpec::Children(p) | ContentSpec::MixedChildren(p) => {
                    let rendered = p.display(&self.symbols).to_string();
                    if rendered.starts_with('(') {
                        out.push_str(&rendered);
                    } else {
                        out.push('(');
                        out.push_str(&rendered);
                        out.push(')');
                    }
                }
            }
            out.push_str(">\n");
        }
        out
    }

    /// Marks an element as allowing interleaved character data (used by the
    /// XML Schema frontend for `mixed="true"` complex types, which DTD
    /// declaration syntax cannot express).
    pub fn allow_text(&mut self, name: &str) {
        if let Some(sym) = self.symbols.lookup(name) {
            if let Some(decl) = self.elements.get_mut(&sym) {
                decl.text_allowed = true;
                if let ContentSpec::Children(p) = decl.spec.clone() {
                    decl.spec = ContentSpec::MixedChildren(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The weak DTD from Section 2 of the paper.
    pub const WEAK: &str = "<!ELEMENT bib (book)*>\n<!ELEMENT book (title|author)*>\n<!ELEMENT title (#PCDATA)>\n<!ELEMENT author (#PCDATA)>";

    /// The strong DTD of Figure 1.
    pub const FIG1: &str = "<!ELEMENT bib (book)*>\n<!ELEMENT book (title,(author+|editor+),publisher,price)>\n<!ELEMENT title (#PCDATA)>\n<!ELEMENT author (#PCDATA)>\n<!ELEMENT editor (#PCDATA)>\n<!ELEMENT publisher (#PCDATA)>\n<!ELEMENT price (#PCDATA)>";

    #[test]
    fn root_inference() {
        let dtd = Dtd::parse(WEAK).unwrap();
        assert_eq!(dtd.name(dtd.root().unwrap()), "bib");
    }

    #[test]
    fn explicit_root() {
        let dtd = Dtd::parse_with_root(WEAK, "book").unwrap();
        assert_eq!(dtd.name(dtd.root().unwrap()), "book");
    }

    #[test]
    fn undeclared_root_rejected() {
        assert!(Dtd::parse_with_root(WEAK, "nope").is_err());
    }

    #[test]
    fn ambiguous_root_is_none() {
        let dtd = Dtd::parse("<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>").unwrap();
        assert_eq!(dtd.root(), None);
    }

    #[test]
    fn duplicate_element_rejected() {
        assert!(Dtd::parse("<!ELEMENT a EMPTY><!ELEMENT a ANY>").is_err());
    }

    #[test]
    fn fig1_constraints_via_dtd_api() {
        let dtd = Dtd::parse(FIG1).unwrap();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        let editor = dtd.lookup("editor").unwrap();
        let publisher = dtd.lookup("publisher").unwrap();

        assert!(
            dtd.at_most_one(book, publisher),
            "paper: publisher ∈ ||≤1 book"
        );
        assert!(
            dtd.all_before(book, title, author),
            "paper: titles precede authors"
        );
        assert!(
            dtd.never_together(book, author, editor),
            "paper: author xor editor"
        );
        assert!(dtd.exactly_one(book, title));
        assert!(!dtd.at_most_one(book, author));
    }

    #[test]
    fn weak_dtd_offers_nothing() {
        let dtd = Dtd::parse(WEAK).unwrap();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        assert!(!dtd.all_before(book, title, author));
        assert!(!dtd.at_most_one(book, title));
        assert!(!dtd.never_together(book, title, author));
    }

    #[test]
    fn document_level_constraints() {
        let dtd = Dtd::parse(WEAK).unwrap();
        let bib = dtd.lookup("bib").unwrap();
        let doc = SymbolTable::DOCUMENT;
        assert!(dtd.exactly_one(doc, bib));
        assert!(dtd.at_most_one(doc, bib));
        assert!(!dtd.text_allowed(doc));
    }

    #[test]
    fn text_order_constraints() {
        let dtd = Dtd::parse(FIG1).unwrap();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let text = SymbolTable::TEXT;
        // book has element content: text never occurs, constraints vacuous.
        assert!(dtd.all_before(book, text, title));
        assert!(dtd.all_before(book, title, text));
        // title is #PCDATA: text can always occur, no order constraint.
        let title_sym = title;
        assert!(!dtd.all_before(title_sym, text, text));
    }

    #[test]
    fn unknown_parent_is_weakest() {
        let dtd = Dtd::parse(WEAK).unwrap();
        let bogus = SymbolTable::TEXT; // not an element
        let title = dtd.lookup("title").unwrap();
        assert!(!dtd.at_most_one(bogus, title));
        assert!(!dtd.all_before(bogus, title, title));
    }

    #[test]
    fn attlist_merged_into_decl() {
        let dtd = Dtd::parse(
            "<!ELEMENT book (#PCDATA)>\n<!ATTLIST book year CDATA #REQUIRED>\n<!ATTLIST book year CDATA #IMPLIED lang CDATA #IMPLIED>",
        )
        .unwrap();
        let book = dtd.lookup("book").unwrap();
        let decl = dtd.element(book).unwrap();
        assert_eq!(
            decl.attlist.len(),
            2,
            "duplicate `year` ignored, `lang` added"
        );
        assert_eq!(decl.attlist[0].name, "year");
        assert_eq!(
            decl.attlist[0].default,
            crate::content_model::AttDefault::Required,
            "first declaration wins"
        );
    }

    #[test]
    fn attlist_for_unknown_element_rejected() {
        assert!(Dtd::parse("<!ELEMENT a EMPTY>\n<!ATTLIST b x CDATA #IMPLIED>").is_err());
    }

    #[test]
    fn entities_queryable() {
        let dtd = Dtd::parse("<!ELEMENT a EMPTY>\n<!ENTITY co \"ACME\">").unwrap();
        assert_eq!(dtd.entity("co"), Some("ACME"));
        assert_eq!(dtd.entity("nope"), None);
    }

    #[test]
    fn round_trip_rendering() {
        let dtd = Dtd::parse(FIG1).unwrap();
        let rendered = dtd.to_dtd_string();
        let dtd2 = Dtd::parse(&rendered).unwrap();
        assert_eq!(
            dtd.root().map(|r| dtd.name(r).to_string()),
            dtd2.root().map(|r| dtd2.name(r).to_string())
        );
        // Constraint set survives the round trip.
        let book = dtd2.lookup("book").unwrap();
        let author = dtd2.lookup("author").unwrap();
        let editor = dtd2.lookup("editor").unwrap();
        assert!(dtd2.never_together(book, author, editor));
    }

    #[test]
    fn determinism_flag() {
        let dtd = Dtd::parse(FIG1).unwrap();
        assert!(dtd.elements().all(|e| e.deterministic));
        let ambiguous = Dtd::parse("<!ELEMENT a ((b,c)|(b,d))>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>").unwrap();
        let a = ambiguous.lookup("a").unwrap();
        assert!(!ambiguous.element(a).unwrap().deterministic);
    }
}
