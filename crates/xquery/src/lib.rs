//! # flux-xquery
//!
//! The XQuery frontend of FluXQuery: parser, AST, normal form, static
//! analysis, pretty printer, and the reference tree interpreter shared by
//! the baseline engines and the runtime's buffered execution.
//!
//! The supported fragment follows the paper (Sec. 4): arbitrarily nested
//! for-loops and joins, conditionals with existential general comparisons,
//! direct element constructors, `let` (inlined during normalization), and
//! child/attribute/`text()` steps — no aggregation.

pub mod analysis;
pub mod ast;
pub mod error;
pub mod eval;
pub mod normalize;
pub mod parser;
pub mod pretty;

pub use analysis::{deps_on, free_vars, paths_rooted_at, DepSet};
pub use ast::{
    AttrConstructor, AttrPart, CmpOp, Cond, Expr, Operand, Path, Step, VarName,
    GENERATED_VAR_PREFIX, ROOT_VAR,
};
pub use error::{QueryPos, Result, XQueryError};
pub use eval::{compare, eval_to_string, CountingSink, Env, Item, QuerySink, TreeEvaluator};
pub use normalize::{is_normal_form, normalize};
pub use parser::parse_query;
pub use pretty::{pretty, pretty_cond};
