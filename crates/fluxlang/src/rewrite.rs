//! XQuery→FluX scheduling (paper Sec. 3.1, step 3).
//!
//! For each element-constructor content sequence `α1 … αk` evaluated under
//! the innermost stream variable `$x`, each `αi` becomes either
//!
//! * a **streaming handler** `on a as $v` — when `αi` is a loop over
//!   `$x/a`, its body is recursively schedulable, and the DTD's order
//!   constraints prove that all output of earlier items is emitted before
//!   the first `a` child arrives (`all_before(type(x), b, a)` for every
//!   label `b` an earlier item needs; `b = a` degenerates to the
//!   at-most-one cardinality constraint); or
//! * a **buffered handler** `on-first past(L)` — with `L` the union of the
//!   item's own child dependencies and every earlier item's needs, so the
//!   handler fires exactly when its inputs are complete and all earlier
//!   output has been emitted.
//!
//! Sibling and outer-variable data used inside streamed bodies is checked
//! statically: `$w/q` read while streaming inside a `g`-child of `$w` is
//! safe iff `all_before(type(w), q, g)` and `q ≠ g` — all `q` children have
//! closed before the first `g` opens, so their buffers are complete.
//!
//! Whole-subtree uses (`{$x}`) force `past(*)` (fire at the closing tag),
//! reproducing the graceful degradation to full per-node buffering under
//! weak DTDs. The scheduler never fails on safety grounds — anything it
//! cannot stream it buffers one scope further out ("blocked" propagation).

use crate::ast::{FluxExpr, Handler, PastSet};
use crate::error::{FluxError, Result};
use flux_dtd::{Dtd, Symbol, SymbolTable};
use flux_xquery::{deps_on, AttrPart, DepSet, Expr, Step, VarName, ROOT_VAR};

/// One level of the streaming scope stack.
#[derive(Debug, Clone)]
struct Scope {
    var: VarName,
    /// Element type of the bound node; `None` for undeclared labels (no
    /// constraints derivable — everything buffers).
    symbol: Option<Symbol>,
    /// Label by which the *next* scope was entered is tracked on the next
    /// scope itself: this is the label of this scope's element within its
    /// parent.
    trigger: Option<String>,
}

enum SchedErr {
    /// The expression needs complete data of this scope variable and must
    /// be buffered at (or above) that scope's level.
    Blocked(VarName),
    /// Reserved for unrecoverable scheduling failures; currently the
    /// scheduler always falls back to buffering instead.
    #[allow(dead_code)]
    Fatal(FluxError),
}

pub struct Rewriter<'d> {
    dtd: &'d Dtd,
    /// Human-readable scheduling decisions for `explain()`.
    pub trace: Vec<String>,
    /// Ablation switch: never emit streaming handlers; everything becomes
    /// `on-first` buffering (what a FluX engine without order-constraint
    /// scheduling would do).
    force_buffer: bool,
}

impl<'d> Rewriter<'d> {
    pub fn new(dtd: &'d Dtd) -> Self {
        Rewriter {
            dtd,
            trace: Vec::new(),
            force_buffer: false,
        }
    }

    /// A rewriter that buffers every item (scheduling ablation).
    pub fn without_streaming(dtd: &'d Dtd) -> Self {
        Rewriter {
            dtd,
            trace: Vec::new(),
            force_buffer: true,
        }
    }

    /// Rewrites a normal-form query into FluX.
    pub fn rewrite(&mut self, nf: &Expr) -> Result<FluxExpr> {
        debug_assert!(
            flux_xquery::is_normal_form(nf),
            "rewrite requires normal form"
        );
        let mut scopes = vec![Scope {
            var: ROOT_VAR.to_string(),
            symbol: Some(SymbolTable::DOCUMENT),
            trigger: None,
        }];
        match self.fluxify(nf, &mut scopes) {
            Ok(flux) => Ok(flux),
            Err(SchedErr::Blocked(var)) => {
                // The whole query needs the whole document: degenerate but
                // legal — buffer everything under the document scope.
                self.trace.push(format!(
                    "whole query buffered at ${var}: needs complete subtree"
                ));
                Ok(FluxExpr::ProcessStream {
                    var: ROOT_VAR.to_string(),
                    handlers: vec![Handler::OnFirstPast {
                        labels: PastSet::all(),
                        body: FluxExpr::Buffered(nf.clone()),
                    }],
                })
            }
            Err(SchedErr::Fatal(e)) => Err(e),
        }
    }

    fn symbol_of(&self, label: &str) -> Option<Symbol> {
        self.dtd.lookup(label)
    }

    fn fluxify(
        &mut self,
        expr: &Expr,
        scopes: &mut Vec<Scope>,
    ) -> std::result::Result<FluxExpr, SchedErr> {
        match expr {
            Expr::Element {
                name,
                attributes,
                content,
            } => {
                // Attribute templates are evaluated when the start tag is
                // emitted, i.e. at scope entry: child data of the innermost
                // scope cannot be available, outer data must be statically
                // complete.
                for attr in attributes {
                    for part in &attr.value {
                        if let AttrPart::Expr(e) = part {
                            self.check_instant(e, scopes)?;
                        }
                    }
                }
                let content = self.fluxify(content, scopes)?;
                Ok(FluxExpr::Element {
                    name: name.clone(),
                    attributes: attributes.clone(),
                    content: Box::new(content),
                })
            }
            Expr::Sequence(items) => self.fluxify_content(items, scopes),
            other => self.fluxify_content(std::slice::from_ref(other), scopes),
        }
    }

    /// Checks that an expression can be evaluated instantly at the current
    /// stream position: no child data of the innermost scope, and outer
    /// data statically complete.
    fn check_instant(
        &mut self,
        expr: &Expr,
        scopes: &[Scope],
    ) -> std::result::Result<(), SchedErr> {
        let innermost = scopes.last().expect("scope stack never empty");
        let deps = deps_on(expr, &innermost.var);
        if !deps.needs_no_children() {
            return Err(SchedErr::Blocked(innermost.var.clone()));
        }
        self.check_outer_deps(expr, scopes, scopes.len() - 1)
    }

    /// Verifies that data of outer scopes (indices `0..limit`) used by
    /// `expr` is complete at the current position; otherwise blocks at the
    /// offending scope.
    fn check_outer_deps(
        &mut self,
        expr: &Expr,
        scopes: &[Scope],
        limit: usize,
    ) -> std::result::Result<(), SchedErr> {
        for i in 0..limit {
            let scope = &scopes[i];
            let deps = deps_on(expr, &scope.var);
            if !self.outer_complete(&deps, scope, &scopes[i + 1]) {
                return Err(SchedErr::Blocked(scope.var.clone()));
            }
        }
        Ok(())
    }

    /// Whether `deps` of outer scope `w` are complete once the stream has
    /// descended into the `next`-scope child of `w`.
    fn outer_complete(&self, deps: &DepSet, w: &Scope, next: &Scope) -> bool {
        if deps.needs_no_children() {
            return true;
        }
        if deps.whole {
            return false;
        }
        let Some(tw) = w.symbol else {
            return false;
        };
        let Some(g_label) = next.trigger.as_deref() else {
            return false;
        };
        let Some(g) = self.symbol_of(g_label) else {
            return false;
        };
        for q_label in &deps.labels {
            let Some(q) = self.symbol_of(q_label) else {
                // Undeclared labels never occur: their (empty) buffers are
                // trivially complete.
                continue;
            };
            if q == g || !self.dtd.all_before(tw, q, g) {
                return false;
            }
        }
        if deps.text && !self.dtd.all_before(tw, SymbolTable::TEXT, g) {
            return false;
        }
        true
    }

    /// Schedules a content sequence under the innermost scope.
    fn fluxify_content(
        &mut self,
        items: &[Expr],
        scopes: &mut Vec<Scope>,
    ) -> std::result::Result<FluxExpr, SchedErr> {
        if items.is_empty() {
            return Ok(FluxExpr::Empty);
        }
        let x = scopes.last().expect("scope stack never empty").clone();

        // Structural shortcuts that keep process-streams where they belong.
        if items.len() == 1 {
            match &items[0] {
                Expr::Element { .. } => return self.fluxify(&items[0], scopes),
                Expr::Var(v) if *v == x.var && x.trigger.is_some() && !self.force_buffer => {
                    // `{$x}` as the entire body of an on-handler: pure
                    // stream-through copy, zero buffering.
                    self.trace.push(format!(
                        "stream-copy ${v}: subtree passes through unbuffered"
                    ));
                    return Ok(FluxExpr::StreamCopy(v.clone()));
                }
                Expr::Empty => return Ok(FluxExpr::Empty),
                Expr::StringLit(s) => return Ok(FluxExpr::StringLit(s.clone())),
                _ => {}
            }
        }

        let any_x_dep = items
            .iter()
            .any(|item| !deps_on(item, &x.var).needs_no_children());

        if !any_x_dep {
            // Nothing reads x's children: everything evaluates at entry.
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(match item {
                    Expr::StringLit(s) => FluxExpr::StringLit(s.clone()),
                    Expr::Element { .. } => self.fluxify(item, scopes)?,
                    other => {
                        self.check_instant(other, scopes)?;
                        FluxExpr::Buffered(other.clone())
                    }
                });
            }
            return Ok(FluxExpr::seq_of(out));
        }

        // A process-stream over x. Earlier items' needs are tracked in two
        // parts: labels of streamed handlers (whose output per `a`-child is
        // emitted at that child — a later handler may share the trigger if
        // the label is at-most-one) and past-sets of buffered handlers
        // (whose output is emitted only once the *last* possible such child
        // has closed — a later handler must never stream on those labels).
        let tx = x.symbol;
        let mut handlers: Vec<Handler> = Vec::new();
        // Trigger label -> whether any handler on it has a spine body (its
        // output spans the child's whole region). A later handler may share
        // the trigger only when all earlier ones are instant; otherwise a
        // second pass over the same child would be required.
        let mut prev_triggers: std::collections::BTreeMap<String, bool> = Default::default();
        let mut prev_past = PastSet::default();

        for item in items {
            let streamed =
                self.try_stream_item(item, &x, tx, &prev_triggers, &prev_past, scopes)?;
            match streamed {
                Some((label, handler)) => {
                    let spine = match &handler {
                        Handler::On { body, .. } => body.has_spine(),
                        Handler::OnFirstPast { .. } => false,
                    };
                    let entry = prev_triggers.entry(label).or_insert(false);
                    *entry |= spine;
                    handlers.push(handler);
                }
                None => {
                    // Buffer the item: outer data must be complete.
                    self.check_outer_deps(item, scopes, scopes.len() - 1)?;
                    let deps = deps_on(item, &x.var);
                    let mut labels = prev_past.clone();
                    for t in prev_triggers.keys() {
                        labels.insert_label(t.clone());
                    }
                    if deps.whole {
                        labels.all = true;
                    }
                    for l in &deps.labels {
                        labels.insert_label(l.clone());
                    }
                    labels.text |= deps.text;
                    self.trace
                        .push(format!("buffered item under ${}: on-first {labels}", x.var));
                    prev_past.union(&labels);
                    handlers.push(Handler::OnFirstPast {
                        labels,
                        body: FluxExpr::Buffered(item.clone()),
                    });
                }
            }
        }

        Ok(FluxExpr::ProcessStream {
            var: x.var.clone(),
            handlers,
        })
    }

    /// Attempts to schedule one item as a streaming `on` handler. Returns
    /// `Ok(None)` when the item must be buffered instead.
    #[allow(clippy::too_many_arguments)]
    fn try_stream_item(
        &mut self,
        item: &Expr,
        x: &Scope,
        tx: Option<Symbol>,
        prev_triggers: &std::collections::BTreeMap<String, bool>,
        prev_past: &PastSet,
        scopes: &mut Vec<Scope>,
    ) -> std::result::Result<Option<(String, Handler)>, SchedErr> {
        if self.force_buffer {
            return Ok(None);
        }
        let Expr::For {
            var,
            source,
            where_clause,
            body,
        } = item
        else {
            return Ok(None);
        };
        debug_assert!(where_clause.is_none(), "normal form has no where clauses");
        if source.start != x.var {
            return Ok(None); // loop over an outer variable: buffered
        }
        let [Step::Child(a_label)] = source.steps.as_slice() else {
            return Ok(None);
        };
        let Some(tx) = tx else {
            return Ok(None); // untyped scope: no constraints derivable
        };
        let Some(a) = self.symbol_of(a_label) else {
            return Ok(None); // undeclared label: loop is dead, buffer cheaply
        };
        if prev_past.all {
            return Ok(None); // something earlier needs the whole subtree
        }
        // Order conditions against everything already scheduled. Streamed
        // triggers may coincide with `a` (the product check degenerates to
        // at-most-one); buffered past-labels must be strictly ordered
        // before `a`, since their handler only fires once the *last* such
        // child has closed.
        for (b_label, b_has_spine) in prev_triggers {
            let Some(b) = self.symbol_of(b_label) else {
                continue; // undeclared: never occurs, vacuously ordered
            };
            if b == a && *b_has_spine {
                // An earlier handler already consumes the `a` region for
                // its output; a second streamed pass over the same child is
                // impossible -- this is exactly the situation the paper's
                // loop-merging rule (R1) exists to avoid.
                self.trace.push(format!(
                    "cannot stream second `on {a_label}` under ${}: earlier handler consumes the region (merge loops!)",
                    x.var
                ));
                return Ok(None);
            }
            if !self.dtd.all_before(tx, b, a) {
                self.trace.push(format!(
                    "cannot stream `on {a_label}` under ${}: no order constraint {b_label} before {a_label}",
                    x.var
                ));
                return Ok(None);
            }
        }
        for b_label in &prev_past.labels {
            let Some(b) = self.symbol_of(b_label) else {
                continue;
            };
            if b == a || !self.dtd.all_before(tx, b, a) {
                self.trace.push(format!(
                    "cannot stream `on {a_label}` under ${}: a buffered item waits for {b_label}",
                    x.var
                ));
                return Ok(None);
            }
        }
        if prev_past.text && !self.dtd.all_before(tx, SymbolTable::TEXT, a) {
            return Ok(None);
        }
        // Recursively schedule the body in the child scope. A failure
        // blocked at x means this item cannot stream; deeper blocks
        // propagate outwards.
        scopes.push(Scope {
            var: var.clone(),
            symbol: Some(a),
            trigger: Some(a_label.clone()),
        });
        let body_flux = self.fluxify(body, scopes);
        scopes.pop();
        match body_flux {
            Ok(body_flux) => {
                self.trace.push(format!(
                    "streaming handler: on {a_label} as ${var} under ${}",
                    x.var
                ));
                Ok(Some((
                    a_label.clone(),
                    Handler::On {
                        label: a_label.clone(),
                        var: var.clone(),
                        body: body_flux,
                    },
                )))
            }
            Err(SchedErr::Blocked(w)) if w == x.var => Ok(None),
            Err(other) => Err(other),
        }
    }
}

impl FluxExpr {
    /// Like [`flux_xquery::Expr::seq`] for FluX expressions.
    pub fn seq_of(mut items: Vec<FluxExpr>) -> FluxExpr {
        items.retain(|e| !matches!(e, FluxExpr::Empty));
        match items.len() {
            0 => FluxExpr::Empty,
            1 => items.pop().expect("len checked"),
            _ => FluxExpr::Sequence(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::pretty_flux;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_UNSAFE_DTD, PAPER_WEAK_DTD};
    use flux_xquery::{normalize, parse_query};

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    fn rewrite(q: &str, dtd: &Dtd) -> FluxExpr {
        let nf = normalize(&parse_query(q).unwrap()).unwrap();
        Rewriter::new(dtd).rewrite(&nf).unwrap()
    }

    #[test]
    fn q3_weak_dtd_buffers_only_authors() {
        // The paper's Sec. 2 result: titles stream, authors buffer until
        // the end of each book.
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let flux = rewrite(Q3, &dtd);
        let printed = pretty_flux(&flux);
        assert!(printed.contains("on title as"), "titles stream:\n{printed}");
        assert!(
            printed.contains("on-first past(author,title)"),
            "authors buffer until title+author past:\n{printed}"
        );
        assert_eq!(flux.buffered_handler_count(), 1, "{printed}");
    }

    #[test]
    fn q3_fig1_dtd_fully_streams() {
        // Under Figure 1's DTD, the order constraint title→author makes Q3
        // fully streaming: zero buffered handlers.
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let flux = rewrite(Q3, &dtd);
        let printed = pretty_flux(&flux);
        assert!(printed.contains("on title as"), "{printed}");
        assert!(printed.contains("on author as"), "{printed}");
        assert_eq!(
            flux.buffered_handler_count(),
            0,
            "no buffering needed:\n{printed}"
        );
    }

    #[test]
    fn authors_before_titles_buffers_titles() {
        // Reversed output order: authors first. Under Fig. 1 all titles
        // precede all authors in the stream, so titles must be buffered and
        // authors can only be output after... actually authors can stream
        // only if everything before them (nothing) is ordered — authors are
        // item 1, titles item 2. Authors stream; titles buffered? No:
        // titles arrive BEFORE authors, so the title item (second in query
        // order) must wait for authors to finish: on-first past includes
        // author and title.
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/author}{$b/title}</result> }</results>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert!(printed.contains("on author as"), "{printed}");
        assert!(
            printed.contains("on-first past(author,title)"),
            "titles wait for authors:\n{printed}"
        );
        assert_eq!(flux.buffered_handler_count(), 1);
    }

    #[test]
    fn whole_book_copy_buffers_all() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b}</result> }</results>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert!(printed.contains("past(*)"), "{printed}");
    }

    #[test]
    fn stream_copy_for_whole_handler_body() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let q = r#"<results>{ for $b in $ROOT/bib/book return $b }</results>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert!(printed.contains("on book as $b return {$b}"), "{printed}");
        assert_eq!(flux.buffered_handler_count(), 0, "{printed}");
    }

    #[test]
    fn publisher_before_title_buffers_under_fig1() {
        // Query order: publisher then title; stream order: title then
        // publisher. The publisher item streams (nothing before it), the
        // title item must buffer.
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/publisher}{$b/title}</result> }</results>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert!(printed.contains("on publisher as"), "{printed}");
        assert!(
            printed.contains("on-first past(publisher,title)"),
            "{printed}"
        );
    }

    #[test]
    fn sibling_data_in_streamed_body_when_ordered() {
        // Body of the price-loop reads $b/title: safe under Fig. 1 because
        // all titles precede all prices.
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<results>{ for $b in $ROOT/bib/book return
            for $p in $b/price return <r>{$b/title}{$p}</r> }</results>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert!(
            printed.contains("on price as $p"),
            "price streams:\n{printed}"
        );
    }

    #[test]
    fn sibling_data_unsafe_without_order() {
        // Under the *unsafe* DTD of Sec. 2, book = ((title|author)*, price):
        // a price-loop body reading $b/title is fine (titles precede price),
        // but a title-loop body reading $b/price is not.
        let dtd = Dtd::parse(PAPER_UNSAFE_DTD).unwrap();
        let ok = r#"<r>{ for $b in $ROOT/bib/book return for $p in $b/price return <x>{$b/title}{$p}</x> }</r>"#;
        let flux_ok = rewrite(ok, &dtd);
        assert!(pretty_flux(&flux_ok).contains("on price as $p"));

        let bad = r#"<r>{ for $b in $ROOT/bib/book return for $t in $b/title return <x>{$b/price}{$t}</x> }</r>"#;
        let flux_bad = rewrite(bad, &dtd);
        let printed = pretty_flux(&flux_bad);
        assert!(
            !printed.contains("on title as $t"),
            "title loop must not stream when its body needs future prices:\n{printed}"
        );
    }

    #[test]
    fn constants_between_streams_get_ordered() {
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{"-sep-"}{$b/author}</result> }</results>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        // The separator fires after titles (past(title)), authors still
        // stream afterwards because all titles precede all authors.
        assert!(printed.contains("on-first past(title)"), "{printed}");
        assert!(printed.contains("on author as"), "{printed}");
    }

    #[test]
    fn join_buffers_one_side() {
        // Books come before reviews in document order: the reviews loop can
        // stream while probing buffered books... here the outer loop is
        // books, inner reviews — inner loop is over an outer-scope path, so
        // it buffers at the book level; the review data is only complete
        // once past(book)... the scheduler must NOT stream the outer book
        // loop with an inner unsafe read. Expect: buffering somewhere, and
        // a correct plan (full shape checked in runtime tests).
        let dtd = Dtd::parse(
            "<!ELEMENT top (bib, reviews)>\n<!ELEMENT bib (book)*>\n<!ELEMENT book (title)>\n<!ELEMENT reviews (entry)*>\n<!ELEMENT entry (title, price)>\n<!ELEMENT title (#PCDATA)>\n<!ELEMENT price (#PCDATA)>",
        )
        .unwrap();
        let q = r#"<out>{ for $b in $ROOT/top/bib/book, $e in $ROOT/top/reviews/entry return <p>{$b/title}{$e/price}</p> }</out>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        // The book loop cannot stream (its body needs reviews, which come
        // later and belong to an outer scope), so it is buffered at the
        // level that owns both: $ROOT/top.
        assert!(printed.contains("on-first"), "{printed}");
    }

    #[test]
    fn untyped_scope_buffers() {
        // `chapter` is undeclared: loops below it cannot stream.
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let q = r#"<r>{ for $c in $ROOT/bib/chapter return for $s in $c/section return $s }</r>"#;
        let flux = rewrite(q, &dtd);
        // Scheduling succeeds (falls back to buffering); the dead loop
        // produces nothing at runtime.
        assert!(matches!(flux, FluxExpr::Element { .. }));
    }

    #[test]
    fn duplicate_trigger_buffers_second_loop() {
        // Two unmerged loops over $b/publisher (at-most-one): the first
        // streams, the second MUST buffer -- a second streamed pass over the
        // same child is impossible. (The algebraic optimizer normally
        // merges these; this exercises the scheduler with merging off.)
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            <r>{ for $x in $b/publisher return <a>{$x}</a> }
               { for $y in $b/publisher return <bb>{$y}</bb> }</r> }</out>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert_eq!(
            printed.matches("on publisher as").count(),
            1,
            "only the first loop streams:\n{printed}"
        );
        assert!(
            printed.contains("on-first past(publisher)"),
            "second loop buffers:\n{printed}"
        );
        crate::safety::check_safety(&flux, &dtd).expect("buffered plan is safe");
    }

    #[test]
    fn duplicate_trigger_with_instant_first_body_streams() {
        // First handler's body is a constant (instant): a second streamed
        // handler on the same <=1 label is fine.
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            <r>{ for $x in $b/publisher return "seen" }
               { for $y in $b/publisher return <bb>{$y}</bb> }</r> }</out>"#;
        let flux = rewrite(q, &dtd);
        let printed = pretty_flux(&flux);
        assert_eq!(
            printed.matches("on publisher as").count(),
            2,
            "both stream when the first is instant:\n{printed}"
        );
    }

    #[test]
    fn trace_is_informative() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let nf = normalize(&parse_query(Q3).unwrap()).unwrap();
        let mut rw = Rewriter::new(&dtd);
        rw.rewrite(&nf).unwrap();
        assert!(
            rw.trace.iter().any(|t| t.contains("on title")),
            "{:?}",
            rw.trace
        );
        assert!(
            rw.trace.iter().any(|t| t.contains("buffered item")),
            "{:?}",
            rw.trace
        );
    }
}
