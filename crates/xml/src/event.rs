//! The SAX-style event model shared by the reader, writer and higher layers.
//!
//! Three representations exist:
//!
//! * [`XmlEvent`] — the owned, string-named model. Convenient, allocates
//!   per event; kept for tests, tools and anything off the hot path.
//! * [`RawEvent`] — the recycled, interned model. One caller-owned
//!   `RawEvent` is rewritten in place by [`crate::XmlReader::next_into`];
//!   element and attribute names are [`Symbol`]s resolved against the
//!   reader's [`SymbolTable`], and text and attribute-value buffers are
//!   reused across events. In the steady state (every name seen once,
//!   buffers grown to the largest token) pulling an event performs
//!   **zero heap allocations**.
//! * [`RawEventRef`] — the borrowed, zero-copy view the streaming pipeline
//!   now runs on. A source ([`crate::EventSource`]) advances and then hands
//!   out a `RawEventRef` whose payloads borrow the source's own storage
//!   (the scanner window for sequential text runs, the event tape arena
//!   for sharded replay, or a recycled `RawEvent`). The view is valid
//!   until the source's next [`crate::EventSource::advance`] — delivering
//!   an event is a pointer hand-off, not a byte copy.

use crate::tape::{EncAttr, SymbolRemap};
use flux_symbols::{Symbol, SymbolTable};
use std::fmt;

/// A single attribute of a start-element tag. Values are stored unescaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

impl Attribute {
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A parsed XML event.
///
/// Text content is delivered unescaped (entity references already resolved);
/// CDATA sections are delivered as [`XmlEvent::Text`] with a flag-free,
/// already-literal payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// Start of the document. Emitted exactly once, before everything else.
    StartDocument,
    /// A `<!DOCTYPE name ...>` declaration. `internal_subset` holds the raw
    /// text between `[` and `]` when present; it can be fed to a DTD parser.
    DoctypeDecl {
        name: String,
        internal_subset: Option<String>,
    },
    /// `<name attr="v" ...>` (also emitted for the opening half of an
    /// empty-element tag `<name/>`, which is immediately followed by the
    /// matching [`XmlEvent::EndElement`]).
    StartElement {
        name: String,
        attributes: Vec<Attribute>,
    },
    /// `</name>` (or the synthetic close of `<name/>`).
    EndElement { name: String },
    /// Character data between tags, unescaped. Consecutive runs are merged
    /// by the reader (a single text node per gap between tags).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<?target data?>` (the XML declaration itself is consumed silently).
    ProcessingInstruction { target: String, data: String },
    /// End of the document. Emitted exactly once, after the root closes.
    EndDocument,
}

impl XmlEvent {
    /// Returns the element name for start/end element events.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            XmlEvent::StartElement { name, .. } | XmlEvent::EndElement { name } => Some(name),
            _ => None,
        }
    }

    /// True for [`XmlEvent::Text`] consisting only of XML whitespace.
    pub fn is_whitespace_text(&self) -> bool {
        matches!(self, XmlEvent::Text(t) if t.bytes().all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n')))
    }

    /// A short tag for diagnostics ("start-element", "text", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            XmlEvent::StartDocument => "start-document",
            XmlEvent::DoctypeDecl { .. } => "doctype",
            XmlEvent::StartElement { .. } => "start-element",
            XmlEvent::EndElement { .. } => "end-element",
            XmlEvent::Text(_) => "text",
            XmlEvent::Comment(_) => "comment",
            XmlEvent::ProcessingInstruction { .. } => "processing-instruction",
            XmlEvent::EndDocument => "end-document",
        }
    }
}

impl fmt::Display for XmlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlEvent::StartDocument => write!(f, "<start-document>"),
            XmlEvent::DoctypeDecl { name, .. } => write!(f, "<!DOCTYPE {name}>"),
            XmlEvent::StartElement { name, attributes } => {
                write!(f, "<{name}")?;
                for a in attributes {
                    write!(f, " {}=\"{}\"", a.name, a.value)?;
                }
                write!(f, ">")
            }
            XmlEvent::EndElement { name } => write!(f, "</{name}>"),
            XmlEvent::Text(t) => write!(f, "{t:?}"),
            XmlEvent::Comment(c) => write!(f, "<!--{c}-->"),
            XmlEvent::ProcessingInstruction { target, data } => write!(f, "<?{target} {data}?>"),
            XmlEvent::EndDocument => write!(f, "<end-document>"),
        }
    }
}

/// Discriminant of a [`RawEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawEventKind {
    StartDocument,
    DoctypeDecl,
    StartElement,
    EndElement,
    Text,
    Comment,
    ProcessingInstruction,
    EndDocument,
}

/// One attribute of a recycled [`RawEvent`]: interned name, recycled
/// (unescaped) value buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAttr {
    pub name: Symbol,
    /// The literal attribute name when `name` is
    /// [`SymbolTable::OVERFLOW`] (the reader's bounded-interner mode
    /// declined to intern it); empty otherwise. A recycled buffer, like
    /// `value`.
    pub overflow_name: String,
    pub value: String,
}

impl RawAttr {
    /// The attribute name, resolving bounded-interner overflow. Use this
    /// instead of `symbols.name(attr.name)` wherever a stream may run in
    /// bounded mode.
    pub fn name_str<'a>(&'a self, symbols: &'a SymbolTable) -> &'a str {
        if self.name == SymbolTable::OVERFLOW {
            &self.overflow_name
        } else {
            symbols.name(self.name)
        }
    }

    /// Converts to the owned string representation.
    pub fn to_attribute(&self, symbols: &SymbolTable) -> Attribute {
        Attribute::new(self.name_str(symbols), self.value.clone())
    }
}

/// A recycled XML event.
///
/// The caller owns one `RawEvent` and passes it to
/// [`crate::XmlReader::next_into`], which rewrites it in place. Field
/// accessors are only meaningful for the matching [`RawEventKind`]:
///
/// | kind | [`name`](Self::name) | [`attributes`](Self::attributes) | [`text`](Self::text) | [`target`](Self::target) |
/// |---|---|---|---|---|
/// | `StartElement` | element | attributes | — | overflow name¹ |
/// | `EndElement` | element | — | — | overflow name¹ |
/// | `Text` | — | — | character data | — |
/// | `Comment` | — | — | comment text | — |
/// | `ProcessingInstruction` | — | — | data | PI target |
/// | `DoctypeDecl` | — | — | internal subset | doctype name |
///
/// ¹ Only in the reader's bounded-interner mode, when `name` is
/// [`SymbolTable::OVERFLOW`]: the literal element name rides in `target`.
/// [`Self::name_str`] resolves either representation.
///
/// Attribute value buffers beyond the live prefix are retained for reuse;
/// [`Self::attributes`] only exposes the live entries.
#[derive(Debug, Clone)]
pub struct RawEvent {
    kind: RawEventKind,
    name: Symbol,
    attrs: Vec<RawAttr>,
    attrs_len: usize,
    text: String,
    target: String,
    has_internal_subset: bool,
    text_synthetic: bool,
}

impl Default for RawEvent {
    fn default() -> Self {
        Self::new()
    }
}

impl RawEvent {
    pub fn new() -> Self {
        RawEvent {
            kind: RawEventKind::StartDocument,
            name: SymbolTable::TEXT,
            attrs: Vec::new(),
            attrs_len: 0,
            text: String::new(),
            target: String::new(),
            has_internal_subset: false,
            text_synthetic: false,
        }
    }

    pub fn kind(&self) -> RawEventKind {
        self.kind
    }

    /// The element name (start/end element events).
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The element name as text, resolving bounded-interner overflow
    /// (where the literal name rides in the `target` buffer because the
    /// interner was at capacity).
    pub fn name_str<'a>(&'a self, symbols: &'a SymbolTable) -> &'a str {
        if self.name == SymbolTable::OVERFLOW {
            &self.target
        } else {
            symbols.name(self.name)
        }
    }

    /// Live attributes of a start-element event.
    pub fn attributes(&self) -> &[RawAttr] {
        &self.attrs[..self.attrs_len]
    }

    /// Character data / comment text / PI data / doctype internal subset.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// PI target or doctype name.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The doctype internal subset, when one was present.
    pub fn internal_subset(&self) -> Option<&str> {
        self.has_internal_subset.then_some(self.text.as_str())
    }

    /// True for a text event consisting only of XML whitespace.
    pub fn is_whitespace_text(&self) -> bool {
        self.kind == RawEventKind::Text
            && self
                .text
                .bytes()
                .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
    }

    /// True when part of this text event's payload came from a character/
    /// entity reference or a CDATA section rather than literal characters.
    /// The sharded merger needs this to mirror the sequential reader's
    /// prolog/epilog rules: literal whitespace around the root is skipped,
    /// but `&#32;` or `<![CDATA[ ]]>` there is an error even though the
    /// *unescaped* payload is whitespace.
    pub fn is_text_synthetic(&self) -> bool {
        self.text_synthetic
    }

    // ----- producer API (the reader, and XSAX default-attribute injection) -----

    /// Rewrites the event as `kind`, clearing payloads but keeping every
    /// buffer's capacity for reuse.
    pub fn reset(&mut self, kind: RawEventKind) {
        self.kind = kind;
        self.attrs_len = 0;
        self.text.clear();
        self.target.clear();
        self.has_internal_subset = false;
        self.text_synthetic = false;
    }

    pub fn set_name(&mut self, name: Symbol) {
        self.name = name;
    }

    /// Appends an attribute, recycling a spare value buffer when one is
    /// available; returns the cleared value buffer to fill.
    pub fn push_attr(&mut self, name: Symbol) -> &mut String {
        if self.attrs_len == self.attrs.len() {
            self.attrs.push(RawAttr {
                name,
                overflow_name: String::new(),
                value: String::new(),
            });
        } else {
            let slot = &mut self.attrs[self.attrs_len];
            slot.name = name;
            slot.overflow_name.clear();
            slot.value.clear();
        }
        self.attrs_len += 1;
        &mut self.attrs[self.attrs_len - 1].value
    }

    /// Appends an attribute whose name did not fit the bounded interner:
    /// the literal name is stored in the recycled `overflow_name` buffer
    /// and the symbol is [`SymbolTable::OVERFLOW`]. Returns the cleared
    /// value buffer to fill.
    pub fn push_attr_named(&mut self, name: &str) -> &mut String {
        self.push_attr(SymbolTable::OVERFLOW);
        let slot = &mut self.attrs[self.attrs_len - 1];
        slot.overflow_name.push_str(name);
        &mut slot.value
    }

    /// The recycled text buffer (character data, comment, PI data, subset).
    pub fn text_mut(&mut self) -> &mut String {
        &mut self.text
    }

    /// The recycled target buffer (PI target, doctype name).
    pub fn target_mut(&mut self) -> &mut String {
        &mut self.target
    }

    pub fn set_has_internal_subset(&mut self, yes: bool) {
        self.has_internal_subset = yes;
    }

    pub fn set_text_synthetic(&mut self, yes: bool) {
        self.text_synthetic = yes;
    }

    /// Converts to the owned, string-named representation (allocates; the
    /// compatibility path for [`crate::XmlReader::next_event`] consumers).
    pub fn to_xml_event(&self, symbols: &SymbolTable) -> XmlEvent {
        match self.kind {
            RawEventKind::StartDocument => XmlEvent::StartDocument,
            RawEventKind::EndDocument => XmlEvent::EndDocument,
            RawEventKind::DoctypeDecl => XmlEvent::DoctypeDecl {
                name: self.target.clone(),
                internal_subset: self.internal_subset().map(str::to_string),
            },
            RawEventKind::StartElement => XmlEvent::StartElement {
                name: self.name_str(symbols).to_string(),
                attributes: self
                    .attributes()
                    .iter()
                    .map(|a| a.to_attribute(symbols))
                    .collect(),
            },
            RawEventKind::EndElement => XmlEvent::EndElement {
                name: self.name_str(symbols).to_string(),
            },
            RawEventKind::Text => XmlEvent::Text(self.text.clone()),
            RawEventKind::Comment => XmlEvent::Comment(self.text.clone()),
            RawEventKind::ProcessingInstruction => XmlEvent::ProcessingInstruction {
                target: self.target.clone(),
                data: self.text.clone(),
            },
        }
    }
}

/// A borrowed view of one attribute: interned name, payloads borrowed
/// from the owning source ([`RawEvent`] buffers or a tape arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrRef<'a> {
    /// Interned attribute name ([`SymbolTable::OVERFLOW`] in the reader's
    /// bounded-interner mode — resolve via [`AttrRef::name_str`]).
    pub name: Symbol,
    /// The literal name when `name` is [`SymbolTable::OVERFLOW`]; empty
    /// otherwise.
    pub overflow_name: &'a str,
    /// The unescaped attribute value.
    pub value: &'a str,
}

impl<'a> AttrRef<'a> {
    /// The attribute name, resolving bounded-interner overflow.
    pub fn name_str(&self, symbols: &'a SymbolTable) -> &'a str {
        if self.name == SymbolTable::OVERFLOW {
            self.overflow_name
        } else {
            symbols.name(self.name)
        }
    }
}

/// Where a [`RawEventRef`]'s attributes live.
#[derive(Debug, Clone, Copy)]
enum AttrsRef<'a> {
    /// The live prefix of a recycled [`RawEvent`]'s attribute buffers.
    Owned(&'a [RawAttr]),
    /// Encoded spans into an event tape's arena (the sharded replay path):
    /// resolving an attribute is span arithmetic, not a copy.
    Tape {
        attrs: &'a [EncAttr],
        arena: &'a str,
        remap: SymbolRemap<'a>,
    },
}

/// Iterator over a view's attributes, literal attributes first, then any
/// defaults a validating layer injected.
#[derive(Debug, Clone)]
pub struct AttrsIter<'a> {
    attrs: AttrsRef<'a>,
    idx: usize,
    defaults: &'a [(Symbol, &'a str)],
    didx: usize,
}

impl<'a> Iterator for AttrsIter<'a> {
    type Item = AttrRef<'a>;

    fn next(&mut self) -> Option<AttrRef<'a>> {
        let literal = match self.attrs {
            AttrsRef::Owned(attrs) => attrs.get(self.idx).map(|a| AttrRef {
                name: a.name,
                overflow_name: &a.overflow_name,
                value: &a.value,
            }),
            AttrsRef::Tape {
                attrs,
                arena,
                remap,
            } => attrs.get(self.idx).map(|a| {
                let name = remap.resolve(a.name);
                // A translation may *introduce* OVERFLOW (bounded merged
                // table); the literal spelling then comes from the remap's
                // name list instead of the tape's overflow span.
                let overflow_name =
                    if name == SymbolTable::OVERFLOW && a.name != SymbolTable::OVERFLOW {
                        remap.literal(a.name).unwrap_or("")
                    } else {
                        &arena[a.overflow.0..a.overflow.1]
                    };
                AttrRef {
                    name,
                    overflow_name,
                    value: &arena[a.value.0..a.value.1],
                }
            }),
        };
        if let Some(attr) = literal {
            self.idx += 1;
            return Some(attr);
        }
        let (name, value) = *self.defaults.get(self.didx)?;
        self.didx += 1;
        Some(AttrRef {
            name,
            overflow_name: "",
            value,
        })
    }
}

/// A borrowed, zero-copy view of one XML event.
///
/// Produced by [`crate::EventSource::view`] after a successful
/// [`crate::EventSource::advance`]; every `&str` borrows the source's own
/// storage and stays valid until the next advance. `Copy`, pointer-sized
/// fields only — passing a view around costs nothing.
///
/// The field-per-kind table of [`RawEvent`] applies unchanged (including
/// the bounded-interner convention that an overflow element's literal name
/// rides in `target`).
#[derive(Debug, Clone, Copy)]
pub struct RawEventRef<'a> {
    kind: RawEventKind,
    name: Symbol,
    text: &'a str,
    target: &'a str,
    has_internal_subset: bool,
    text_synthetic: bool,
    attrs: AttrsRef<'a>,
    /// Attribute defaults injected by a validating layer (XSAX), delivered
    /// after the literal attributes — the event tape and reader never set
    /// this.
    defaults: &'a [(Symbol, &'a str)],
}

impl<'a> RawEventRef<'a> {
    /// Views an owned [`RawEvent`] (payloads borrow its buffers).
    pub fn from_event(ev: &'a RawEvent) -> RawEventRef<'a> {
        RawEventRef {
            kind: ev.kind(),
            name: ev.name(),
            text: ev.text(),
            target: ev.target(),
            has_internal_subset: ev.internal_subset().is_some(),
            text_synthetic: ev.is_text_synthetic(),
            attrs: AttrsRef::Owned(ev.attributes()),
            defaults: &[],
        }
    }

    /// A payload-free event of the given kind (`StartDocument` /
    /// `EndDocument` synthesised by a replay source).
    pub fn bare(kind: RawEventKind) -> RawEventRef<'static> {
        RawEventRef {
            kind,
            name: SymbolTable::TEXT,
            text: "",
            target: "",
            has_internal_subset: false,
            text_synthetic: false,
            attrs: AttrsRef::Owned(&[]),
            defaults: &[],
        }
    }

    /// Crate-internal constructor for the tape replay path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_tape(
        kind: RawEventKind,
        name: Symbol,
        text: &'a str,
        target: &'a str,
        has_internal_subset: bool,
        text_synthetic: bool,
        attrs: &'a [EncAttr],
        arena: &'a str,
        remap: SymbolRemap<'a>,
    ) -> RawEventRef<'a> {
        RawEventRef {
            kind,
            name,
            text,
            target,
            has_internal_subset,
            text_synthetic,
            attrs: AttrsRef::Tape {
                attrs,
                arena,
                remap,
            },
            defaults: &[],
        }
    }

    /// Replaces the text payload (the reader's borrowed-window fast path
    /// for text runs that did not cross a refill boundary).
    pub fn with_text(self, text: &'a str) -> RawEventRef<'a> {
        RawEventRef { text, ..self }
    }

    /// Attaches injected attribute defaults, delivered after the literal
    /// attributes (the XSAX default-injection path).
    pub fn with_defaults(self, defaults: &'a [(Symbol, &'a str)]) -> RawEventRef<'a> {
        RawEventRef { defaults, ..self }
    }

    pub fn kind(&self) -> RawEventKind {
        self.kind
    }

    /// The element name (start/end element events).
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The element name as text, resolving bounded-interner overflow.
    pub fn name_str(&self, symbols: &'a SymbolTable) -> &'a str {
        if self.name == SymbolTable::OVERFLOW {
            self.target
        } else {
            symbols.name(self.name)
        }
    }

    /// Character data / comment text / PI data / doctype internal subset.
    pub fn text(&self) -> &'a str {
        self.text
    }

    /// PI target or doctype name.
    pub fn target(&self) -> &'a str {
        self.target
    }

    /// The doctype internal subset, when one was present.
    pub fn internal_subset(&self) -> Option<&'a str> {
        self.has_internal_subset.then_some(self.text)
    }

    /// True when part of the text payload came from a character/entity
    /// reference or a CDATA section (see [`RawEvent::is_text_synthetic`]).
    pub fn is_text_synthetic(&self) -> bool {
        self.text_synthetic
    }

    /// True for a text event consisting only of XML whitespace.
    pub fn is_whitespace_text(&self) -> bool {
        self.kind == RawEventKind::Text
            && self
                .text
                .bytes()
                .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
    }

    /// Attributes of a start-element event: literal attributes first, then
    /// injected defaults. Span resolution only — no copies.
    pub fn attrs(&self) -> AttrsIter<'a> {
        AttrsIter {
            attrs: self.attrs,
            idx: 0,
            defaults: self.defaults,
            didx: 0,
        }
    }

    /// Number of attributes (literal + injected defaults).
    pub fn attr_count(&self) -> usize {
        let literal = match self.attrs {
            AttrsRef::Owned(attrs) => attrs.len(),
            AttrsRef::Tape { attrs, .. } => attrs.len(),
        };
        literal + self.defaults.len()
    }

    /// Materialises the view into a recycled [`RawEvent`] (the copying
    /// compatibility path behind [`crate::EventSource::next_into`]).
    pub fn copy_into(&self, ev: &mut RawEvent) {
        ev.reset(self.kind);
        ev.set_name(self.name);
        ev.text_mut().push_str(self.text);
        ev.target_mut().push_str(self.target);
        ev.set_has_internal_subset(self.has_internal_subset);
        ev.set_text_synthetic(self.text_synthetic);
        for attr in self.attrs() {
            if attr.name == SymbolTable::OVERFLOW {
                ev.push_attr_named(attr.overflow_name).push_str(attr.value);
            } else {
                ev.push_attr(attr.name).push_str(attr.value);
            }
        }
    }

    /// Converts to the owned, string-named representation (allocates).
    pub fn to_xml_event(&self, symbols: &SymbolTable) -> XmlEvent {
        match self.kind {
            RawEventKind::StartDocument => XmlEvent::StartDocument,
            RawEventKind::EndDocument => XmlEvent::EndDocument,
            RawEventKind::DoctypeDecl => XmlEvent::DoctypeDecl {
                name: self.target.to_string(),
                internal_subset: self.internal_subset().map(str::to_string),
            },
            RawEventKind::StartElement => XmlEvent::StartElement {
                name: self.name_str(symbols).to_string(),
                attributes: self
                    .attrs()
                    .map(|a| Attribute::new(a.name_str(symbols), a.value))
                    .collect(),
            },
            RawEventKind::EndElement => XmlEvent::EndElement {
                name: self.name_str(symbols).to_string(),
            },
            RawEventKind::Text => XmlEvent::Text(self.text.to_string()),
            RawEventKind::Comment => XmlEvent::Comment(self.text.to_string()),
            RawEventKind::ProcessingInstruction => XmlEvent::ProcessingInstruction {
                target: self.target.to_string(),
                data: self.text.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_detection() {
        assert!(XmlEvent::Text("  \t\r\n".into()).is_whitespace_text());
        assert!(!XmlEvent::Text("  x ".into()).is_whitespace_text());
        assert!(!XmlEvent::StartDocument.is_whitespace_text());
        assert!(XmlEvent::Text(String::new()).is_whitespace_text());
    }

    #[test]
    fn element_name_access() {
        let start = XmlEvent::StartElement {
            name: "book".into(),
            attributes: vec![],
        };
        assert_eq!(start.element_name(), Some("book"));
        let end = XmlEvent::EndElement {
            name: "book".into(),
        };
        assert_eq!(end.element_name(), Some("book"));
        assert_eq!(XmlEvent::Text("x".into()).element_name(), None);
    }

    #[test]
    fn display_start_element() {
        let e = XmlEvent::StartElement {
            name: "a".into(),
            attributes: vec![Attribute::new("k", "v")],
        };
        assert_eq!(e.to_string(), "<a k=\"v\">");
    }

    #[test]
    fn raw_event_recycles_attr_buffers() {
        let mut symbols = SymbolTable::new();
        let a = symbols.intern("a");
        let k = symbols.intern("k");
        let mut ev = RawEvent::new();
        ev.reset(RawEventKind::StartElement);
        ev.set_name(a);
        ev.push_attr(k).push_str("a long attribute value");
        assert_eq!(ev.attributes().len(), 1);
        let cap = ev.attributes()[0].value.capacity();
        // Reset keeps the spare value buffer; the next push reuses it.
        ev.reset(RawEventKind::StartElement);
        assert!(ev.attributes().is_empty());
        ev.push_attr(k).push_str("short");
        assert_eq!(ev.attributes()[0].value, "short");
        assert_eq!(ev.attributes()[0].value.capacity(), cap);
    }

    #[test]
    fn raw_to_xml_event_round_trip() {
        let mut symbols = SymbolTable::new();
        let book = symbols.intern("book");
        let year = symbols.intern("year");
        let mut ev = RawEvent::new();
        ev.reset(RawEventKind::StartElement);
        ev.set_name(book);
        ev.push_attr(year).push_str("1994");
        assert_eq!(
            ev.to_xml_event(&symbols),
            XmlEvent::StartElement {
                name: "book".into(),
                attributes: vec![Attribute::new("year", "1994")],
            }
        );
        ev.reset(RawEventKind::Text);
        ev.text_mut().push_str("hi");
        assert!(!ev.is_whitespace_text());
        assert_eq!(ev.to_xml_event(&symbols), XmlEvent::Text("hi".into()));
    }
}
