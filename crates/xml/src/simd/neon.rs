//! NEON prescan kernel: 16 bytes per step on aarch64.
//!
//! `vceqq_u8` per byte class, then the narrowing-shift trick
//! (`vshrn_n_u16(…, 4)`) folds the 128-bit compare result into a 64-bit
//! nibble mask — four bits per byte position — which is walked
//! lowest-nibble-first so lane pushes stay strictly increasing. The
//! sub-vector tail falls through to the SWAR kernel.
//!
//! NEON is baseline on aarch64, so no runtime detection is needed; the
//! module still routes through the same dispatch as AVX2 so the force
//! overrides behave identically.
#![allow(unsafe_code)]

use super::index::{DeltaLane, StructuralIndex};
use super::swar;

/// Pushes every set nibble of `mask` (nibble i = byte `base + i` matched;
/// a match sets all four bits of its nibble).
#[inline]
fn push_nibble_mask(lane: &mut DeltaLane, mut mask: u64, base: u64) {
    while mask != 0 {
        let i = (mask.trailing_zeros() / 4) as u64;
        lane.push(base + i);
        mask &= !(0xFu64 << (i * 4));
    }
}

/// Safe entry point; NEON is unconditionally available on aarch64.
pub fn prescan(bytes: &[u8], base: u64, idx: &mut StructuralIndex) {
    // SAFETY: NEON is part of the aarch64 baseline ISA, so the target
    // feature requirement of `prescan_impl` always holds here.
    unsafe { prescan_impl(bytes, base, idx) }
}

#[target_feature(enable = "neon")]
unsafe fn prescan_impl(bytes: &[u8], base: u64, idx: &mut StructuralIndex) {
    use std::arch::aarch64::*;

    /// 64-bit nibble mask of byte-equality between `v` and `pat`.
    #[inline]
    unsafe fn eq_mask(v: uint8x16_t, pat: uint8x16_t) -> u64 {
        // SAFETY: caller runs under `target_feature(neon)`.
        unsafe {
            let eq = vceqq_u8(v, pat);
            let narrowed = vshrn_n_u16::<4>(vreinterpretq_u16_u8(eq));
            vget_lane_u64::<0>(vreinterpret_u64_u8(narrowed))
        }
    }

    let lt = vdupq_n_u8(b'<');
    let gt = vdupq_n_u8(b'>');
    let dq = vdupq_n_u8(b'"');
    let sq = vdupq_n_u8(b'\'');
    let amp = vdupq_n_u8(b'&');
    let nl = vdupq_n_u8(b'\n');

    let mut offset = 0usize;
    while offset + 16 <= bytes.len() {
        // SAFETY: `offset + 16 <= len`; vld1q_u8 is an unaligned load.
        let v = unsafe { vld1q_u8(bytes.as_ptr().add(offset)) };
        let at = base + offset as u64;
        push_nibble_mask(&mut idx.lt, eq_mask(v, lt), at);
        push_nibble_mask(&mut idx.gt, eq_mask(v, gt), at);
        push_nibble_mask(&mut idx.quote, eq_mask(v, dq) | eq_mask(v, sq), at);
        push_nibble_mask(&mut idx.amp, eq_mask(v, amp), at);
        push_nibble_mask(&mut idx.nl, eq_mask(v, nl), at);
        offset += 16;
    }
    swar::prescan(&bytes[offset..], base + offset as u64, idx);
}
