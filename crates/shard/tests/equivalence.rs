//! The sharded reader's contract: for any document and any shard count,
//! the stitched event stream is the sequential reader's event stream.
//!
//! Checked three ways: byte-identity of the re-serialised stream (the
//! acceptance criterion), owned-event identity (a strictly stronger
//! check, possible because seams sit on element tags so no text run ever
//! splits), and XSAX validation-verdict agreement when the sharded reader
//! feeds `XsaxParser::from_source`.

use flux_shard::{splitter, ShardConfig, ShardedReader};
use flux_xml::{is_name_start, parse_to_events, RawEvent, XmlEvent, XmlReader, XmlWriter};
use flux_xmlgen::{auction_string, bib_string, AuctionConfig, BibConfig};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Byte-at-a-time reference for the splitter's boundary rules: every byte
/// inspected individually, no SWAR kernels and no structural prescan.
/// [`splitter::split_points`] must place exactly these seams — the
/// vectorised `<` hop is an implementation detail, never a semantic one.
fn naive_split_points(input: &[u8], shards: usize) -> Vec<usize> {
    fn find(input: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
        (from..input.len()).find(|&i| input[i..].starts_with(needle))
    }
    fn naive_doctype_end(input: &[u8], start: usize) -> Option<usize> {
        let mut i = start + "<!DOCTYPE".len();
        let mut in_subset = false;
        while i < input.len() {
            match input[i] {
                b'"' | b'\'' => {
                    let quote = input[i];
                    i = find(input, i + 1, &[quote])? + 1;
                }
                b'[' => {
                    in_subset = true;
                    i += 1;
                }
                b']' => {
                    in_subset = false;
                    i += 1;
                }
                b'<' if in_subset && input[i..].starts_with(b"<!--") => {
                    i = find(input, i, b"-->")? + 3;
                }
                b'>' if !in_subset => return Some(i + 1),
                _ => i += 1,
            }
        }
        None
    }
    let mut points = vec![0usize];
    if shards <= 1 || input.is_empty() {
        return points;
    }
    let ideal = |i: usize| i * input.len() / shards;
    let mut next = 1;
    let mut pos = 0usize;
    while next < shards && pos < input.len() {
        let Some(at) = (pos..input.len()).find(|&i| input[i] == b'<') else {
            break;
        };
        let rest = &input[at..];
        if rest.starts_with(b"<!--") {
            match find(input, at, b"-->") {
                Some(end) => pos = end + 3,
                None => break,
            }
        } else if rest.starts_with(b"<![CDATA[") {
            match find(input, at, b"]]>") {
                Some(end) => pos = end + 3,
                None => break,
            }
        } else if rest.starts_with(b"<!DOCTYPE") {
            match naive_doctype_end(input, at) {
                Some(end) => pos = end,
                None => break,
            }
        } else if rest.starts_with(b"<?") {
            match find(input, at, b"?>") {
                Some(end) => pos = end + 2,
                None => break,
            }
        } else if rest.len() > 1 && (rest[1] == b'/' || is_name_start(rest[1])) {
            if at > 0 && at >= ideal(next) {
                points.push(at);
                next += 1;
                while next < shards && at >= ideal(next) {
                    next += 1;
                }
            }
            pos = at + 1;
        } else {
            pos = at + 1;
        }
    }
    points
}

fn assert_seams_match_naive(doc: &str) {
    for shards in SHARD_COUNTS {
        assert_eq!(
            splitter::split_points(doc.as_bytes(), shards),
            naive_split_points(doc.as_bytes(), shards),
            "seams diverged from the naive reference at {shards} shards"
        );
    }
}

/// Serialises whatever `next_into` source produces, raw-event path.
fn serialise_sequential(doc: &str) -> String {
    let mut reader = XmlReader::new(doc.as_bytes());
    let mut writer = XmlWriter::new(Vec::new());
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).expect("sequential parse") {
        writer
            .write_raw_event(reader.symbols(), &ev)
            .expect("write");
    }
    writer.finish().expect("finish");
    String::from_utf8(writer.into_inner()).expect("utf8")
}

fn sharded_reader(doc: &str, shards: usize) -> ShardedReader {
    let mut config = ShardConfig::new(shards);
    config.min_shard_bytes = 1; // shard even small generated documents
    ShardedReader::new(doc.as_bytes().to_vec(), config)
}

fn serialise_sharded(doc: &str, shards: usize) -> String {
    let mut reader = sharded_reader(doc, shards);
    let mut writer = XmlWriter::new(Vec::new());
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).expect("sharded parse") {
        writer
            .write_raw_event(reader.symbols(), &ev)
            .expect("write");
    }
    writer.finish().expect("finish");
    String::from_utf8(writer.into_inner()).expect("utf8")
}

fn sharded_owned_events(doc: &str, shards: usize) -> Vec<XmlEvent> {
    let mut reader = sharded_reader(doc, shards);
    let mut ev = RawEvent::new();
    let mut out = Vec::new();
    while reader.next_into(&mut ev).expect("sharded parse") {
        out.push(ev.to_xml_event(reader.symbols()));
    }
    out
}

fn assert_doc_equivalent(doc: &str) {
    assert_seams_match_naive(doc);
    let expected_bytes = serialise_sequential(doc);
    let expected_events = parse_to_events(doc).expect("sequential parse");
    for shards in SHARD_COUNTS {
        assert_eq!(
            serialise_sharded(doc, shards),
            expected_bytes,
            "serialised stream diverged at {shards} shards"
        );
        assert_eq!(
            sharded_owned_events(doc, shards),
            expected_events,
            "event sequence diverged at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Generated bibliography documents (weak DTD shape): sharded and
    /// sequential streams are byte-identical via the writer.
    #[test]
    fn bib_weak_documents_equivalent(seed in 0u64..1_000_000, books in 1usize..120) {
        assert_doc_equivalent(&bib_string(&BibConfig::weak(books, seed)));
    }

    /// Figure 1 DTD shape.
    #[test]
    fn bib_fig1_documents_equivalent(seed in 0u64..1_000_000, books in 1usize..120) {
        assert_doc_equivalent(&bib_string(&BibConfig::fig1(books, seed)));
    }

    /// Auction documents: deeper nesting, attributes, joins corpus.
    #[test]
    fn auction_documents_equivalent(seed in 0u64..1_000_000) {
        assert_doc_equivalent(&auction_string(&AuctionConfig::scale(0.3, seed)));
    }
}

// ----- seam unit tests: constructs straddling an exact chunk boundary -----

/// Forces exactly two shards and checks equivalence. `min_shard_bytes = 1`
/// makes the split land near the middle of the document, which the caller
/// arranges to be inside the interesting construct.
fn assert_two_shard_equivalent(doc: &str) {
    assert_seams_match_naive(doc);
    let expected = serialise_sequential(doc);
    assert_eq!(serialise_sharded(doc, 2), expected, "doc: {doc}");
}

#[test]
fn seams_match_naive_reference_on_construct_heavy_doc() {
    // Every skip rule in one document: DOCTYPE with a bracketed subset
    // (holding a quoted `>` and a comment), PIs, comments and CDATA full
    // of fake tags, plus quoted `>` in attribute values.
    let decoys = "<!-- <fake/> --><![CDATA[<fake2/>]]><?pi <fake3/> ?>".repeat(12);
    let doc = format!(
        "<?xml version=\"1.0\"?><!DOCTYPE r [<!-- <x> --><!ENTITY g \"]<z>\">]>\
         <r>{decoys}<a k=\"a > b\" k2='c > d'>text</a>{decoys}</r>"
    );
    assert_seams_match_naive(&doc);
    // Seams stay honest on a document that ends mid-construct, too.
    let truncated = &doc[..doc.len() / 2];
    for shards in SHARD_COUNTS {
        assert_eq!(
            splitter::split_points(truncated.as_bytes(), shards),
            naive_split_points(truncated.as_bytes(), shards),
            "seams diverged on truncated doc at {shards} shards"
        );
    }
}

#[test]
fn seams_match_naive_across_prescan_blocks() {
    // A document big enough that the splitter's lazy prescan sweeps
    // several blocks, with boundaries landing both early and late.
    let doc = format!(
        "<r>{}</r>",
        "<item a=\"v > w\">body text</item>".repeat(8_000)
    );
    assert!(doc.len() > 128 * 1024, "must span multiple prescan blocks");
    for shards in [2usize, 5, 16, 64] {
        assert_eq!(
            splitter::split_points(doc.as_bytes(), shards),
            naive_split_points(doc.as_bytes(), shards),
            "seams diverged at {shards} shards"
        );
    }
}

#[test]
fn tag_name_straddles_boundary() {
    // The ideal midpoint falls inside `<straddling-name ...>`: the
    // splitter must move the boundary to the tag's `<` or past it, never
    // inside the name.
    let left = "x".repeat(40);
    let doc = format!("<r><a>{left}</a><straddling-name attr=\"value\">body</straddling-name></r>");
    assert_two_shard_equivalent(&doc);
}

#[test]
fn text_run_straddles_boundary() {
    // Midpoint inside a long text run: the whole run must stay one event
    // (the boundary moves to the next tag).
    let run = "long text with entities &amp; more ".repeat(4);
    let doc = format!("<r><t>{run}</t><u/></r>");
    assert_two_shard_equivalent(&doc);
    // And the run really is delivered as a single text event.
    let events = sharded_owned_events(&doc, 2);
    let texts: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, XmlEvent::Text(_)))
        .collect();
    assert_eq!(texts.len(), 1, "{events:?}");
}

#[test]
fn comment_straddles_boundary() {
    let doc = format!(
        "<r><a>x</a><!-- a comment with <fake-tags/> inside {} --><b>y</b></r>",
        "pad ".repeat(10)
    );
    assert_two_shard_equivalent(&doc);
}

#[test]
fn cdata_straddles_boundary() {
    let doc = format!(
        "<r><t>before<![CDATA[raw <not-a-tag> &amp; {}]]>after</t></r>",
        "pad ".repeat(10)
    );
    assert_two_shard_equivalent(&doc);
    // CDATA merges into the surrounding text run, exactly like the
    // sequential reader.
    let events = sharded_owned_events(&doc, 2);
    assert!(
        events.iter().any(
            |e| matches!(e, XmlEvent::Text(t) if t.starts_with("before") && t.ends_with("after"))
        ),
        "{events:?}"
    );
}

#[test]
fn attribute_value_straddles_boundary() {
    let value = "no lt allowed but entities &amp; quotes ' work ".repeat(2);
    let doc = format!("<r><a k=\"{value}\" k2='two'/><b/></r>");
    assert_two_shard_equivalent(&doc);
}

#[test]
fn element_spanning_all_shards() {
    // One element whose content crosses every seam: its start tag lives in
    // shard 0, its end tag in the last shard.
    let body = "<leaf>x</leaf>".repeat(64);
    let doc = format!("<root><wide>{body}</wide></root>");
    for shards in SHARD_COUNTS {
        assert_eq!(serialise_sharded(&doc, shards), serialise_sequential(&doc));
    }
}

// ----- XSAX verdict agreement over the sharded source -----

#[test]
fn xsax_verdicts_agree_with_sequential() {
    use flux_dtd::Dtd;
    use flux_xsax::{seeded_symbols, XsaxConfig, XsaxParser};

    let dtd = Dtd::parse(flux_dtd::PAPER_FIG1_DTD).expect("dtd");
    let valid = bib_string(&BibConfig::fig1(80, 7));
    let invalid = valid.replace("<title>", "<price>9</price><title>");

    for (doc, should_pass) in [(&valid, true), (&invalid, false)] {
        let sequential = {
            let mut p = XsaxParser::new(doc.as_bytes(), &dtd).expect("parser");
            let mut ev = RawEvent::new();
            let mut n = 0u64;
            loop {
                match p.next_into(&mut ev) {
                    Ok(Some(_)) => n += 1,
                    Ok(None) => break Ok(n),
                    Err(e) => break Err(e),
                }
            }
        };
        for shards in SHARD_COUNTS {
            let mut config = ShardConfig::new(shards);
            config.min_shard_bytes = 1;
            let source =
                ShardedReader::with_symbols(doc.as_bytes().to_vec(), config, seeded_symbols(&dtd));
            let mut p =
                XsaxParser::from_source(source, &dtd, XsaxConfig::default()).expect("from_source");
            let mut ev = RawEvent::new();
            let mut n = 0u64;
            let sharded: Result<u64, _> = loop {
                match p.next_into(&mut ev) {
                    Ok(Some(_)) => n += 1,
                    Ok(None) => break Ok(n),
                    Err(e) => break Err(e),
                }
            };
            match (&sequential, &sharded) {
                (Ok(a), Ok(b)) => {
                    assert!(should_pass, "both accepted an invalid doc");
                    assert_eq!(a, b, "event counts diverged at {shards} shards");
                }
                (Err(_), Err(_)) => {
                    assert!(!should_pass, "both rejected a valid doc")
                }
                (seq, sh) => panic!(
                    "verdicts diverged at {shards} shards: sequential {seq:?}, sharded {sh:?}"
                ),
            }
        }
    }
}

#[test]
fn xsax_past_fires_agree_over_sharded_source() {
    use flux_dtd::Dtd;
    use flux_xsax::{seeded_symbols, PastLabels, XsaxConfig, XsaxParser, XsaxStep};

    let dtd = Dtd::parse(flux_dtd::PAPER_FIG1_DTD).expect("dtd");
    let doc = bib_string(&BibConfig::fig1(60, 21));
    let book = dtd.lookup("book").unwrap();
    let title = dtd.lookup("title").unwrap();
    let author = dtd.lookup("author").unwrap();

    // A fire trace records (event ordinal, fired id) pairs.
    fn trace<S: flux_xml::EventSource>(
        mut parser: XsaxParser<'_, S>,
        book: flux_dtd::Symbol,
        labels: PastLabels,
    ) -> Vec<(u64, u32)> {
        parser.register_past(book, labels).expect("register");
        let mut ev = RawEvent::new();
        let mut ordinal = 0u64;
        let mut fires = Vec::new();
        while let Some(step) = parser.next_into(&mut ev).expect("step") {
            ordinal += 1;
            if let XsaxStep::Fire { id, .. } = step {
                fires.push((ordinal, id.0));
            }
        }
        fires
    }

    let labels = PastLabels::labels([title, author]);
    let sequential = trace(
        XsaxParser::new(doc.as_bytes(), &dtd).expect("parser"),
        book,
        labels.clone(),
    );
    assert!(!sequential.is_empty(), "the workload must fire");
    for shards in SHARD_COUNTS {
        let mut config = ShardConfig::new(shards);
        config.min_shard_bytes = 1;
        let source =
            ShardedReader::with_symbols(doc.as_bytes().to_vec(), config, seeded_symbols(&dtd));
        let parser =
            XsaxParser::from_source(source, &dtd, XsaxConfig::default()).expect("from_source");
        assert_eq!(
            trace(parser, book, labels.clone()),
            sequential,
            "fire positions diverged at {shards} shards"
        );
    }
}
