//! A streaming, pull-based XML parser.
//!
//! [`XmlReader`] turns a byte stream into a sequence of events without
//! buffering the document: memory use is bounded by the largest single
//! token **plus one interner entry per distinct element/attribute name**.
//! On schema-validated streams the name alphabet is fixed by the DTD, so
//! the bound is schema-sized — which is what makes the FluXQuery runtime's
//! memory guarantees meaningful. Only when parsing arbitrary unvalidated
//! input with unboundedly many *distinct* names does the interner grow with
//! the document (the in-repo consumers of that mode — the DOM and
//! projection baselines — materialise the document anyway).
//!
//! Two pull APIs exist over the same parsing core:
//!
//! * [`XmlReader::next_into`] — the hot path. The caller owns one
//!   [`RawEvent`] that is rewritten in place; element and attribute names
//!   are interned [`Symbol`]s, text and attribute values land in recycled
//!   buffers, and UTF-8 is validated in place. In the steady state (every
//!   name interned, buffers grown to the largest token) pulling an event
//!   performs **zero heap allocations**.
//! * [`XmlReader::next_event`] / [`XmlReader::next`] — the owned
//!   [`XmlEvent`] API, which allocates per event. Kept for tests, tools and
//!   anything off the hot path; it is a thin wrapper over the raw core.
//!
//! The reader checks well-formedness (tag balance, a single root element,
//! attribute uniqueness, entity definedness) but performs no validation —
//! validation against a DTD is layered on top by the `flux-xsax` crate,
//! which seeds the reader's [`SymbolTable`] from the DTD so stream symbols
//! coincide with schema symbols.

use crate::error::{Position, Result, XmlError};
use crate::escape::unescape_into;
use crate::event::{RawEvent, RawEventKind, RawEventRef, XmlEvent};
use crate::input::MemoryBudget;
use crate::scanner::{Scanner, TagProbe};
use flux_symbols::{Symbol, SymbolTable};
use flux_telemetry::{ReaderCounters, RunReport, ScanCounters, Stage};
use std::io::Read;
use std::sync::Arc;

/// Configuration for [`XmlReader`].
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Emit [`XmlEvent::Comment`] events (default: false — comments are skipped).
    pub emit_comments: bool,
    /// Emit [`XmlEvent::ProcessingInstruction`] events (default: false).
    pub emit_processing_instructions: bool,
    /// Hard limit on element nesting depth, to bound stack growth on
    /// adversarial input.
    pub max_depth: usize,
    /// Cap on the number of distinct names the reader's interner may hold
    /// (bounded-interner mode, default `None` = unbounded). Past the cap,
    /// new names are **not** interned: events carry
    /// [`SymbolTable::OVERFLOW`] plus the literal name in a recycled
    /// buffer (see [`RawEvent::name_str`]). This restores a hard memory
    /// bound when parsing adversarial unvalidated input whose distinct-name
    /// count is unbounded; on schema-validated streams the alphabet is
    /// fixed and the cap is never hit.
    pub max_symbols: Option<usize>,
    /// Parse a document *fragment* rather than a whole document (default:
    /// false). A fragment is a slice of a well-formed document starting at
    /// a tag boundary, as produced by `flux_shard`'s chunk splitter:
    /// multiple top-level elements, character data at top level, and end
    /// tags closing elements opened before the fragment are all accepted
    /// (the sharded merger re-checks global well-formedness when it
    /// stitches fragments). At end of input, open elements are left on the
    /// stack ([`XmlReader::open_elements`]) instead of erroring.
    pub fragment: bool,
    /// Scanner window size in bytes (default
    /// [`crate::input::DEFAULT_WINDOW`]): the refill granularity and the
    /// initial buffer capacity. The window still grows past this when a
    /// single token is longer — memory stays bounded by the largest
    /// token, not by the configured size.
    pub window: usize,
    /// Memory budget the scanner window is charged against for the
    /// reader's lifetime (default `None` = untracked). Shared with the
    /// engine's tape/chunk accounting in streamed runs.
    pub budget: Option<Arc<MemoryBudget>>,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            emit_comments: false,
            emit_processing_instructions: false,
            max_depth: 10_000,
            max_symbols: None,
            fragment: false,
            window: crate::input::DEFAULT_WINDOW,
            budget: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Before `StartDocument` has been emitted.
    Fresh,
    /// In the prolog: before the root element has opened.
    Prolog,
    /// Inside the root element.
    InRoot,
    /// After the root element closed, before `EndDocument`.
    Epilog,
    /// `EndDocument` emitted.
    Done,
}

/// Streaming pull parser over any [`Read`] source.
///
/// A thin shell around `ReaderCore` plus the two recycled events the
/// pull APIs write into. The split is load-bearing: `advance` hands
/// `&mut self.current` and `&mut self.core` to the parsing core as
/// disjoint field borrows, so no per-event move of the event struct is
/// needed to satisfy the borrow checker.
pub struct XmlReader<R: Read> {
    core: ReaderCore<R>,
    /// The event behind [`XmlReader::view`], filled in place by
    /// [`XmlReader::advance`].
    current: RawEvent,
    /// Recycled event backing the owned-`XmlEvent` compatibility API.
    compat: RawEvent,
}

/// The parsing state machine behind [`XmlReader`] — everything except
/// the recycled output events.
struct ReaderCore<R: Read> {
    scanner: Scanner<R>,
    config: ReaderConfig,
    state: State,
    /// Source position of the first byte of the current event's construct
    /// (set at dispatch, before any of it is consumed).
    event_start: Position,
    /// Interner for element and attribute names. Seed it with
    /// [`XmlReader::with_symbols`] to share symbols with a schema.
    symbols: SymbolTable,
    /// Symbols of currently open elements.
    stack: Vec<Symbol>,
    /// Second half of an empty-element tag, emitted on the next call.
    pending_end: Option<Symbol>,
    /// Scratch buffer reused between tokens (names, raw attribute values,
    /// raw text runs).
    scratch: Vec<u8>,
    /// Second scratch buffer for payloads read while `scratch` content is
    /// still needed (CDATA runs, PI data, overflow attribute names).
    aux: Vec<u8>,
    /// Literal names of open elements whose symbol is
    /// [`SymbolTable::OVERFLOW`] (bounded-interner mode), innermost last.
    overflow_stack: Vec<String>,
    /// Spare overflow-name buffers recycled from closed elements.
    spare_overflow: Vec<String>,
    /// Direct-mapped intern cache for the fast tag path, keyed by the
    /// name's first byte xor its length. A document's working set of
    /// element/attribute names is a handful of schema-fixed strings, so a
    /// length check plus memcmp replaces most hash-map probes. Entries
    /// are valid forever once filled: interning is idempotent and the
    /// table never forgets.
    name_cache: [(Vec<u8>, Symbol); NAME_CACHE_WAYS],
    /// When the current event is a text run served straight from the
    /// scanner window (no entities, no CDATA merge, no refill crossed),
    /// the window range holding it: [`XmlReader::view`] borrows the bytes
    /// in place instead of copying them into `current`. Valid until the
    /// next advance — the scanner is guaranteed not to compact before
    /// then.
    borrowed_text: Option<(usize, usize)>,
    /// Fast/slow path counters (zero-sized unless telemetry is enabled).
    tel: ReaderCounters,
}

/// Ways in the fast path's direct-mapped name-intern cache. Sized for a
/// schema-fixed name alphabet (a DTD's worth of element and attribute
/// names); collisions only cost a fall-through to the hash map.
const NAME_CACHE_WAYS: usize = 32;

/// The markup construct classes the nine-byte dispatch probe can tell
/// apart — nine bytes is the longest discriminating prefix
/// (`<![CDATA[`).
#[derive(Clone, Copy)]
enum Markup {
    Comment,
    Cdata,
    Doctype,
    Pi,
    End,
    Start,
}

/// Classifies the markup construct starting at `probe[0] == b'<'` from
/// one dispatch probe — a single peek replaces the old chain of
/// `looking_at` calls.
#[inline]
fn classify_markup(probe: &[u8]) -> Markup {
    debug_assert_eq!(probe.first(), Some(&b'<'));
    match probe.get(1) {
        Some(b'!') if probe.starts_with(b"<!--") => Markup::Comment,
        Some(b'!') if probe.starts_with(b"<![CDATA[") => Markup::Cdata,
        Some(b'!') if probe.starts_with(b"<!DOCTYPE") => Markup::Doctype,
        Some(b'?') => Markup::Pi,
        Some(b'/') => Markup::End,
        // `<!anything-else` falls through to the start-tag parser,
        // which reports "invalid element name" exactly as before.
        _ => Markup::Start,
    }
}

/// Interns through the fast tag path's direct-mapped name cache (a free
/// function over the two fields involved, so callers holding a scanner
/// borrow can still use it). Never runs in bounded-interner mode, so the
/// cache never has to model overflow.
#[inline]
fn intern_cached(
    cache: &mut [(Vec<u8>, Symbol); NAME_CACHE_WAYS],
    symbols: &mut SymbolTable,
    name: &str,
) -> Symbol {
    let bytes = name.as_bytes();
    debug_assert!(!bytes.is_empty());
    let way = (bytes[0] ^ bytes.len() as u8) as usize % NAME_CACHE_WAYS;
    let slot = &mut cache[way];
    if slot.0 == bytes {
        return slot.1;
    }
    let sym = symbols.intern(name);
    slot.0.clear();
    slot.0.extend_from_slice(bytes);
    slot.1 = sym;
    sym
}

/// Whether `b` can begin an XML name (the reader's classification, shared
/// with the shard splitter, which must agree with the reader on what a
/// start/end tag looks like).
pub fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

impl<R: Read> XmlReader<R> {
    /// Creates a reader with default configuration.
    pub fn new(src: R) -> Self {
        Self::with_config(src, ReaderConfig::default())
    }

    /// Creates a reader with the given configuration.
    pub fn with_config(src: R, config: ReaderConfig) -> Self {
        Self::with_symbols(src, config, SymbolTable::new())
    }

    /// Creates a reader whose name interner is seeded with `symbols`.
    ///
    /// Cloning a schema's table into the reader makes stream symbols
    /// directly comparable with schema symbols (clones preserve indices);
    /// names not in the seed are interned on first sight.
    pub fn with_symbols(src: R, config: ReaderConfig, symbols: SymbolTable) -> Self {
        let scanner = Scanner::with_window(src, config.window, config.budget.clone());
        XmlReader {
            core: ReaderCore {
                scanner,
                config,
                state: State::Fresh,
                event_start: Position {
                    offset: 0,
                    line: 1,
                    column: 1,
                },
                symbols,
                stack: Vec::new(),
                pending_end: None,
                scratch: Vec::new(),
                aux: Vec::new(),
                overflow_stack: Vec::new(),
                spare_overflow: Vec::new(),
                name_cache: std::array::from_fn(|_| (Vec::new(), SymbolTable::TEXT)),
                borrowed_text: None,
                tel: ReaderCounters::default(),
            },
            compat: RawEvent::new(),
            current: RawEvent::new(),
        }
    }

    /// The name interner: maps the [`Symbol`]s in raw events back to names.
    pub fn symbols(&self) -> &SymbolTable {
        &self.core.symbols
    }

    /// Current input position (useful for error reporting in callers).
    pub fn position(&self) -> Position {
        self.core.scanner.position()
    }

    /// Position of the first byte of the most recently delivered event's
    /// construct — where the sequential reader reports document-level
    /// errors (a second root element, a late DOCTYPE, top-level text).
    /// Tape recorders store it so replay errors stay byte-exact.
    pub fn event_start(&self) -> Position {
        self.core.event_start
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.core.stack.len()
    }

    /// Symbols of the currently open elements, outermost first. In
    /// fragment mode these are the elements still open at end of input —
    /// the "suffix opens" of the shard's stack summary, which the sharded
    /// merger matches against the next shard's unmatched closes.
    pub fn open_elements(&self) -> &[Symbol] {
        &self.core.stack
    }

    /// Pulls the next event into the caller-owned `ev`, recycling its
    /// buffers. Returns `Ok(false)` once `EndDocument` has been delivered.
    pub fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        if self.core.state == State::Done {
            return Ok(false);
        }
        self.core.fill_event(ev, false)?;
        Ok(true)
    }

    /// Advances to the next event, readable through [`XmlReader::view`]
    /// until the following advance. This is the zero-copy pull API: text
    /// runs that end inside the scanner's buffered window are delivered as
    /// borrowed slices of it, skipping even the copy into the recycled
    /// event buffer. Returns `Ok(false)` once `EndDocument` has been
    /// delivered.
    pub fn advance(&mut self) -> Result<bool> {
        if self.core.state == State::Done {
            self.core.borrowed_text = None;
            return Ok(false);
        }
        // Disjoint field borrows: the core writes the event in place.
        self.core.fill_event(&mut self.current, true)?;
        Ok(true)
    }

    /// A borrowed view of the event the last [`XmlReader::advance`]
    /// produced. Payloads borrow the reader's recycled buffers or the
    /// scanner window directly.
    pub fn view(&self) -> RawEventRef<'_> {
        let v = RawEventRef::from_event(&self.current);
        match self.core.borrowed_text {
            Some(range) => v.with_text(
                std::str::from_utf8(self.core.scanner.borrowed(range))
                    .expect("borrowed text validated at parse time"),
            ),
            None => v,
        }
    }

    /// Pulls the next event. After [`XmlEvent::EndDocument`], returns `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XmlEvent>> {
        if self.core.state == State::Done {
            return Ok(None);
        }
        #[allow(deprecated)]
        self.next_event().map(Some)
    }

    /// Pulls the next event as an owned [`XmlEvent`]; calling after
    /// `EndDocument` is an error. Allocates per event.
    #[deprecated(
        since = "0.1.0",
        note = "legacy string-event wrapper; migrate to `XmlReader::next_into` \
                (caller-owned recycled event) or `advance`/`view` (borrowed \
                zero-copy view). Both deliver interned `Symbol` names; map \
                them back with `XmlReader::symbols()` where strings are needed."
    )]
    pub fn next_event(&mut self) -> Result<XmlEvent> {
        self.core.fill_event(&mut self.compat, false)?;
        Ok(self.compat.to_xml_event(&self.core.symbols))
    }

    /// A copy of the scanner's refill/prescan counters (zero-sized unless
    /// the `telemetry` feature is on). Shard workers harvest these at
    /// join time and merge them into the pipeline totals.
    pub fn scan_telemetry(&self) -> ScanCounters {
        self.core.scanner.telemetry()
    }

    /// A copy of the reader's fast/slow path counters (zero-sized unless
    /// the `telemetry` feature is on).
    pub fn reader_telemetry(&self) -> ReaderCounters {
        self.core.tel
    }

    /// Appends this reader's `scanner` and `reader` telemetry stages to
    /// `report` (empty stages when the `telemetry` feature is off).
    pub fn report_into(&self, report: &mut RunReport) {
        let mut scanner = Stage::new("scanner");
        scanner.note("isa", crate::simd::active_isa_name());
        // The configured window size, so refill-behaviour regressions in a
        // report are attributable to their knob.
        scanner.counter("window_bytes", self.core.scanner.window_size() as u64);
        scanner.absorb(self.scan_telemetry().snapshot());
        report.stage(scanner);
        let mut reader = Stage::new("reader");
        reader.absorb(self.reader_telemetry().snapshot());
        report.stage(reader);
    }
}

impl<R: Read> ReaderCore<R> {
    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            message: message.into(),
            pos: self.scanner.position(),
        }
    }

    fn wf(&self, message: impl Into<String>) -> XmlError {
        XmlError::WellFormedness {
            message: message.into(),
            pos: self.scanner.position(),
        }
    }

    /// The parsing core: rewrites `ev` with the next event. With
    /// `allow_borrow`, an eligible text run is left in the scanner window
    /// ([`ReaderCore::borrowed_text`]) instead of being copied into `ev` —
    /// only the view API may enable this, because the range dies at the
    /// next scanner refill.
    fn fill_event(&mut self, ev: &mut RawEvent, allow_borrow: bool) -> Result<()> {
        self.borrowed_text = None;
        if self.state == State::Fresh {
            // Fragments skip the prolog/epilog state machine entirely: a
            // fragment is content, and the merger re-checks document-level
            // structure across shards.
            self.state = if self.config.fragment {
                State::InRoot
            } else {
                State::Prolog
            };
            self.skip_bom()?;
            self.maybe_skip_xml_decl()?;
            ev.reset(RawEventKind::StartDocument);
            return Ok(());
        }
        if let Some(name) = self.pending_end.take() {
            // The virtual end tag of `<e/>` is zero-width at the current
            // position.
            self.event_start = self.scanner.position();
            ev.reset(RawEventKind::EndElement);
            ev.set_name(name);
            if name == SymbolTable::OVERFLOW {
                let open = self.overflow_stack.last().expect("overflow name on stack");
                ev.target_mut().push_str(open);
            }
            self.leave_element();
            return Ok(());
        }
        loop {
            match self.state {
                State::Done => return Err(self.syntax("next_event called after end of document")),
                State::Prolog | State::Epilog => {
                    self.scanner.skip_whitespace()?;
                    self.event_start = self.scanner.position();
                    match self.scanner.peek()? {
                        None => {
                            if self.state == State::Prolog {
                                return Err(XmlError::UnexpectedEof {
                                    expected: "root element",
                                    pos: self.scanner.position(),
                                });
                            }
                            self.state = State::Done;
                            ev.reset(RawEventKind::EndDocument);
                            return Ok(());
                        }
                        Some(b'<') => {
                            let kind = classify_markup(self.scanner.peek_slice(9)?);
                            if self.parse_markup(ev, allow_borrow, kind)? {
                                return Ok(());
                            }
                        }
                        Some(_) => {
                            return Err(self.wf(if self.state == State::Prolog {
                                "character data before the root element"
                            } else {
                                "character data after the root element"
                            }))
                        }
                    }
                }
                State::InRoot => {
                    self.event_start = self.scanner.position();
                    // One nine-byte probe per event classifies everything:
                    // EOF, text, or which markup construct follows (CDATA
                    // counts as text — parse_text merges it into the run).
                    let next = {
                        let probe = self.scanner.peek_slice(9)?;
                        match probe.first() {
                            None => None,
                            Some(&b'<') => Some(Some(classify_markup(probe))),
                            Some(_) => Some(None),
                        }
                    };
                    match next {
                        None => {
                            if self.config.fragment {
                                // End of the fragment: leave open elements on
                                // the stack for the merger to stitch.
                                self.state = State::Done;
                                ev.reset(RawEventKind::EndDocument);
                                return Ok(());
                            }
                            return Err(XmlError::UnexpectedEof {
                                expected: "closing tags for open elements",
                                pos: self.scanner.position(),
                            });
                        }
                        Some(Some(kind)) => {
                            if self.parse_markup(ev, allow_borrow, kind)? {
                                return Ok(());
                            }
                        }
                        Some(None) => return self.parse_text(ev, allow_borrow),
                    }
                }
                State::Fresh => unreachable!("handled above"),
            }
        }
    }

    fn skip_bom(&mut self) -> Result<()> {
        if self.scanner.looking_at(&[0xEF, 0xBB, 0xBF])? {
            self.scanner.expect_str(&[0xEF, 0xBB, 0xBF], "BOM")?;
        }
        Ok(())
    }

    fn maybe_skip_xml_decl(&mut self) -> Result<()> {
        if self.scanner.looking_at(b"<?xml")? {
            // Require whitespace after the target so `<?xml-stylesheet?>` is
            // treated as an ordinary PI.
            let slice = self.scanner.peek_slice(6)?;
            if slice.len() == 6 && !slice[5].is_ascii_whitespace() {
                return Ok(());
            }
            self.scanner.expect_str(b"<?xml", "xml declaration")?;
            self.scratch.clear();
            self.scanner
                .read_until(b"?>", &mut self.scratch, "end of xml declaration")?;
        }
        Ok(())
    }

    /// Parses one `<...>` construct into `ev`; `kind` comes from the
    /// dispatch probe ([`classify_markup`] over the same nine bytes).
    /// Returns `false` when the construct was consumed silently (skipped
    /// comment/PI).
    fn parse_markup(
        &mut self,
        ev: &mut RawEvent,
        allow_borrow: bool,
        kind: Markup,
    ) -> Result<bool> {
        match kind {
            Markup::Comment => self.parse_comment(ev),
            // CDATA is text: inside the root it joins the surrounding
            // character-data run (parse_text merges adjacent sections);
            // anywhere else it is a well-formedness error.
            Markup::Cdata if self.state == State::InRoot => {
                self.parse_text(ev, allow_borrow)?;
                Ok(true)
            }
            Markup::Cdata => Err(self.wf("CDATA section outside the root element")),
            Markup::Doctype => {
                self.parse_doctype(ev)?;
                Ok(true)
            }
            Markup::Pi => self.parse_pi(ev),
            Markup::End => {
                if self.try_fast_end_tag(ev)? {
                    self.tel.fast_end_tags(1);
                } else {
                    self.tel.slow_end_tags(1);
                    self.parse_end_tag(ev)?;
                }
                Ok(true)
            }
            Markup::Start => {
                if self.try_fast_start_tag(ev)? {
                    self.tel.fast_start_tags(1);
                } else {
                    self.tel.slow_start_tags(1);
                    self.parse_start_tag(ev)?;
                }
                Ok(true)
            }
        }
    }

    fn parse_comment(&mut self, ev: &mut RawEvent) -> Result<bool> {
        self.scanner.expect_str(b"<!--", "comment")?;
        self.scratch.clear();
        self.scanner
            .read_until(b"-->", &mut self.scratch, "end of comment `-->`")?;
        let pos = self.scanner.position();
        let text = std::str::from_utf8(&self.scratch).map_err(|_| XmlError::InvalidUtf8 { pos })?;
        if self.config.emit_comments {
            ev.reset(RawEventKind::Comment);
            ev.text_mut().push_str(text);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_pi(&mut self, ev: &mut RawEvent) -> Result<bool> {
        self.scanner.expect_str(b"<?", "processing instruction")?;
        ev.reset(RawEventKind::ProcessingInstruction);
        self.read_name("processing instruction target")?;
        {
            let pos = self.scanner.position();
            let target =
                std::str::from_utf8(&self.scratch).map_err(|_| XmlError::InvalidUtf8 { pos })?;
            ev.target_mut().push_str(target);
        }
        self.scanner.skip_whitespace()?;
        self.aux.clear();
        self.scanner
            .read_until(b"?>", &mut self.aux, "end of processing instruction")?;
        let pos = self.scanner.position();
        let data = std::str::from_utf8(&self.aux).map_err(|_| XmlError::InvalidUtf8 { pos })?;
        if ev.target().eq_ignore_ascii_case("xml") {
            // XML declaration not at document start.
            return Err(self.syntax("xml declaration is only allowed at the start of the document"));
        }
        if self.config.emit_processing_instructions {
            ev.text_mut().push_str(data);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_doctype(&mut self, ev: &mut RawEvent) -> Result<()> {
        // Fragments accept a DOCTYPE whenever no element is open locally;
        // the sharded merger enforces the document-level prolog position.
        let ok_here = self.state == State::Prolog
            || (self.config.fragment && self.stack.is_empty() && self.pending_end.is_none());
        if !ok_here {
            return Err(self.wf("DOCTYPE declaration after the root element has started"));
        }
        self.scanner
            .expect_str(b"<!DOCTYPE", "DOCTYPE declaration")?;
        if self.scanner.skip_whitespace()? == 0 {
            return Err(self.syntax("whitespace required after <!DOCTYPE"));
        }
        ev.reset(RawEventKind::DoctypeDecl);
        self.read_name("doctype root name")?;
        {
            let pos = self.scanner.position();
            let name =
                std::str::from_utf8(&self.scratch).map_err(|_| XmlError::InvalidUtf8 { pos })?;
            ev.target_mut().push_str(name);
        }
        self.scanner.skip_whitespace()?;
        // Optional external id: SYSTEM "..." | PUBLIC "..." "..."
        if self.scanner.looking_at(b"SYSTEM")? {
            self.scanner.expect_str(b"SYSTEM", "SYSTEM keyword")?;
            self.scanner.skip_whitespace()?;
            self.skip_quoted("system literal")?;
            self.scanner.skip_whitespace()?;
        } else if self.scanner.looking_at(b"PUBLIC")? {
            self.scanner.expect_str(b"PUBLIC", "PUBLIC keyword")?;
            self.scanner.skip_whitespace()?;
            self.skip_quoted("public literal")?;
            self.scanner.skip_whitespace()?;
            self.skip_quoted("system literal")?;
            self.scanner.skip_whitespace()?;
        }
        if self.scanner.peek()? == Some(b'[') {
            self.scanner.next_byte()?;
            self.read_internal_subset()?;
            let pos = self.scanner.position();
            let subset =
                std::str::from_utf8(&self.aux).map_err(|_| XmlError::InvalidUtf8 { pos })?;
            ev.text_mut().push_str(subset);
            ev.set_has_internal_subset(true);
        }
        self.scanner.skip_whitespace()?;
        self.scanner
            .expect_byte(b'>', "`>` closing the DOCTYPE declaration")?;
        Ok(())
    }

    /// Reads the internal DTD subset into `self.aux` up to the matching
    /// `]`, honouring quoted literals and comments so `]` inside them does
    /// not terminate the subset.
    fn read_internal_subset(&mut self) -> Result<()> {
        self.aux.clear();
        loop {
            let b = self
                .scanner
                .peek()?
                .ok_or_else(|| XmlError::UnexpectedEof {
                    expected: "`]` closing the internal DTD subset",
                    pos: self.scanner.position(),
                })?;
            match b {
                b']' => {
                    self.scanner.next_byte()?;
                    return Ok(());
                }
                b'"' | b'\'' => {
                    self.scanner.next_byte()?;
                    self.aux.push(b);
                    let delim = [b];
                    self.scanner
                        .read_until(&delim, &mut self.aux, "closing quote")?;
                    self.aux.push(b);
                }
                b'<' if self.scanner.looking_at(b"<!--")? => {
                    self.scanner.expect_str(b"<!--", "comment")?;
                    self.aux.extend_from_slice(b"<!--");
                    self.scanner
                        .read_until(b"-->", &mut self.aux, "end of comment")?;
                    self.aux.extend_from_slice(b"-->");
                }
                _ => {
                    self.scanner.next_byte()?;
                    self.aux.push(b);
                }
            }
        }
    }

    fn skip_quoted(&mut self, what: &'static str) -> Result<()> {
        let quote = match self.scanner.peek()? {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.syntax(format!("expected quoted {what}"))),
        };
        self.scanner.next_byte()?;
        self.scratch.clear();
        let delim = [quote];
        self.scanner
            .read_until(&delim, &mut self.scratch, "closing quote")?;
        Ok(())
    }

    /// Reads a name token into `self.scratch`.
    fn read_name(&mut self, what: &'static str) -> Result<()> {
        match self.scanner.peek()? {
            Some(b) if is_name_start(b) => {}
            Some(_) => return Err(self.syntax(format!("invalid {what}"))),
            None => {
                return Err(XmlError::UnexpectedEof {
                    expected: what,
                    pos: self.scanner.position(),
                })
            }
        }
        self.scratch.clear();
        self.scanner.read_while(is_name_char, &mut self.scratch)
    }

    /// Reads a name token and interns it — no allocation once the name has
    /// been seen before. In bounded-interner mode a new name past the cap
    /// yields [`SymbolTable::OVERFLOW`]; the literal name stays in
    /// `self.scratch` for the caller to carry out of band.
    fn intern_name(&mut self, what: &'static str) -> Result<Symbol> {
        self.read_name(what)?;
        let pos = self.scanner.position();
        let name = std::str::from_utf8(&self.scratch).map_err(|_| XmlError::InvalidUtf8 { pos })?;
        Ok(match self.config.max_symbols {
            None => self.symbols.intern(name),
            Some(cap) => self.symbols.intern_bounded(name, cap),
        })
    }

    /// The name in `self.scratch` as UTF-8 (already validated by
    /// [`ReaderCore::intern_name`]).
    fn scratch_name(&self) -> &str {
        std::str::from_utf8(&self.scratch).expect("scratch validated by intern_name")
    }

    /// Locates the `>` closing the markup at the current `<`, growing the
    /// window as needed, and reports whether the probe flagged dirty
    /// content (stray `<` or `&` inside the tag). `None` means the input
    /// ends first — the byte-at-a-time path takes over and reports the
    /// exact error.
    fn locate_tag_end(&mut self) -> Result<Option<(usize, bool)>> {
        loop {
            if let TagProbe::Found { rel_end, dirty } = self.scanner.probe_tag() {
                return Ok(Some((rel_end, dirty)));
            }
            if !self.scanner.fill_more()? {
                return Ok(None);
            }
        }
    }

    /// Attempts to parse the start tag at the current `<` entirely from
    /// the prescanned window: the quote-parity walk finds the closing
    /// `>`, the whole tag is validated from the slice, and only then is
    /// it consumed in a single span. Returns `Ok(false)` with the scanner
    /// untouched on *any* anomaly — malformed syntax, `&` or stray `<`
    /// inside the tag, a duplicate attribute, invalid UTF-8, the bounded
    /// interner, the epilog state — so the byte-at-a-time path re-parses
    /// and produces byte-identical events and error positions.
    fn try_fast_start_tag(&mut self, ev: &mut RawEvent) -> Result<bool> {
        if self.state == State::Epilog || self.config.max_symbols.is_some() {
            return Ok(false);
        }
        // `dirty` — a `&` anywhere in the tag (a value needing unescaping)
        // or a `<` after the opening one (a well-formedness error) — comes
        // straight from the probe's lanes, so the value loop below never
        // has to inspect value bytes at all.
        let Some((end, dirty)) = self.locate_tag_end()? else {
            return Ok(false);
        };
        if dirty {
            return Ok(false);
        }
        let Ok(tag) = std::str::from_utf8(&self.scanner.window()[..end + 1]) else {
            return Ok(false);
        };
        let bytes = tag.as_bytes();
        let mut i = 1;
        if i >= end || !is_name_start(bytes[i]) {
            return Ok(false);
        }
        let name_start = i;
        while i < end && is_name_char(bytes[i]) {
            i += 1;
        }
        let name = intern_cached(&mut self.name_cache, &mut self.symbols, &tag[name_start..i]);
        ev.reset(RawEventKind::StartElement);
        ev.set_name(name);
        let mut empty = false;
        loop {
            let ws_start = i;
            while i < end && matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n') {
                i += 1;
            }
            if i == end {
                break;
            }
            if bytes[i] == b'/' {
                if i + 1 != end {
                    return Ok(false);
                }
                empty = true;
                break;
            }
            if i == ws_start || !is_name_start(bytes[i]) {
                // Attribute without preceding whitespace, or junk: the
                // slow path reports the precise syntax error.
                return Ok(false);
            }
            let an_start = i;
            while i < end && is_name_char(bytes[i]) {
                i += 1;
            }
            let attr_name =
                intern_cached(&mut self.name_cache, &mut self.symbols, &tag[an_start..i]);
            while i < end && matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n') {
                i += 1;
            }
            if i >= end || bytes[i] != b'=' {
                return Ok(false);
            }
            i += 1;
            while i < end && matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n') {
                i += 1;
            }
            if i >= end || !matches!(bytes[i], b'"' | b'\'') {
                return Ok(false);
            }
            let quote = bytes[i];
            i += 1;
            let v_start = i;
            // The closing quote is the only byte that matters: `<` and
            // `&` were ruled out tag-wide above, and a quoted `>` cannot
            // reach here because `end` already honours quote parity.
            let Some(v_len) = crate::scan::find_byte(&bytes[v_start..end], quote) else {
                return Ok(false);
            };
            i = v_start + v_len + 1;
            ev.push_attr(attr_name)
                .push_str(&tag[v_start..v_start + v_len]);
            let (new, before) = ev.attributes().split_last().expect("attribute just pushed");
            if before.iter().any(|a| a.name == new.name) {
                return Ok(false);
            }
        }
        self.scanner.consume(end + 1);
        self.enter_element(name, "")?;
        if empty {
            self.pending_end = Some(name);
        }
        Ok(true)
    }

    /// The end-tag counterpart of [`ReaderCore::try_fast_start_tag`]:
    /// validates `</name >` wholly from the window slice, then consumes
    /// it in one span. Stack matching runs *after* the consume, mirroring
    /// the slow path's order so mismatch errors carry identical positions.
    fn try_fast_end_tag(&mut self, ev: &mut RawEvent) -> Result<bool> {
        if self.config.max_symbols.is_some() {
            return Ok(false);
        }
        let Some((end, dirty)) = self.locate_tag_end()? else {
            return Ok(false);
        };
        if dirty {
            return Ok(false);
        }
        let Ok(tag) = std::str::from_utf8(&self.scanner.window()[..end + 1]) else {
            return Ok(false);
        };
        let bytes = tag.as_bytes();
        debug_assert!(bytes.starts_with(b"</"));
        let mut i = 2;
        if i >= end || !is_name_start(bytes[i]) {
            return Ok(false);
        }
        let name_start = i;
        while i < end && is_name_char(bytes[i]) {
            i += 1;
        }
        let name_end = i;
        while i < end && matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n') {
            i += 1;
        }
        if i != end {
            return Ok(false);
        }
        // The overwhelmingly common end tag closes the innermost open
        // element: a byte comparison against its known name replaces the
        // hash lookup entirely. Anything else (mismatch, fragment close)
        // interns normally.
        let name = match self.stack.last() {
            Some(&open) if self.symbols.name(open).as_bytes() == &bytes[name_start..name_end] => {
                open
            }
            _ => self.symbols.intern(&tag[name_start..name_end]),
        };
        self.scanner.consume(end + 1);
        match self.stack.last() {
            Some(&open) if open == name => {
                ev.reset(RawEventKind::EndElement);
                ev.set_name(name);
                self.leave_element();
                Ok(true)
            }
            Some(&open) => {
                let message = format!(
                    "mismatched end tag: expected </{}>, found </{}>",
                    self.symbols.name(open),
                    self.symbols.name(name)
                );
                Err(self.wf(message))
            }
            None if self.config.fragment => {
                // Closes an element opened before this fragment; the
                // merger verifies the name against the previous shard.
                ev.reset(RawEventKind::EndElement);
                ev.set_name(name);
                Ok(true)
            }
            None => {
                let message = format!(
                    "end tag </{}> with no open element",
                    self.symbols.name(name)
                );
                Err(self.wf(message))
            }
        }
    }

    fn parse_start_tag(&mut self, ev: &mut RawEvent) -> Result<()> {
        if self.state == State::Epilog {
            return Err(self.wf("multiple root elements"));
        }
        self.scanner.expect_byte(b'<', "`<`")?;
        let name = self.intern_name("element name")?;
        ev.reset(RawEventKind::StartElement);
        ev.set_name(name);
        if name == SymbolTable::OVERFLOW {
            // Bounded-interner overflow: the literal name rides in the
            // event's target buffer and on the overflow stack.
            ev.target_mut().push_str(self.scratch_name());
        }
        loop {
            let had_ws = self.scanner.skip_whitespace()? > 0;
            match self.scanner.peek()? {
                Some(b'>') => {
                    self.scanner.next_byte()?;
                    self.enter_element(name, ev.target())?;
                    return Ok(());
                }
                Some(b'/') => {
                    self.scanner.next_byte()?;
                    self.scanner
                        .expect_byte(b'>', "`>` after `/` in empty-element tag")?;
                    self.enter_element(name, ev.target())?;
                    self.pending_end = Some(name);
                    return Ok(());
                }
                Some(b) if is_name_start(b) => {
                    if !had_ws {
                        return Err(self.syntax("whitespace required before attribute"));
                    }
                    let attr_name = self.intern_name("attribute name")?;
                    if attr_name == SymbolTable::OVERFLOW {
                        // `scratch` is about to be reused for the value;
                        // park the literal attribute name in `aux`.
                        self.aux.clear();
                        self.aux.extend_from_slice(&self.scratch);
                    }
                    self.scanner.skip_whitespace()?;
                    self.scanner.expect_byte(b'=', "`=` after attribute name")?;
                    self.scanner.skip_whitespace()?;
                    self.read_attr_value_raw()?;
                    let pos = self.scanner.position();
                    let raw = std::str::from_utf8(&self.scratch)
                        .map_err(|_| XmlError::InvalidUtf8 { pos })?;
                    if raw.contains('<') {
                        return Err(XmlError::WellFormedness {
                            message: "`<` is not allowed in attribute values".to_string(),
                            pos,
                        });
                    }
                    let slot = if attr_name == SymbolTable::OVERFLOW {
                        let parked = std::str::from_utf8(&self.aux)
                            .map_err(|_| XmlError::InvalidUtf8 { pos })?;
                        ev.push_attr_named(parked)
                    } else {
                        ev.push_attr(attr_name)
                    };
                    unescape_into(raw, pos, slot)?;
                    let live = ev.attributes();
                    let (new, before) = live.split_last().expect("attribute just pushed");
                    let duplicate = before.iter().any(|a| {
                        a.name == new.name
                            && (new.name != SymbolTable::OVERFLOW
                                || a.overflow_name == new.overflow_name)
                    });
                    if duplicate {
                        let rendered = new.name_str(&self.symbols).to_string();
                        return Err(self.wf(format!("duplicate attribute `{rendered}`")));
                    }
                }
                Some(_) => return Err(self.syntax("malformed start tag")),
                None => {
                    return Err(XmlError::UnexpectedEof {
                        expected: "`>` closing the start tag",
                        pos: self.scanner.position(),
                    })
                }
            }
        }
    }

    /// Reads a quoted attribute value's raw (still-escaped) bytes into
    /// `self.scratch`, consuming both quotes.
    fn read_attr_value_raw(&mut self) -> Result<()> {
        let quote = match self.scanner.peek()? {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => return Err(self.syntax("attribute value must be quoted")),
            None => {
                return Err(XmlError::UnexpectedEof {
                    expected: "attribute value",
                    pos: self.scanner.position(),
                })
            }
        };
        self.scanner.next_byte()?;
        self.scratch.clear();
        let delim = [quote];
        self.scanner
            .read_until(&delim, &mut self.scratch, "closing attribute quote")
    }

    fn parse_end_tag(&mut self, ev: &mut RawEvent) -> Result<()> {
        self.scanner.expect_str(b"</", "end tag")?;
        let name = self.intern_name("element name in end tag")?;
        self.scanner.skip_whitespace()?;
        self.scanner.expect_byte(b'>', "`>` closing the end tag")?;
        let matches_open = match self.stack.last() {
            // Two overflow names match only if the literal names agree.
            Some(&open) if open == name => {
                name != SymbolTable::OVERFLOW
                    || self.overflow_stack.last().map(String::as_str) == Some(self.scratch_name())
            }
            Some(_) => false,
            None if self.config.fragment => {
                // Closes an element opened before this fragment; the merger
                // verifies the name against the previous shard's stack.
                ev.reset(RawEventKind::EndElement);
                ev.set_name(name);
                if name == SymbolTable::OVERFLOW {
                    ev.target_mut().push_str(self.scratch_name());
                }
                return Ok(());
            }
            None => {
                return Err(self.wf(format!(
                    "end tag </{}> with no open element",
                    self.scratch_name()
                )))
            }
        };
        if !matches_open {
            let open = *self.stack.last().expect("checked above");
            let open_name = if open == SymbolTable::OVERFLOW {
                self.overflow_stack.last().expect("overflow name on stack")
            } else {
                self.symbols.name(open)
            };
            return Err(self.wf(format!(
                "mismatched end tag: expected </{}>, found </{}>",
                open_name,
                self.scratch_name()
            )));
        }
        ev.reset(RawEventKind::EndElement);
        ev.set_name(name);
        if name == SymbolTable::OVERFLOW {
            ev.target_mut().push_str(self.scratch_name());
        }
        self.leave_element();
        Ok(())
    }

    fn enter_element(&mut self, name: Symbol, overflow_name: &str) -> Result<()> {
        if self.stack.len() >= self.config.max_depth {
            return Err(self.wf(format!(
                "element nesting deeper than the configured limit of {}",
                self.config.max_depth
            )));
        }
        if self.state == State::Prolog {
            self.state = State::InRoot;
        }
        if name == SymbolTable::OVERFLOW {
            let mut owned = self.spare_overflow.pop().unwrap_or_default();
            owned.push_str(overflow_name);
            self.overflow_stack.push(owned);
        }
        self.stack.push(name);
        Ok(())
    }

    fn leave_element(&mut self) {
        if self.stack.pop() == Some(SymbolTable::OVERFLOW) {
            let mut owned = self.overflow_stack.pop().expect("overflow name on stack");
            owned.clear();
            self.spare_overflow.push(owned);
        }
        if self.stack.is_empty() && self.state == State::InRoot && !self.config.fragment {
            self.state = State::Epilog;
        }
    }

    /// Parses a maximal run of character data into `ev`, merging adjacent
    /// CDATA sections and resolving entity references.
    ///
    /// With `allow_borrow`, a run that (a) ends at a `<` inside the
    /// scanner's buffered window with enough lookahead to rule out a
    /// following CDATA section (or at EOF), (b) contains no entity or
    /// character references, and (c) needs no CDATA merging is **not
    /// copied**: its window range lands in `self.borrowed_text` and `ev`'s
    /// text stays empty. [`XmlReader::view`] serves the bytes in place.
    fn parse_text(&mut self, ev: &mut RawEvent, allow_borrow: bool) -> Result<()> {
        ev.reset(RawEventKind::Text);
        if allow_borrow {
            let run_start_abs = self.scanner.position().offset;
            // Lookahead 9 = b"<![CDATA[".len(): the CDATA probe below must
            // not refill (a refill would move the borrowed bytes).
            if let Some(range) = self.scanner.borrow_run(b'<', 9)? {
                let pos = self.scanner.position();
                // The prescan's `&` lane answers the reference probe
                // without re-reading the run (UTF-8 still needs one pass).
                let has_references = self.scanner.amp_between(run_start_abs, pos.offset);
                std::str::from_utf8(self.scanner.borrowed(range))
                    .map_err(|_| XmlError::InvalidUtf8 { pos })?;
                if has_references {
                    // Entity references force materialisation; unescape
                    // into the recycled buffer and continue the owned loop
                    // (more segments may follow).
                    self.tel.entity_unescapes(1);
                    ev.set_text_synthetic(true);
                    let raw =
                        std::str::from_utf8(self.scanner.borrowed(range)).expect("validated above");
                    unescape_into(raw, pos, ev.text_mut())?;
                } else if self.scanner.looking_at(b"<![CDATA[")? {
                    // A CDATA section merges into this run: spill the
                    // borrowed prefix and continue the owned loop.
                    let raw =
                        std::str::from_utf8(self.scanner.borrowed(range)).expect("validated above");
                    ev.text_mut().push_str(raw);
                } else if self.scanner.peek()?.is_none() && !self.config.fragment {
                    return Err(XmlError::UnexpectedEof {
                        expected: "closing tags for open elements",
                        pos: self.scanner.position(),
                    });
                } else {
                    // The common case: a literal text run delivered as a
                    // borrowed slice of the scanner window.
                    self.tel.borrowed_text_runs(1);
                    self.borrowed_text = Some(range);
                    return Ok(());
                }
            }
        }
        loop {
            match self.scanner.peek()? {
                Some(b'<') => {
                    if self.scanner.looking_at(b"<![CDATA[")? {
                        self.scanner.expect_str(b"<![CDATA[", "CDATA section")?;
                        self.aux.clear();
                        self.scanner
                            .read_until(b"]]>", &mut self.aux, "`]]>` ending CDATA")?;
                        let pos = self.scanner.position();
                        let chunk = std::str::from_utf8(&self.aux)
                            .map_err(|_| XmlError::InvalidUtf8 { pos })?;
                        ev.text_mut().push_str(chunk);
                        ev.set_text_synthetic(true);
                    } else {
                        break;
                    }
                }
                Some(_) => {
                    self.scratch.clear();
                    self.scanner.read_until_byte(b'<', &mut self.scratch)?;
                    let pos = self.scanner.position();
                    let raw = std::str::from_utf8(&self.scratch)
                        .map_err(|_| XmlError::InvalidUtf8 { pos })?;
                    self.tel.copied_text_runs(1);
                    if raw.contains('&') {
                        self.tel.entity_unescapes(1);
                        ev.set_text_synthetic(true);
                    }
                    unescape_into(raw, pos, ev.text_mut())?;
                }
                None => {
                    if self.config.fragment {
                        // A fragment may end right after a text run (the
                        // next chunk starts at a tag), so this run is
                        // complete: deliver it.
                        return Ok(());
                    }
                    return Err(XmlError::UnexpectedEof {
                        expected: "closing tags for open elements",
                        pos: self.scanner.position(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Convenience: parses a complete document from a string into an event list.
/// Intended for tests and small inputs.
#[allow(deprecated)] // the owned-event API is this helper's whole point
pub fn parse_to_events(input: &str) -> Result<Vec<XmlEvent>> {
    let mut reader = XmlReader::new(input.as_bytes());
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event()?;
        let done = ev == XmlEvent::EndDocument;
        events.push(ev);
        if done {
            return Ok(events);
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attribute;

    fn events(input: &str) -> Vec<XmlEvent> {
        parse_to_events(input).expect("parse failed")
    }

    fn kinds(input: &str) -> Vec<&'static str> {
        events(input).iter().map(|e| e.kind()).collect()
    }

    #[test]
    fn minimal_document() {
        assert_eq!(
            kinds("<a/>"),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn nested_elements_and_text() {
        let evs = events("<a><b>hi</b><c/></a>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartDocument,
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![]
                },
                XmlEvent::StartElement {
                    name: "b".into(),
                    attributes: vec![]
                },
                XmlEvent::Text("hi".into()),
                XmlEvent::EndElement { name: "b".into() },
                XmlEvent::StartElement {
                    name: "c".into(),
                    attributes: vec![]
                },
                XmlEvent::EndElement { name: "c".into() },
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::EndDocument,
            ]
        );
    }

    #[test]
    fn attributes_parsed_and_unescaped() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[1] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], Attribute::new("x", "1"));
                assert_eq!(attributes[1], Attribute::new("y", "two & three"));
            }
            other => panic!("expected start element, got {other}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse_to_events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err, XmlError::WellFormedness { .. }), "{err}");
    }

    #[test]
    fn text_entities_unescaped() {
        let evs = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(evs[2], XmlEvent::Text("1 < 2 && 3 > 2".into()));
    }

    #[test]
    fn char_refs_in_text() {
        let evs = events("<a>&#65;&#x42;</a>");
        assert_eq!(evs[2], XmlEvent::Text("AB".into()));
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse_to_events("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { ref name, .. } if name == "nope"));
    }

    #[test]
    fn cdata_merged_with_text() {
        let evs = events("<a>one <![CDATA[<raw> & ]]>two</a>");
        assert_eq!(evs[2], XmlEvent::Text("one <raw> & two".into()));
    }

    #[test]
    fn comments_skipped_by_default() {
        let evs = events("<a><!-- hello -->x</a>");
        assert_eq!(evs[2], XmlEvent::Text("x".into()));
    }

    #[test]
    #[allow(deprecated)]
    fn comments_emitted_when_configured() {
        let mut reader = XmlReader::with_config(
            "<a><!--c--></a>".as_bytes(),
            ReaderConfig {
                emit_comments: true,
                ..ReaderConfig::default()
            },
        );
        let mut found = false;
        loop {
            match reader.next_event().unwrap() {
                XmlEvent::Comment(c) => {
                    assert_eq!(c, "c");
                    found = true;
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        assert!(found);
    }

    #[test]
    fn xml_declaration_skipped() {
        assert_eq!(
            kinds("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>"),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn doctype_with_internal_subset() {
        let evs = events("<!DOCTYPE bib [<!ELEMENT bib (book)*>]><bib/>");
        match &evs[1] {
            XmlEvent::DoctypeDecl {
                name,
                internal_subset,
            } => {
                assert_eq!(name, "bib");
                assert_eq!(internal_subset.as_deref(), Some("<!ELEMENT bib (book)*>"));
            }
            other => panic!("expected doctype, got {other}"),
        }
    }

    #[test]
    fn doctype_system_id() {
        let evs = events(r#"<!DOCTYPE bib SYSTEM "bib.dtd"><bib/>"#);
        assert!(
            matches!(&evs[1], XmlEvent::DoctypeDecl { name, internal_subset: None } if name == "bib")
        );
    }

    #[test]
    fn doctype_subset_with_bracket_in_quotes() {
        let evs = events(r#"<!DOCTYPE a [<!ENTITY x "]">]><a/>"#);
        match &evs[1] {
            XmlEvent::DoctypeDecl {
                internal_subset, ..
            } => {
                assert_eq!(internal_subset.as_deref(), Some(r#"<!ENTITY x "]">"#));
            }
            other => panic!("expected doctype, got {other}"),
        }
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse_to_events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::WellFormedness { .. }));
    }

    #[test]
    fn unclosed_root_rejected() {
        let err = parse_to_events("<a><b></b>").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = parse_to_events("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::WellFormedness { .. }));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(parse_to_events("hello<a/>").is_err());
        assert!(parse_to_events("<a/>hello").is_err());
    }

    #[test]
    fn whitespace_around_root_ok() {
        assert_eq!(
            kinds("  \n<a/>\n  "),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn unquoted_attribute_rejected() {
        assert!(parse_to_events("<a x=1/>").is_err());
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(parse_to_events(r#"<a x="a<b"/>"#).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn depth_limit_enforced() {
        let mut input = String::new();
        for _ in 0..50 {
            input.push_str("<d>");
        }
        let mut reader = XmlReader::with_config(
            input.as_bytes(),
            ReaderConfig {
                max_depth: 10,
                ..ReaderConfig::default()
            },
        );
        let mut err = None;
        loop {
            match reader.next_event() {
                Ok(XmlEvent::EndDocument) => break,
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(XmlError::WellFormedness { .. })));
    }

    #[test]
    fn unicode_content() {
        let evs = events("<a>grüße 💡</a>");
        assert_eq!(evs[2], XmlEvent::Text("grüße 💡".into()));
    }

    #[test]
    fn unicode_element_names() {
        let evs = events("<bücher><büch/></bücher>");
        assert_eq!(evs[1].element_name(), Some("bücher"));
    }

    #[test]
    fn whitespace_in_end_tag() {
        assert_eq!(
            kinds("<a></a  >"),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn large_text_spanning_chunks() {
        let body = "y".repeat(100_000);
        let input = format!("<a>{body}</a>");
        let evs = events(&input);
        assert_eq!(evs[2], XmlEvent::Text(body));
    }

    #[test]
    fn empty_document_is_error() {
        let err = parse_to_events("").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    #[allow(deprecated)]
    fn pi_emitted_when_configured() {
        let mut reader = XmlReader::with_config(
            "<a><?target some data?></a>".as_bytes(),
            ReaderConfig {
                emit_processing_instructions: true,
                ..ReaderConfig::default()
            },
        );
        let mut found = false;
        loop {
            match reader.next_event().unwrap() {
                XmlEvent::ProcessingInstruction { target, data } => {
                    assert_eq!(target, "target");
                    assert_eq!(data, "some data");
                    found = true;
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        assert!(found);
    }

    // ----- bounded-interner mode -----

    /// Parses with a symbol cap and re-serialises via the raw path,
    /// checking output identity and that the table stayed capped.
    fn bounded_round_trip(doc: &str, cap: usize) -> (String, usize) {
        use crate::writer::XmlWriter;
        let mut reader = XmlReader::with_config(
            doc.as_bytes(),
            ReaderConfig {
                max_symbols: Some(cap),
                ..ReaderConfig::default()
            },
        );
        let mut writer = XmlWriter::new(Vec::new());
        let mut ev = RawEvent::new();
        while reader.next_into(&mut ev).unwrap() {
            writer.write_raw_event(reader.symbols(), &ev).unwrap();
        }
        writer.finish().unwrap();
        let out = String::from_utf8(writer.into_inner()).unwrap();
        (out, reader.symbols().len())
    }

    #[test]
    fn bounded_interner_caps_table_and_preserves_output() {
        // 2 pseudo-symbols + cap 4 ⇒ only `a` and `b` intern; `c`, `d` and
        // the attribute names overflow to per-event strings.
        let doc = r#"<a><b/><c x="1" y="2">t</c><d><c/></d></a>"#;
        let (out, len) = bounded_round_trip(doc, 4);
        assert_eq!(out, r#"<a><b></b><c x="1" y="2">t</c><d><c></c></d></a>"#);
        assert_eq!(len, 4, "table must not grow past the cap");
    }

    #[test]
    fn bounded_interner_distinguishes_overflow_names() {
        // Mismatched tags must still be detected when both names overflow.
        let mut reader = XmlReader::with_config(
            "<a><b><uno></dos></b></a>".as_bytes(),
            ReaderConfig {
                max_symbols: Some(4),
                ..ReaderConfig::default()
            },
        );
        let mut ev = RawEvent::new();
        let err = loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => panic!("expected mismatch error"),
                Err(e) => break e,
            }
        };
        assert!(
            err.to_string().contains("expected </uno>, found </dos>"),
            "{err}"
        );
    }

    #[test]
    fn bounded_interner_duplicate_overflow_attrs_rejected() {
        let mut reader = XmlReader::with_config(
            r#"<a zzz="1" zzz="2"/>"#.as_bytes(),
            ReaderConfig {
                max_symbols: Some(3),
                ..ReaderConfig::default()
            },
        );
        let mut ev = RawEvent::new();
        let err = loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => panic!("expected duplicate error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("duplicate attribute"), "{err}");
    }

    #[test]
    fn bounded_interner_matches_unbounded_output() {
        let doc = "<root><x1 a=\"v\"><y>text</y></x1><x2/><x1/></root>";
        let (bounded, _) = bounded_round_trip(doc, 2);
        let (unbounded, _) = bounded_round_trip(doc, usize::MAX);
        assert_eq!(bounded, unbounded);
    }

    // ----- fragment mode -----

    fn fragment_events(input: &str) -> Vec<XmlEvent> {
        let mut reader = XmlReader::with_config(
            input.as_bytes(),
            ReaderConfig {
                fragment: true,
                ..ReaderConfig::default()
            },
        );
        let mut ev = RawEvent::new();
        let mut out = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            out.push(ev.to_xml_event(reader.symbols()));
        }
        out
    }

    #[test]
    fn fragment_allows_sibling_roots_and_top_level_text() {
        let evs = fragment_events("<a/>between<b/>");
        assert_eq!(
            evs.iter().map(|e| e.kind()).collect::<Vec<_>>(),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "text",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn fragment_allows_unmatched_closes_and_leaves_opens() {
        // `</x></y>` close elements opened before the fragment; `<z>` stays
        // open at the end.
        let mut reader = XmlReader::with_config(
            "</x></y><z><w/>".as_bytes(),
            ReaderConfig {
                fragment: true,
                ..ReaderConfig::default()
            },
        );
        let mut ev = RawEvent::new();
        let mut kinds = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            kinds.push(ev.to_xml_event(reader.symbols()).kind());
        }
        assert_eq!(
            kinds,
            vec![
                "start-document",
                "end-element",
                "end-element",
                "start-element",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
        let opens: Vec<&str> = reader
            .open_elements()
            .iter()
            .map(|&s| reader.symbols().name(s))
            .collect();
        assert_eq!(opens, vec!["z"], "z is still open at fragment end");
    }

    #[test]
    fn fragment_still_rejects_local_mismatch() {
        let mut reader = XmlReader::with_config(
            "<a></b>".as_bytes(),
            ReaderConfig {
                fragment: true,
                ..ReaderConfig::default()
            },
        );
        let mut ev = RawEvent::new();
        let err = loop {
            match reader.next_into(&mut ev) {
                Ok(true) => {}
                Ok(false) => panic!("expected mismatch error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, XmlError::WellFormedness { .. }), "{err}");
    }

    // ----- raw (interned, recycled) API -----

    #[test]
    fn next_into_recycles_one_event() {
        let doc = "<bib><book year=\"1994\"><title>T &amp; U</title></book><book/></bib>";
        let mut reader = XmlReader::new(doc.as_bytes());
        let mut ev = RawEvent::new();
        let mut rendered = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            rendered.push(ev.to_xml_event(reader.symbols()));
        }
        assert_eq!(rendered, parse_to_events(doc).unwrap());
        // Exhausted: further calls keep returning false.
        assert!(!reader.next_into(&mut ev).unwrap());
    }

    #[test]
    fn raw_symbols_are_stable_per_name() {
        let doc = "<a><b/><b/><a2/></a>";
        let mut reader = XmlReader::new(doc.as_bytes());
        let mut ev = RawEvent::new();
        let mut b_syms = Vec::new();
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement && reader.symbols().name(ev.name()) == "b" {
                b_syms.push(ev.name());
            }
        }
        assert_eq!(b_syms.len(), 2);
        assert_eq!(b_syms[0], b_syms[1], "same name, same symbol");
    }

    #[test]
    fn seeded_symbols_are_shared() {
        let mut table = flux_symbols::SymbolTable::new();
        let book = table.intern("book");
        let mut reader =
            XmlReader::with_symbols("<book/>".as_bytes(), ReaderConfig::default(), table);
        let mut ev = RawEvent::new();
        let mut seen = None;
        while reader.next_into(&mut ev).unwrap() {
            if ev.kind() == RawEventKind::StartElement {
                seen = Some(ev.name());
            }
        }
        assert_eq!(seen, Some(book), "stream symbol coincides with seed symbol");
    }

    // ----- borrowed view API -----

    /// The advance/view stream must equal the owned stream event for
    /// event, across borrowed text runs, entities, CDATA merges and
    /// attribute-heavy tags.
    #[test]
    fn advance_view_matches_owned_events() {
        let long_run = "literal text without references ".repeat(20);
        let doc = format!(
            "<bib><book year=\"1994\" lang=\"en\">{long_run}</book>\
             <b>a &amp; b<![CDATA[raw <x>]]> tail</b>  <c/>trailer</bib>"
        );
        let expected = parse_to_events(&doc).unwrap();
        let mut reader = XmlReader::new(doc.as_bytes());
        let mut got = Vec::new();
        while reader.advance().unwrap() {
            got.push(reader.view().to_xml_event(reader.symbols()));
        }
        assert_eq!(got, expected);
    }

    /// A text run larger than the scanner chunk cannot be borrowed; the
    /// fallback path must still deliver it whole.
    #[test]
    fn view_text_run_spanning_refills_falls_back() {
        let body = "z".repeat(100_000);
        let doc = format!("<a>{body}</a>");
        let mut reader = XmlReader::new(doc.as_bytes());
        let mut text = None;
        while reader.advance().unwrap() {
            if reader.view().kind() == RawEventKind::Text {
                text = Some(reader.view().text().to_string());
            }
        }
        assert_eq!(text.as_deref(), Some(body.as_str()));
    }

    #[test]
    #[allow(deprecated)]
    fn mixed_raw_and_owned_pulls_agree() {
        let doc = "<a><b>x</b><c k=\"v\"/></a>";
        let mut reader = XmlReader::new(doc.as_bytes());
        let mut ev = RawEvent::new();
        assert!(reader.next_into(&mut ev).unwrap()); // start-document
        let owned = reader.next_event().unwrap(); // start a (owned API)
        assert_eq!(owned.element_name(), Some("a"));
        assert!(reader.next_into(&mut ev).unwrap()); // start b (raw API)
        assert_eq!(reader.symbols().name(ev.name()), "b");
    }
}
