//! A streaming, pull-based XML parser.
//!
//! [`XmlReader`] turns a byte stream into a sequence of [`XmlEvent`]s without
//! buffering the document: memory use is bounded by the largest single token,
//! which is what makes the FluXQuery runtime's memory guarantees meaningful.
//!
//! The reader checks well-formedness (tag balance, a single root element,
//! attribute uniqueness, entity definedness) but performs no validation —
//! validation against a DTD is layered on top by the `flux-xsax` crate.

use crate::error::{Position, Result, XmlError};
use crate::escape::unescape;
use crate::event::{Attribute, XmlEvent};
use crate::scanner::Scanner;
use std::io::Read;

/// Configuration for [`XmlReader`].
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Emit [`XmlEvent::Comment`] events (default: false — comments are skipped).
    pub emit_comments: bool,
    /// Emit [`XmlEvent::ProcessingInstruction`] events (default: false).
    pub emit_processing_instructions: bool,
    /// Hard limit on element nesting depth, to bound stack growth on
    /// adversarial input.
    pub max_depth: usize,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            emit_comments: false,
            emit_processing_instructions: false,
            max_depth: 10_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Before `StartDocument` has been emitted.
    Fresh,
    /// In the prolog: before the root element has opened.
    Prolog,
    /// Inside the root element.
    InRoot,
    /// After the root element closed, before `EndDocument`.
    Epilog,
    /// `EndDocument` emitted.
    Done,
}

/// Streaming pull parser over any [`Read`] source.
pub struct XmlReader<R: Read> {
    scanner: Scanner<R>,
    config: ReaderConfig,
    state: State,
    /// Names of currently open elements.
    stack: Vec<String>,
    /// Second half of an empty-element tag, emitted on the next call.
    pending_end: Option<String>,
    /// Scratch buffer reused between tokens.
    scratch: Vec<u8>,
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

impl<R: Read> XmlReader<R> {
    /// Creates a reader with default configuration.
    pub fn new(src: R) -> Self {
        Self::with_config(src, ReaderConfig::default())
    }

    /// Creates a reader with the given configuration.
    pub fn with_config(src: R, config: ReaderConfig) -> Self {
        XmlReader {
            scanner: Scanner::new(src),
            config,
            state: State::Fresh,
            stack: Vec::new(),
            pending_end: None,
            scratch: Vec::new(),
        }
    }

    /// Current input position (useful for error reporting in callers).
    pub fn position(&self) -> Position {
        self.scanner.position()
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            message: message.into(),
            pos: self.scanner.position(),
        }
    }

    fn wf(&self, message: impl Into<String>) -> XmlError {
        XmlError::WellFormedness {
            message: message.into(),
            pos: self.scanner.position(),
        }
    }

    /// Pulls the next event. After [`XmlEvent::EndDocument`], returns `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XmlEvent>> {
        if self.state == State::Done {
            return Ok(None);
        }
        self.next_event().map(Some)
    }

    /// Pulls the next event; calling after `EndDocument` is an error.
    pub fn next_event(&mut self) -> Result<XmlEvent> {
        if self.state == State::Fresh {
            self.state = State::Prolog;
            self.skip_bom()?;
            self.maybe_skip_xml_decl()?;
            return Ok(XmlEvent::StartDocument);
        }
        if let Some(name) = self.pending_end.take() {
            self.leave_element();
            return Ok(XmlEvent::EndElement { name });
        }
        loop {
            match self.state {
                State::Done => return Err(self.syntax("next_event called after end of document")),
                State::Prolog | State::Epilog => {
                    self.scanner.skip_whitespace()?;
                    match self.scanner.peek()? {
                        None => {
                            if self.state == State::Prolog {
                                return Err(XmlError::UnexpectedEof {
                                    expected: "root element",
                                    pos: self.scanner.position(),
                                });
                            }
                            self.state = State::Done;
                            return Ok(XmlEvent::EndDocument);
                        }
                        Some(b'<') => {
                            if let Some(ev) = self.parse_markup()? {
                                return Ok(ev);
                            }
                        }
                        Some(_) => {
                            return Err(self.wf(if self.state == State::Prolog {
                                "character data before the root element"
                            } else {
                                "character data after the root element"
                            }))
                        }
                    }
                }
                State::InRoot => match self.scanner.peek()? {
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            expected: "closing tags for open elements",
                            pos: self.scanner.position(),
                        })
                    }
                    Some(b'<') if !self.scanner.looking_at(b"<![CDATA[")? => {
                        if let Some(ev) = self.parse_markup()? {
                            return Ok(ev);
                        }
                    }
                    Some(_) => return self.parse_text(),
                },
                State::Fresh => unreachable!("handled above"),
            }
        }
    }

    fn skip_bom(&mut self) -> Result<()> {
        if self.scanner.looking_at(&[0xEF, 0xBB, 0xBF])? {
            self.scanner.expect_str(&[0xEF, 0xBB, 0xBF], "BOM")?;
        }
        Ok(())
    }

    fn maybe_skip_xml_decl(&mut self) -> Result<()> {
        if self.scanner.looking_at(b"<?xml")? {
            // Require whitespace after the target so `<?xml-stylesheet?>` is
            // treated as an ordinary PI.
            let slice = self.scanner.peek_slice(6)?;
            if slice.len() == 6 && !slice[5].is_ascii_whitespace() {
                return Ok(());
            }
            self.scratch.clear();
            self.scanner.expect_str(b"<?xml", "xml declaration")?;
            let mut scratch = std::mem::take(&mut self.scratch);
            let res = self
                .scanner
                .read_until(b"?>", &mut scratch, "end of xml declaration");
            self.scratch = scratch;
            res?;
        }
        Ok(())
    }

    /// Parses one `<...>` construct. Returns `None` when the construct was
    /// consumed silently (skipped comment/PI/doctype handling below).
    fn parse_markup(&mut self) -> Result<Option<XmlEvent>> {
        if self.scanner.looking_at(b"<!--")? {
            return self.parse_comment();
        }
        if self.scanner.looking_at(b"<![CDATA[")? {
            // Only valid inside the root; parse_text handles merging. Getting
            // here means CDATA appeared in the prolog or epilog.
            return Err(self.wf("CDATA section outside the root element"));
        }
        if self.scanner.looking_at(b"<!DOCTYPE")? {
            return self.parse_doctype().map(Some);
        }
        if self.scanner.looking_at(b"<?")? {
            return self.parse_pi();
        }
        if self.scanner.looking_at(b"</")? {
            return self.parse_end_tag().map(Some);
        }
        self.parse_start_tag().map(Some)
    }

    fn parse_comment(&mut self) -> Result<Option<XmlEvent>> {
        self.scanner.expect_str(b"<!--", "comment")?;
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = self
            .scanner
            .read_until(b"-->", &mut scratch, "end of comment `-->`");
        let out = res.and_then(|()| {
            String::from_utf8(scratch.clone()).map_err(|_| XmlError::InvalidUtf8 {
                pos: self.scanner.position(),
            })
        });
        self.scratch = scratch;
        let text = out?;
        if self.config.emit_comments {
            Ok(Some(XmlEvent::Comment(text)))
        } else {
            Ok(None)
        }
    }

    fn parse_pi(&mut self) -> Result<Option<XmlEvent>> {
        self.scanner.expect_str(b"<?", "processing instruction")?;
        let target = self.parse_name("processing instruction target")?;
        self.scanner.skip_whitespace()?;
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = self
            .scanner
            .read_until(b"?>", &mut scratch, "end of processing instruction");
        let out = res.and_then(|()| {
            String::from_utf8(scratch.clone()).map_err(|_| XmlError::InvalidUtf8 {
                pos: self.scanner.position(),
            })
        });
        self.scratch = scratch;
        let data = out?;
        if target.eq_ignore_ascii_case("xml") {
            // XML declaration not at document start.
            return Err(self.syntax("xml declaration is only allowed at the start of the document"));
        }
        if self.config.emit_processing_instructions {
            Ok(Some(XmlEvent::ProcessingInstruction { target, data }))
        } else {
            Ok(None)
        }
    }

    fn parse_doctype(&mut self) -> Result<XmlEvent> {
        if self.state != State::Prolog {
            return Err(self.wf("DOCTYPE declaration after the root element has started"));
        }
        self.scanner
            .expect_str(b"<!DOCTYPE", "DOCTYPE declaration")?;
        if self.scanner.skip_whitespace()? == 0 {
            return Err(self.syntax("whitespace required after <!DOCTYPE"));
        }
        let name = self.parse_name("doctype root name")?;
        self.scanner.skip_whitespace()?;
        // Optional external id: SYSTEM "..." | PUBLIC "..." "..."
        if self.scanner.looking_at(b"SYSTEM")? {
            self.scanner.expect_str(b"SYSTEM", "SYSTEM keyword")?;
            self.scanner.skip_whitespace()?;
            self.skip_quoted("system literal")?;
            self.scanner.skip_whitespace()?;
        } else if self.scanner.looking_at(b"PUBLIC")? {
            self.scanner.expect_str(b"PUBLIC", "PUBLIC keyword")?;
            self.scanner.skip_whitespace()?;
            self.skip_quoted("public literal")?;
            self.scanner.skip_whitespace()?;
            self.skip_quoted("system literal")?;
            self.scanner.skip_whitespace()?;
        }
        let internal_subset = if self.scanner.peek()? == Some(b'[') {
            self.scanner.next_byte()?;
            Some(self.read_internal_subset()?)
        } else {
            None
        };
        self.scanner.skip_whitespace()?;
        self.scanner
            .expect_byte(b'>', "`>` closing the DOCTYPE declaration")?;
        Ok(XmlEvent::DoctypeDecl {
            name,
            internal_subset,
        })
    }

    /// Reads the internal DTD subset up to the matching `]`, honouring
    /// quoted literals and comments so `]` inside them does not terminate
    /// the subset.
    fn read_internal_subset(&mut self) -> Result<String> {
        let mut out = Vec::new();
        loop {
            let b = self
                .scanner
                .peek()?
                .ok_or_else(|| XmlError::UnexpectedEof {
                    expected: "`]` closing the internal DTD subset",
                    pos: self.scanner.position(),
                })?;
            match b {
                b']' => {
                    self.scanner.next_byte()?;
                    break;
                }
                b'"' | b'\'' => {
                    self.scanner.next_byte()?;
                    out.push(b);
                    let delim = [b];
                    self.scanner.read_until(&delim, &mut out, "closing quote")?;
                    out.push(b);
                }
                b'<' if self.scanner.looking_at(b"<!--")? => {
                    self.scanner.expect_str(b"<!--", "comment")?;
                    out.extend_from_slice(b"<!--");
                    self.scanner
                        .read_until(b"-->", &mut out, "end of comment")?;
                    out.extend_from_slice(b"-->");
                }
                _ => {
                    self.scanner.next_byte()?;
                    out.push(b);
                }
            }
        }
        String::from_utf8(out).map_err(|_| XmlError::InvalidUtf8 {
            pos: self.scanner.position(),
        })
    }

    fn skip_quoted(&mut self, what: &'static str) -> Result<()> {
        let quote = match self.scanner.peek()? {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.syntax(format!("expected quoted {what}"))),
        };
        self.scanner.next_byte()?;
        let mut sink = Vec::new();
        let delim = [quote];
        self.scanner
            .read_until(&delim, &mut sink, "closing quote")?;
        Ok(())
    }

    fn parse_name(&mut self, what: &'static str) -> Result<String> {
        match self.scanner.peek()? {
            Some(b) if is_name_start(b) => {}
            Some(_) => return Err(self.syntax(format!("invalid {what}"))),
            None => {
                return Err(XmlError::UnexpectedEof {
                    expected: what,
                    pos: self.scanner.position(),
                })
            }
        }
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = self.scanner.read_while(is_name_char, &mut scratch);
        let out = res.and_then(|()| {
            String::from_utf8(scratch.clone()).map_err(|_| XmlError::InvalidUtf8 {
                pos: self.scanner.position(),
            })
        });
        self.scratch = scratch;
        out
    }

    fn parse_start_tag(&mut self) -> Result<XmlEvent> {
        if self.state == State::Epilog {
            return Err(self.wf("multiple root elements"));
        }
        self.scanner.expect_byte(b'<', "`<`")?;
        let name = self.parse_name("element name")?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            let had_ws = self.scanner.skip_whitespace()? > 0;
            match self.scanner.peek()? {
                Some(b'>') => {
                    self.scanner.next_byte()?;
                    self.enter_element(&name)?;
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b'/') => {
                    self.scanner.next_byte()?;
                    self.scanner
                        .expect_byte(b'>', "`>` after `/` in empty-element tag")?;
                    self.enter_element(&name)?;
                    self.pending_end = Some(name.clone());
                    return Ok(XmlEvent::StartElement { name, attributes });
                }
                Some(b) if is_name_start(b) => {
                    if !had_ws {
                        return Err(self.syntax("whitespace required before attribute"));
                    }
                    let attr_name = self.parse_name("attribute name")?;
                    self.scanner.skip_whitespace()?;
                    self.scanner.expect_byte(b'=', "`=` after attribute name")?;
                    self.scanner.skip_whitespace()?;
                    let value = self.parse_attr_value()?;
                    if attributes.iter().any(|a| a.name == attr_name) {
                        return Err(self.wf(format!("duplicate attribute `{attr_name}`")));
                    }
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                Some(_) => return Err(self.syntax("malformed start tag")),
                None => {
                    return Err(XmlError::UnexpectedEof {
                        expected: "`>` closing the start tag",
                        pos: self.scanner.position(),
                    })
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.scanner.peek()? {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => return Err(self.syntax("attribute value must be quoted")),
            None => {
                return Err(XmlError::UnexpectedEof {
                    expected: "attribute value",
                    pos: self.scanner.position(),
                })
            }
        };
        self.scanner.next_byte()?;
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let delim = [quote];
        let res = self
            .scanner
            .read_until(&delim, &mut scratch, "closing attribute quote");
        let out = res.and_then(|()| {
            String::from_utf8(scratch.clone()).map_err(|_| XmlError::InvalidUtf8 {
                pos: self.scanner.position(),
            })
        });
        self.scratch = scratch;
        let raw = out?;
        if raw.contains('<') {
            return Err(self.wf("`<` is not allowed in attribute values"));
        }
        unescape(&raw, self.scanner.position())
    }

    fn parse_end_tag(&mut self) -> Result<XmlEvent> {
        self.scanner.expect_str(b"</", "end tag")?;
        let name = self.parse_name("element name in end tag")?;
        self.scanner.skip_whitespace()?;
        self.scanner.expect_byte(b'>', "`>` closing the end tag")?;
        match self.stack.last() {
            Some(open) if *open == name => {}
            Some(open) => {
                let open = open.clone();
                return Err(self.wf(format!(
                    "mismatched end tag: expected </{open}>, found </{name}>"
                )));
            }
            None => return Err(self.wf(format!("end tag </{name}> with no open element"))),
        }
        self.leave_element();
        Ok(XmlEvent::EndElement { name })
    }

    fn enter_element(&mut self, name: &str) -> Result<()> {
        if self.stack.len() >= self.config.max_depth {
            return Err(self.wf(format!(
                "element nesting deeper than the configured limit of {}",
                self.config.max_depth
            )));
        }
        if self.state == State::Prolog {
            self.state = State::InRoot;
        }
        self.stack.push(name.to_string());
        Ok(())
    }

    fn leave_element(&mut self) {
        self.stack.pop();
        if self.stack.is_empty() && self.state == State::InRoot {
            self.state = State::Epilog;
        }
    }

    /// Parses a maximal run of character data, merging adjacent CDATA
    /// sections, and resolving entity references.
    fn parse_text(&mut self) -> Result<XmlEvent> {
        let mut text = String::new();
        loop {
            match self.scanner.peek()? {
                Some(b'<') => {
                    if self.scanner.looking_at(b"<![CDATA[")? {
                        self.scanner.expect_str(b"<![CDATA[", "CDATA section")?;
                        let mut raw = Vec::new();
                        self.scanner
                            .read_until(b"]]>", &mut raw, "`]]>` ending CDATA")?;
                        let chunk = String::from_utf8(raw).map_err(|_| XmlError::InvalidUtf8 {
                            pos: self.scanner.position(),
                        })?;
                        text.push_str(&chunk);
                    } else {
                        break;
                    }
                }
                Some(_) => {
                    self.scratch.clear();
                    let mut scratch = std::mem::take(&mut self.scratch);
                    let res = self.scanner.read_while(|b| b != b'<', &mut scratch);
                    let out = res.and_then(|()| {
                        String::from_utf8(scratch.clone()).map_err(|_| XmlError::InvalidUtf8 {
                            pos: self.scanner.position(),
                        })
                    });
                    self.scratch = scratch;
                    let raw = out?;
                    let unescaped = unescape(&raw, self.scanner.position())?;
                    text.push_str(&unescaped);
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        expected: "closing tags for open elements",
                        pos: self.scanner.position(),
                    })
                }
            }
        }
        Ok(XmlEvent::Text(text))
    }
}

/// Convenience: parses a complete document from a string into an event list.
/// Intended for tests and small inputs.
pub fn parse_to_events(input: &str) -> Result<Vec<XmlEvent>> {
    let mut reader = XmlReader::new(input.as_bytes());
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event()?;
        let done = ev == XmlEvent::EndDocument;
        events.push(ev);
        if done {
            return Ok(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        parse_to_events(input).expect("parse failed")
    }

    fn kinds(input: &str) -> Vec<&'static str> {
        events(input).iter().map(|e| e.kind()).collect()
    }

    #[test]
    fn minimal_document() {
        assert_eq!(
            kinds("<a/>"),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn nested_elements_and_text() {
        let evs = events("<a><b>hi</b><c/></a>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartDocument,
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![]
                },
                XmlEvent::StartElement {
                    name: "b".into(),
                    attributes: vec![]
                },
                XmlEvent::Text("hi".into()),
                XmlEvent::EndElement { name: "b".into() },
                XmlEvent::StartElement {
                    name: "c".into(),
                    attributes: vec![]
                },
                XmlEvent::EndElement { name: "c".into() },
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::EndDocument,
            ]
        );
    }

    #[test]
    fn attributes_parsed_and_unescaped() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[1] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0], Attribute::new("x", "1"));
                assert_eq!(attributes[1], Attribute::new("y", "two & three"));
            }
            other => panic!("expected start element, got {other}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse_to_events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err, XmlError::WellFormedness { .. }), "{err}");
    }

    #[test]
    fn text_entities_unescaped() {
        let evs = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(evs[2], XmlEvent::Text("1 < 2 && 3 > 2".into()));
    }

    #[test]
    fn char_refs_in_text() {
        let evs = events("<a>&#65;&#x42;</a>");
        assert_eq!(evs[2], XmlEvent::Text("AB".into()));
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse_to_events("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { ref name, .. } if name == "nope"));
    }

    #[test]
    fn cdata_merged_with_text() {
        let evs = events("<a>one <![CDATA[<raw> & ]]>two</a>");
        assert_eq!(evs[2], XmlEvent::Text("one <raw> & two".into()));
    }

    #[test]
    fn comments_skipped_by_default() {
        let evs = events("<a><!-- hello -->x</a>");
        assert_eq!(evs[2], XmlEvent::Text("x".into()));
    }

    #[test]
    fn comments_emitted_when_configured() {
        let mut reader = XmlReader::with_config(
            "<a><!--c--></a>".as_bytes(),
            ReaderConfig {
                emit_comments: true,
                ..ReaderConfig::default()
            },
        );
        let mut found = false;
        loop {
            match reader.next_event().unwrap() {
                XmlEvent::Comment(c) => {
                    assert_eq!(c, "c");
                    found = true;
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        assert!(found);
    }

    #[test]
    fn xml_declaration_skipped() {
        assert_eq!(
            kinds("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>"),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn doctype_with_internal_subset() {
        let evs = events("<!DOCTYPE bib [<!ELEMENT bib (book)*>]><bib/>");
        match &evs[1] {
            XmlEvent::DoctypeDecl {
                name,
                internal_subset,
            } => {
                assert_eq!(name, "bib");
                assert_eq!(internal_subset.as_deref(), Some("<!ELEMENT bib (book)*>"));
            }
            other => panic!("expected doctype, got {other}"),
        }
    }

    #[test]
    fn doctype_system_id() {
        let evs = events(r#"<!DOCTYPE bib SYSTEM "bib.dtd"><bib/>"#);
        assert!(
            matches!(&evs[1], XmlEvent::DoctypeDecl { name, internal_subset: None } if name == "bib")
        );
    }

    #[test]
    fn doctype_subset_with_bracket_in_quotes() {
        let evs = events(r#"<!DOCTYPE a [<!ENTITY x "]">]><a/>"#);
        match &evs[1] {
            XmlEvent::DoctypeDecl {
                internal_subset, ..
            } => {
                assert_eq!(internal_subset.as_deref(), Some(r#"<!ENTITY x "]">"#));
            }
            other => panic!("expected doctype, got {other}"),
        }
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse_to_events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::WellFormedness { .. }));
    }

    #[test]
    fn unclosed_root_rejected() {
        let err = parse_to_events("<a><b></b>").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = parse_to_events("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::WellFormedness { .. }));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(parse_to_events("hello<a/>").is_err());
        assert!(parse_to_events("<a/>hello").is_err());
    }

    #[test]
    fn whitespace_around_root_ok() {
        assert_eq!(
            kinds("  \n<a/>\n  "),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn unquoted_attribute_rejected() {
        assert!(parse_to_events("<a x=1/>").is_err());
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(parse_to_events(r#"<a x="a<b"/>"#).is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let mut input = String::new();
        for _ in 0..50 {
            input.push_str("<d>");
        }
        let mut reader = XmlReader::with_config(
            input.as_bytes(),
            ReaderConfig {
                max_depth: 10,
                ..ReaderConfig::default()
            },
        );
        let mut err = None;
        loop {
            match reader.next_event() {
                Ok(XmlEvent::EndDocument) => break,
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(XmlError::WellFormedness { .. })));
    }

    #[test]
    fn unicode_content() {
        let evs = events("<a>grüße 💡</a>");
        assert_eq!(evs[2], XmlEvent::Text("grüße 💡".into()));
    }

    #[test]
    fn unicode_element_names() {
        let evs = events("<bücher><büch/></bücher>");
        assert_eq!(evs[1].element_name(), Some("bücher"));
    }

    #[test]
    fn whitespace_in_end_tag() {
        assert_eq!(
            kinds("<a></a  >"),
            vec![
                "start-document",
                "start-element",
                "end-element",
                "end-document"
            ]
        );
    }

    #[test]
    fn large_text_spanning_chunks() {
        let body = "y".repeat(100_000);
        let input = format!("<a>{body}</a>");
        let evs = events(&input);
        assert_eq!(evs[2], XmlEvent::Text(body));
    }

    #[test]
    fn empty_document_is_error() {
        let err = parse_to_events("").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn pi_emitted_when_configured() {
        let mut reader = XmlReader::with_config(
            "<a><?target some data?></a>".as_bytes(),
            ReaderConfig {
                emit_processing_instructions: true,
                ..ReaderConfig::default()
            },
        );
        let mut found = false;
        loop {
            match reader.next_event().unwrap() {
                XmlEvent::ProcessingInstruction { target, data } => {
                    assert_eq!(target, "target");
                    assert_eq!(data, "some data");
                    found = true;
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        assert!(found);
    }
}
