//! Generator-backed unbounded streams: documents produced on the fly
//! behind a plain [`Read`], never materialised.
//!
//! [`AuctionStream`] runs [`write_auction`] on a
//! generator thread whose sink is a bounded channel of small chunks; the
//! `Read` side drains them. The channel bound is backpressure — the
//! generator can never run more than a few chunks ahead of the consumer —
//! so total generator-side memory stays a few hundred KiB regardless of
//! the configured document size, and multi-GB documents can be streamed
//! through an engine on machines that could never hold them.
//!
//! The byte stream is exactly what `write_auction` would have written to a
//! file: prefix-for-prefix identical per config, which is what the `slow`
//! suite's streamed-vs-buffered identity checks rely on.

use crate::auction::{write_auction, AuctionConfig};
use std::io::{self, Read, Write};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread;

/// Chunk size the generator hands to the channel. Big enough to amortise
/// channel traffic, small enough that `CHUNK × QUEUE` stays far below any
/// realistic memory budget.
const CHUNK: usize = 64 * 1024;

/// Chunks the generator may run ahead of the consumer.
const QUEUE: usize = 4;

/// An auction document generated on demand behind a [`Read`]: the
/// generator-streamed ingestion source for GB-scale workloads
/// (`Input::from_reader(AuctionStream::target_bytes(..))`).
pub struct AuctionStream {
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
    pos: usize,
    done: bool,
}

impl AuctionStream {
    /// Streams the document `config` describes.
    pub fn new(config: AuctionConfig) -> Self {
        let (tx, rx) = sync_channel(QUEUE);
        thread::spawn(move || {
            let mut sink = ChunkSink {
                tx,
                buf: Vec::with_capacity(CHUNK),
            };
            // A send error means the reader was dropped mid-stream; the
            // generator just stops. Generation itself cannot fail.
            if write_auction(&config, &mut sink).is_ok() {
                let _ = sink.flush();
            }
        });
        AuctionStream {
            rx,
            pending: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    /// Streams a document of roughly `bytes` bytes (within ~15%),
    /// deterministic per seed — the GB-scale axis knob.
    pub fn target_bytes(bytes: usize, seed: u64) -> Self {
        Self::new(AuctionConfig::target_bytes(bytes, seed))
    }
}

impl Read for AuctionStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                // Channel closed: the generator finished (or was told to
                // stop); either way the stream is over.
                Err(_) => {
                    if !self.done {
                        self.done = true;
                        self.pending = Vec::new();
                        self.pos = 0;
                    }
                    return Ok(0);
                }
            }
        }
        let rest = &self.pending[self.pos..];
        let n = rest.len().min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }
}

/// `Write` sink that ships full chunks through the bounded channel. The
/// blocking `send` *is* the memory bound: the generator stalls while the
/// consumer is behind.
struct ChunkSink {
    tx: SyncSender<Vec<u8>>,
    buf: Vec<u8>,
}

impl Write for ChunkSink {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= CHUNK {
            let full = std::mem::replace(&mut self.buf, Vec::with_capacity(CHUNK));
            self.tx
                .send(full)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "stream reader dropped"))?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            let rest = std::mem::take(&mut self.buf);
            self.tx
                .send(rest)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "stream reader dropped"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::auction_string;

    #[test]
    fn stream_matches_buffered_generation() {
        let config = AuctionConfig::scale(0.5, 17);
        let mut streamed = Vec::new();
        AuctionStream::new(config.clone())
            .read_to_end(&mut streamed)
            .unwrap();
        assert_eq!(streamed, auction_string(&config).into_bytes());
    }

    #[test]
    fn early_drop_stops_the_generator() {
        let mut stream = AuctionStream::new(AuctionConfig::scale(4.0, 3));
        let mut head = [0u8; 1024];
        stream.read_exact(&mut head).unwrap();
        drop(stream); // must not hang or panic the generator thread
        assert!(head.starts_with(b"<site>"));
    }

    #[test]
    fn target_bytes_streams_the_requested_size() {
        let mut stream = AuctionStream::target_bytes(1_048_576, 5);
        let mut total = 0usize;
        let mut buf = [0u8; 8192];
        loop {
            let n = stream.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert!(
            (800_000..=1_400_000).contains(&total),
            "asked for ~1 MiB, got {total}"
        );
    }
}
