//! The sharded reader's contract: for any document and any shard count,
//! the stitched event stream is the sequential reader's event stream.
//!
//! Checked three ways: byte-identity of the re-serialised stream (the
//! acceptance criterion), owned-event identity (a strictly stronger
//! check, possible because seams sit on element tags so no text run ever
//! splits), and XSAX validation-verdict agreement when the sharded reader
//! feeds `XsaxParser::from_source`.

use flux_shard::{ShardConfig, ShardedReader};
use flux_xml::{parse_to_events, RawEvent, XmlEvent, XmlReader, XmlWriter};
use flux_xmlgen::{auction_string, bib_string, AuctionConfig, BibConfig};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Serialises whatever `next_into` source produces, raw-event path.
fn serialise_sequential(doc: &str) -> String {
    let mut reader = XmlReader::new(doc.as_bytes());
    let mut writer = XmlWriter::new(Vec::new());
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).expect("sequential parse") {
        writer
            .write_raw_event(reader.symbols(), &ev)
            .expect("write");
    }
    writer.finish().expect("finish");
    String::from_utf8(writer.into_inner()).expect("utf8")
}

fn sharded_reader(doc: &str, shards: usize) -> ShardedReader {
    let mut config = ShardConfig::new(shards);
    config.min_shard_bytes = 1; // shard even small generated documents
    ShardedReader::new(doc.as_bytes().to_vec(), config)
}

fn serialise_sharded(doc: &str, shards: usize) -> String {
    let mut reader = sharded_reader(doc, shards);
    let mut writer = XmlWriter::new(Vec::new());
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).expect("sharded parse") {
        writer
            .write_raw_event(reader.symbols(), &ev)
            .expect("write");
    }
    writer.finish().expect("finish");
    String::from_utf8(writer.into_inner()).expect("utf8")
}

fn sharded_owned_events(doc: &str, shards: usize) -> Vec<XmlEvent> {
    let mut reader = sharded_reader(doc, shards);
    let mut ev = RawEvent::new();
    let mut out = Vec::new();
    while reader.next_into(&mut ev).expect("sharded parse") {
        out.push(ev.to_xml_event(reader.symbols()));
    }
    out
}

fn assert_doc_equivalent(doc: &str) {
    let expected_bytes = serialise_sequential(doc);
    let expected_events = parse_to_events(doc).expect("sequential parse");
    for shards in SHARD_COUNTS {
        assert_eq!(
            serialise_sharded(doc, shards),
            expected_bytes,
            "serialised stream diverged at {shards} shards"
        );
        assert_eq!(
            sharded_owned_events(doc, shards),
            expected_events,
            "event sequence diverged at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Generated bibliography documents (weak DTD shape): sharded and
    /// sequential streams are byte-identical via the writer.
    #[test]
    fn bib_weak_documents_equivalent(seed in 0u64..1_000_000, books in 1usize..120) {
        assert_doc_equivalent(&bib_string(&BibConfig::weak(books, seed)));
    }

    /// Figure 1 DTD shape.
    #[test]
    fn bib_fig1_documents_equivalent(seed in 0u64..1_000_000, books in 1usize..120) {
        assert_doc_equivalent(&bib_string(&BibConfig::fig1(books, seed)));
    }

    /// Auction documents: deeper nesting, attributes, joins corpus.
    #[test]
    fn auction_documents_equivalent(seed in 0u64..1_000_000) {
        assert_doc_equivalent(&auction_string(&AuctionConfig::scale(0.3, seed)));
    }
}

// ----- seam unit tests: constructs straddling an exact chunk boundary -----

/// Forces exactly two shards and checks equivalence. `min_shard_bytes = 1`
/// makes the split land near the middle of the document, which the caller
/// arranges to be inside the interesting construct.
fn assert_two_shard_equivalent(doc: &str) {
    let expected = serialise_sequential(doc);
    assert_eq!(serialise_sharded(doc, 2), expected, "doc: {doc}");
}

#[test]
fn tag_name_straddles_boundary() {
    // The ideal midpoint falls inside `<straddling-name ...>`: the
    // splitter must move the boundary to the tag's `<` or past it, never
    // inside the name.
    let left = "x".repeat(40);
    let doc = format!("<r><a>{left}</a><straddling-name attr=\"value\">body</straddling-name></r>");
    assert_two_shard_equivalent(&doc);
}

#[test]
fn text_run_straddles_boundary() {
    // Midpoint inside a long text run: the whole run must stay one event
    // (the boundary moves to the next tag).
    let run = "long text with entities &amp; more ".repeat(4);
    let doc = format!("<r><t>{run}</t><u/></r>");
    assert_two_shard_equivalent(&doc);
    // And the run really is delivered as a single text event.
    let events = sharded_owned_events(&doc, 2);
    let texts: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, XmlEvent::Text(_)))
        .collect();
    assert_eq!(texts.len(), 1, "{events:?}");
}

#[test]
fn comment_straddles_boundary() {
    let doc = format!(
        "<r><a>x</a><!-- a comment with <fake-tags/> inside {} --><b>y</b></r>",
        "pad ".repeat(10)
    );
    assert_two_shard_equivalent(&doc);
}

#[test]
fn cdata_straddles_boundary() {
    let doc = format!(
        "<r><t>before<![CDATA[raw <not-a-tag> &amp; {}]]>after</t></r>",
        "pad ".repeat(10)
    );
    assert_two_shard_equivalent(&doc);
    // CDATA merges into the surrounding text run, exactly like the
    // sequential reader.
    let events = sharded_owned_events(&doc, 2);
    assert!(
        events.iter().any(
            |e| matches!(e, XmlEvent::Text(t) if t.starts_with("before") && t.ends_with("after"))
        ),
        "{events:?}"
    );
}

#[test]
fn attribute_value_straddles_boundary() {
    let value = "no lt allowed but entities &amp; quotes ' work ".repeat(2);
    let doc = format!("<r><a k=\"{value}\" k2='two'/><b/></r>");
    assert_two_shard_equivalent(&doc);
}

#[test]
fn element_spanning_all_shards() {
    // One element whose content crosses every seam: its start tag lives in
    // shard 0, its end tag in the last shard.
    let body = "<leaf>x</leaf>".repeat(64);
    let doc = format!("<root><wide>{body}</wide></root>");
    for shards in SHARD_COUNTS {
        assert_eq!(serialise_sharded(&doc, shards), serialise_sequential(&doc));
    }
}

// ----- XSAX verdict agreement over the sharded source -----

#[test]
fn xsax_verdicts_agree_with_sequential() {
    use flux_dtd::Dtd;
    use flux_xsax::{seeded_symbols, XsaxConfig, XsaxParser};

    let dtd = Dtd::parse(flux_dtd::PAPER_FIG1_DTD).expect("dtd");
    let valid = bib_string(&BibConfig::fig1(80, 7));
    let invalid = valid.replace("<title>", "<price>9</price><title>");

    for (doc, should_pass) in [(&valid, true), (&invalid, false)] {
        let sequential = {
            let mut p = XsaxParser::new(doc.as_bytes(), &dtd).expect("parser");
            let mut ev = RawEvent::new();
            let mut n = 0u64;
            loop {
                match p.next_into(&mut ev) {
                    Ok(Some(_)) => n += 1,
                    Ok(None) => break Ok(n),
                    Err(e) => break Err(e),
                }
            }
        };
        for shards in SHARD_COUNTS {
            let mut config = ShardConfig::new(shards);
            config.min_shard_bytes = 1;
            let source =
                ShardedReader::with_symbols(doc.as_bytes().to_vec(), config, seeded_symbols(&dtd));
            let mut p =
                XsaxParser::from_source(source, &dtd, XsaxConfig::default()).expect("from_source");
            let mut ev = RawEvent::new();
            let mut n = 0u64;
            let sharded: Result<u64, _> = loop {
                match p.next_into(&mut ev) {
                    Ok(Some(_)) => n += 1,
                    Ok(None) => break Ok(n),
                    Err(e) => break Err(e),
                }
            };
            match (&sequential, &sharded) {
                (Ok(a), Ok(b)) => {
                    assert!(should_pass, "both accepted an invalid doc");
                    assert_eq!(a, b, "event counts diverged at {shards} shards");
                }
                (Err(_), Err(_)) => {
                    assert!(!should_pass, "both rejected a valid doc")
                }
                (seq, sh) => panic!(
                    "verdicts diverged at {shards} shards: sequential {seq:?}, sharded {sh:?}"
                ),
            }
        }
    }
}

#[test]
fn xsax_past_fires_agree_over_sharded_source() {
    use flux_dtd::Dtd;
    use flux_xsax::{seeded_symbols, PastLabels, XsaxConfig, XsaxParser, XsaxStep};

    let dtd = Dtd::parse(flux_dtd::PAPER_FIG1_DTD).expect("dtd");
    let doc = bib_string(&BibConfig::fig1(60, 21));
    let book = dtd.lookup("book").unwrap();
    let title = dtd.lookup("title").unwrap();
    let author = dtd.lookup("author").unwrap();

    // A fire trace records (event ordinal, fired id) pairs.
    fn trace<S: flux_xml::EventSource>(
        mut parser: XsaxParser<'_, S>,
        book: flux_dtd::Symbol,
        labels: PastLabels,
    ) -> Vec<(u64, u32)> {
        parser.register_past(book, labels).expect("register");
        let mut ev = RawEvent::new();
        let mut ordinal = 0u64;
        let mut fires = Vec::new();
        while let Some(step) = parser.next_into(&mut ev).expect("step") {
            ordinal += 1;
            if let XsaxStep::Fire { id, .. } = step {
                fires.push((ordinal, id.0));
            }
        }
        fires
    }

    let labels = PastLabels::labels([title, author]);
    let sequential = trace(
        XsaxParser::new(doc.as_bytes(), &dtd).expect("parser"),
        book,
        labels.clone(),
    );
    assert!(!sequential.is_empty(), "the workload must fire");
    for shards in SHARD_COUNTS {
        let mut config = ShardConfig::new(shards);
        config.min_shard_bytes = 1;
        let source =
            ShardedReader::with_symbols(doc.as_bytes().to_vec(), config, seeded_symbols(&dtd));
        let parser =
            XsaxParser::from_source(source, &dtd, XsaxConfig::default()).expect("from_source");
        assert_eq!(
            trace(parser, book, labels.clone()),
            sequential,
            "fire positions diverged at {shards} shards"
        );
    }
}
