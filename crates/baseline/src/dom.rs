//! The full-buffering DOM baseline.
//!
//! This engine materialises the entire input document and then evaluates
//! the query over the tree — the memory architecture of conventional
//! main-memory XQuery engines that the paper's evaluation compares against
//! ("contemporary XQuery engines consume main memory in large multiples of
//! the actual size of the input documents", Sec. 1). Peak buffered memory
//! is the full document size, independent of the query.
//!
//! Evaluation itself is the shared compile-then-stream pipeline: the query
//! is compiled once against an engine-owned symbol table (every label
//! interned at compile time), each run seeds both the reader and the tree
//! from that table, and the cursor evaluator matches steps by integer
//! symbol equality. The tree routes repeated short text payloads through
//! the shared-text dictionary, so even this deliberately memory-hungry
//! baseline does not pay per-node for recurring strings.

use crate::error::Result;
use flux_runtime::RunStats;
use flux_xml::tree::{Document, TreeBuilder};
use flux_xml::{RawEvent, ReaderConfig, SymbolTable, XmlReader, XmlWriter};
use flux_xquery::{
    compile_expr, normalize, parse_query, CompiledExpr, CursorEvaluator, SlotMap, ROOT_VAR,
};
use std::io::{Read, Write};
use std::time::Instant;

/// Compiled DOM-baseline query.
pub struct DomEngine {
    compiled: CompiledExpr,
    slots: SlotMap,
    root_slot: usize,
    /// Every query label, interned at compile time. Each run seeds the
    /// reader and the materialised document from a clone, so path steps
    /// compare as integers — a bounded-interner stream's overflowed names
    /// re-resolve inside the document's table and land on the same seeded
    /// symbols.
    symbols: SymbolTable,
}

impl DomEngine {
    /// Parses, normalizes and compiles the query against an engine-owned
    /// symbol table. The DTD plays no role: this engine does not exploit
    /// schema information — that is its defining handicap.
    pub fn compile(query: &str) -> Result<Self> {
        let parsed = parse_query(query)?;
        let query = normalize(&parsed)?;
        let mut slots = SlotMap::new();
        let root_slot = slots.slot(ROOT_VAR);
        let mut symbols = SymbolTable::new();
        let compiled = compile_expr(&query, &mut slots, &mut |label| Some(symbols.intern(label)))?;
        Ok(DomEngine {
            compiled,
            slots,
            root_slot,
            symbols,
        })
    }

    /// Loads the whole document, then evaluates. Parsing runs on the
    /// recycled interned-event path; materialising the tree is the only
    /// per-event allocation left — which is this engine's defining cost.
    pub fn run<R: Read, W: Write>(&self, input: R, output: W) -> Result<RunStats> {
        self.run_with_config(input, output, ReaderConfig::default())
    }

    /// Runs over a unified [`Input`](flux_xml::Input): resolves the source
    /// (path, gzip, stream or buffer), threads its window and budget into
    /// the reader, and enforces the budget post-run. The base `config`
    /// carries knobs the input does not own (e.g. the interner bound).
    pub fn run_input<W: Write>(
        &self,
        input: flux_xml::Input,
        output: W,
        config: ReaderConfig,
    ) -> Result<RunStats> {
        let (reader, config, budget) = crate::resolve_input(input, config)?;
        let stats = self.run_with_config(reader, output, config)?;
        crate::enforce_budget(budget, stats.peak_buffer_bytes)?;
        Ok(stats)
    }

    /// [`DomEngine::run`] with an explicit reader configuration (e.g.
    /// [`ReaderConfig::max_symbols`] for bounded-interner streams — the
    /// tree imports overflowed names through their literal side channel,
    /// so the cap bounds reader memory without changing the document).
    pub fn run_with_config<R: Read, W: Write>(
        &self,
        input: R,
        output: W,
        config: ReaderConfig,
    ) -> Result<RunStats> {
        let start = Instant::now();
        let mut reader = XmlReader::with_symbols(input, config, self.symbols.clone());
        let mut builder = TreeBuilder::with_symbols(self.symbols.clone()).with_shared_text();
        let mut events: u64 = 0;
        let mut ev = RawEvent::new();
        while reader.next_into(&mut ev)? {
            events += 1;
            builder.raw_event(reader.symbols(), &ev)?;
        }
        let doc: Document = builder.finish()?;
        let peak = doc.memory_bytes();
        let nodes = doc.node_count();

        let mut writer = XmlWriter::new(output);
        let mut evaluator = CursorEvaluator::new();
        let mut slots = self.slots.make_slots();
        slots[self.root_slot] = Some(doc.document_node());
        evaluator.eval(&doc, &self.compiled, &mut slots, &mut writer)?;
        writer.finish()?;

        Ok(RunStats {
            peak_buffer_bytes: peak,
            peak_buffer_nodes: nodes,
            total_buffered_bytes: peak as u64,
            output_bytes: writer.bytes_written(),
            events,
            duration: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<bib><book><title>T1</title><author>A1</author></book><book><title>T2</title></book></bib>";

    #[test]
    fn evaluates_q3() {
        let engine = DomEngine::compile(
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#,
        )
        .unwrap();
        let mut out = Vec::new();
        let stats = engine.run(DOC.as_bytes(), &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<results><result><title>T1</title><author>A1</author></result><result><title>T2</title></result></results>"
        );
        assert!(
            stats.peak_buffer_bytes >= DOC.len() / 2,
            "whole document buffered"
        );
    }

    #[test]
    fn memory_scales_with_document() {
        let engine =
            DomEngine::compile("<r>{ for $b in $ROOT/bib/book return $b/title }</r>").unwrap();
        let small = DOC.to_string();
        let mut big = String::from("<bib>");
        for i in 0..100 {
            big.push_str(&format!(
                "<book><title>T{i}</title><author>A{i}AAAAAAAA</author></book>"
            ));
        }
        big.push_str("</bib>");
        let mut sink = Vec::new();
        let s1 = engine.run(small.as_bytes(), &mut sink).unwrap();
        sink.clear();
        let s2 = engine.run(big.as_bytes(), &mut sink).unwrap();
        assert!(
            s2.peak_buffer_bytes > s1.peak_buffer_bytes * 10,
            "DOM memory tracks document size: {} vs {}",
            s2.peak_buffer_bytes,
            s1.peak_buffer_bytes
        );
    }

    #[test]
    fn repeated_payloads_share_storage() {
        // 100 identical author strings: with the shared-text dictionary the
        // document charges the spelling a constant number of times, not per
        // node.
        let engine =
            DomEngine::compile("<r>{ for $b in $ROOT/bib/book return $b/author }</r>").unwrap();
        let body = "<book><title>T</title><author>Stevens, W. Richard</author></book>".repeat(100);
        let shared = format!("<bib>{body}</bib>");
        let mut sink = Vec::new();
        let s = engine.run(shared.as_bytes(), &mut sink).unwrap();
        let mut distinct = String::from("<bib>");
        for i in 0..100 {
            distinct.push_str(&format!(
                "<book><title>T</title><author>Author nr. {i:07}</author></book>"
            ));
        }
        distinct.push_str("</bib>");
        sink.clear();
        let d = engine.run(distinct.as_bytes(), &mut sink).unwrap();
        assert!(
            s.peak_buffer_bytes + 1000 < d.peak_buffer_bytes,
            "shared {} must undercut distinct {}",
            s.peak_buffer_bytes,
            d.peak_buffer_bytes
        );
    }
}
