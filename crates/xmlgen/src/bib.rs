//! Bibliography document generator — the paper's running domain (the XMP
//! use cases of the XML Query Use Cases).
//!
//! Two modes matching the paper's two DTDs:
//! * [`BibMode::Weak`] — `book (title|author)*`: titles and authors in
//!   arbitrary order and number (Sec. 2's weak DTD);
//! * [`BibMode::Fig1`] — `book (title,(author+|editor+),publisher,price)`
//!   (Figure 1's strong DTD).

use crate::text;
use flux_xml::{Attribute, Result, XmlWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;

/// Which content model generated books follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BibMode {
    Weak,
    Fig1,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct BibConfig {
    pub mode: BibMode,
    /// Number of `book` elements.
    pub books: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Authors per book, inclusive range.
    pub authors: (usize, usize),
    /// In weak mode: titles per book, inclusive range. Fig. 1 always has 1.
    pub titles: (usize, usize),
    /// In Fig. 1 mode: probability (percent) a book has editors instead of
    /// authors.
    pub editor_percent: u32,
    /// Words per title.
    pub title_words: usize,
    /// Emit `year` attributes on books.
    pub year_attributes: bool,
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig {
            mode: BibMode::Fig1,
            books: 100,
            seed: 42,
            authors: (1, 4),
            titles: (1, 2),
            editor_percent: 20,
            title_words: 3,
            year_attributes: true,
        }
    }
}

impl BibConfig {
    pub fn weak(books: usize, seed: u64) -> Self {
        BibConfig {
            mode: BibMode::Weak,
            books,
            seed,
            ..BibConfig::default()
        }
    }

    pub fn fig1(books: usize, seed: u64) -> Self {
        BibConfig {
            mode: BibMode::Fig1,
            books,
            seed,
            ..BibConfig::default()
        }
    }
}

/// Writes a bibliography document to `out`.
pub fn write_bib<W: Write>(config: &BibConfig, out: W) -> Result<u64> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut writer = XmlWriter::new(out);
    writer.start_element("bib", &[])?;
    for _ in 0..config.books {
        let attrs = if config.year_attributes {
            vec![Attribute::new(
                "year",
                rng.gen_range(1970..2005).to_string(),
            )]
        } else {
            vec![]
        };
        writer.start_element("book", &attrs)?;
        match config.mode {
            BibMode::Weak => write_weak_book(config, &mut rng, &mut writer)?,
            BibMode::Fig1 => write_fig1_book(config, &mut rng, &mut writer)?,
        }
        writer.end_element()?;
    }
    writer.end_element()?;
    writer.finish()?;
    Ok(writer.bytes_written())
}

fn write_simple<W: Write>(writer: &mut XmlWriter<W>, tag: &str, content: &str) -> Result<()> {
    writer.start_element(tag, &[])?;
    writer.text(content)?;
    writer.end_element()
}

fn write_weak_book<W: Write>(
    config: &BibConfig,
    rng: &mut SmallRng,
    writer: &mut XmlWriter<W>,
) -> Result<()> {
    // Interleave titles and authors randomly: the weak DTD permits any
    // order, and FluXQuery must cope with authors arriving first.
    let titles = rng.gen_range(config.titles.0..=config.titles.1);
    let authors = rng.gen_range(config.authors.0..=config.authors.1);
    let mut items: Vec<bool> = Vec::with_capacity(titles + authors);
    items.extend(std::iter::repeat(true).take(titles));
    items.extend(std::iter::repeat(false).take(authors));
    // Fisher-Yates with the seeded generator.
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
    for is_title in items {
        if is_title {
            write_simple(writer, "title", &text::sentence(rng, config.title_words))?;
        } else {
            write_simple(writer, "author", &text::name(rng))?;
        }
    }
    Ok(())
}

fn write_fig1_book<W: Write>(
    config: &BibConfig,
    rng: &mut SmallRng,
    writer: &mut XmlWriter<W>,
) -> Result<()> {
    write_simple(writer, "title", &text::sentence(rng, config.title_words))?;
    let use_editors = rng.gen_range(0..100) < config.editor_percent;
    let n = rng.gen_range(config.authors.0.max(1)..=config.authors.1.max(1));
    for _ in 0..n {
        if use_editors {
            write_simple(writer, "editor", &text::name(rng))?;
        } else {
            write_simple(writer, "author", &text::name(rng))?;
        }
    }
    write_simple(writer, "publisher", &text::name(rng))?;
    write_simple(
        writer,
        "price",
        &format!("{}.{:02}", rng.gen_range(5..120), rng.gen_range(0..100)),
    )?;
    Ok(())
}

/// Generates a bibliography document as a string.
pub fn bib_string(config: &BibConfig) -> String {
    let mut out = Vec::new();
    write_bib(config, &mut out).expect("in-memory generation cannot fail");
    String::from_utf8(out).expect("generator emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = BibConfig::fig1(10, 7);
        assert_eq!(bib_string(&c), bib_string(&c));
        let c2 = BibConfig::fig1(10, 8);
        assert_ne!(bib_string(&c), bib_string(&c2));
    }

    #[test]
    fn weak_interleaves() {
        let c = BibConfig {
            titles: (2, 3),
            authors: (2, 4),
            ..BibConfig::weak(30, 3)
        };
        let doc = bib_string(&c);
        // Some book must have an author before a title (shuffled order).
        let has_author_first =
            doc.split("<book")
                .skip(1)
                .any(|b| match (b.find("<author>"), b.find("<title>")) {
                    (Some(a), Some(t)) => a < t,
                    _ => false,
                });
        assert!(has_author_first, "expected interleaved order somewhere");
    }

    #[test]
    fn fig1_structure_strict() {
        let c = BibConfig::fig1(20, 5);
        let doc = bib_string(&c);
        for book in doc.split("<book").skip(1) {
            let title = book.find("<title>").unwrap();
            let publisher = book.find("<publisher>").unwrap();
            let price = book.find("<price>").unwrap();
            assert!(title < publisher && publisher < price);
            let has_author = book.find("<author>").is_some();
            let has_editor = book.find("<editor>").is_some();
            assert!(has_author ^ has_editor, "author xor editor per book");
        }
    }

    #[test]
    fn size_scales_with_books() {
        let small = bib_string(&BibConfig::fig1(10, 1)).len();
        let large = bib_string(&BibConfig::fig1(100, 1)).len();
        assert!(large > small * 8);
    }

    #[test]
    fn book_count_correct() {
        let doc = bib_string(&BibConfig::fig1(25, 2));
        assert_eq!(doc.matches("<book").count(), 25);
    }
}
