//! E5 — per-query runtime across the catalog for the three engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flux_bench::catalog;
use fluxquery_core::{AnyEngine, EngineKind, Input};
use std::sync::Arc;

fn query_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_query_suite");
    for q in catalog() {
        let doc = Arc::new(q.domain.document(1.0, 42).into_bytes());
        group.throughput(Throughput::Bytes(doc.len() as u64));
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, q.query, q.domain.dtd()).expect("compile");
            group.bench_with_input(BenchmarkId::new(q.id, kind.label()), &doc, |b, doc| {
                b.iter(|| {
                    let mut out = Vec::new();
                    engine
                        .run_input(Input::from_shared_bytes(Arc::clone(doc)), &mut out)
                        .expect("run");
                    out.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = query_suite
}
criterion_main!(benches);
