//! Coarse monotonic span timers.
//!
//! A [`Stopwatch`] is a captured [`std::time::Instant`]: starting one and
//! reading `elapsed_ns` are the *only* clock reads the instrumentation
//! performs — spans bracket whole stages (a shard's parse, a replay
//! window), never individual events. A copy of one stopwatch shared
//! across threads is the pipeline *epoch*: every thread's `elapsed_ns`
//! reads off the same monotonic axis, so cross-thread timeline points
//! (tape ready vs. tape picked up) subtract meaningfully.
//!
//! With the `enabled` feature off the type is zero-sized, `start` touches
//! no clock, and `elapsed_ns` is the constant 0.

#[cfg(feature = "enabled")]
use std::time::Instant;

/// A started monotonic timer (zero-sized no-op when telemetry is off).
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

#[cfg(feature = "enabled")]
impl Stopwatch {
    /// Captures the current monotonic instant.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds since [`Stopwatch::start`] (saturating at `u64::MAX`).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(feature = "enabled")]
impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// A started monotonic timer (zero-sized no-op when telemetry is off).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct Stopwatch {}

#[cfg(not(feature = "enabled"))]
impl Stopwatch {
    /// No-op start: no clock is read when telemetry is off.
    #[inline(always)]
    pub fn start() -> Self {
        Stopwatch {}
    }

    /// Always 0 when telemetry is off.
    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_or_zero() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        if crate::enabled() {
            assert!(b >= a, "monotonic clock must not run backwards");
        } else {
            assert_eq!((a, b), (0, 0));
            assert_eq!(std::mem::size_of::<Stopwatch>(), 0);
        }
    }
}
