//! The full compilation pipeline of the paper's query optimizer (Fig. 2):
//! XQuery → normal form → algebraic optimization → FluX → safety check.

use crate::algebra::{Optimizer, OptimizerConfig, RuleApplication};
use crate::ast::FluxExpr;
use crate::error::Result;
use crate::pretty::pretty_flux;
use crate::rewrite::Rewriter;
use crate::safety::check_safety;
use flux_dtd::{Dtd, Symbol};
use flux_xquery::{normalize, parse_query, pretty, AttrPart, Cond, Expr, Operand, Path, Step};

/// Options for [`compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    pub optimizer: OptimizerConfig,
    /// Run the independent safety check on the scheduled FluX query
    /// (cheap; on by default — scheduler bugs become hard errors).
    pub verify_safety: bool,
    /// Ablation switch: disable streaming handlers entirely; every item is
    /// buffered with `on-first`. Isolates the contribution of the paper's
    /// order-constraint scheduling.
    pub disable_streaming: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            optimizer: OptimizerConfig::default(),
            verify_safety: true,
            disable_streaming: false,
        }
    }
}

/// A fully compiled query with every intermediate stage retained for
/// inspection (`explain`) and execution.
#[derive(Debug, Clone)]
pub struct FluxQuery {
    /// The query as parsed.
    pub source: Expr,
    /// After normalization.
    pub normalized: Expr,
    /// After algebraic optimization.
    pub optimized: Expr,
    /// The scheduled FluX query the runtime executes.
    pub flux: FluxExpr,
    /// Applied algebraic rules.
    pub algebra_trace: Vec<RuleApplication>,
    /// Scheduling decisions.
    pub schedule_trace: Vec<String>,
    /// The query's path-label vocabulary, interned against the DTD at
    /// compile time: `(label, symbol)` sorted by label, `None` for labels
    /// the DTD does not declare. This is the symbol space the physical
    /// plan's buffer-description edges are keyed by — the runtime never
    /// rebuilds a per-run index.
    pub label_symbols: Vec<(String, Option<Symbol>)>,
}

impl FluxQuery {
    /// Number of `on-first` (buffering) handlers — the static buffering
    /// obligations of the plan.
    pub fn buffered_handler_count(&self) -> usize {
        self.flux.buffered_handler_count()
    }

    /// Resolves a path label through the vocabulary interned at compile
    /// time (sorted by label), falling back to `dtd` for labels outside
    /// it. This is the resolver the physical plan compiles its
    /// symbol-annotated handler bodies with: every label the query names
    /// resolves against the same index space the stream's seeded interner
    /// uses, so handler evaluation never hashes a declared label.
    pub fn resolve_label(&self, dtd: &Dtd, label: &str) -> Option<Symbol> {
        match self
            .label_symbols
            .binary_search_by(|(l, _)| l.as_str().cmp(label))
        {
            Ok(i) => self.label_symbols[i].1,
            Err(_) => dtd.lookup(label),
        }
    }

    /// A human-readable report of every compilation stage.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("== normalized query ==\n");
        out.push_str(&pretty(&self.normalized));
        out.push_str("\n\n== algebraic optimization ==\n");
        if self.algebra_trace.is_empty() {
            out.push_str("(no rules applied)\n");
        } else {
            for rule in &self.algebra_trace {
                out.push_str(&format!("[{}] {}\n", rule.rule, rule.description));
            }
            out.push_str(&pretty(&self.optimized));
            out.push('\n');
        }
        out.push_str("\n== scheduling ==\n");
        for line in &self.schedule_trace {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("\n== FluX query ==\n");
        out.push_str(&pretty_flux(&self.flux));
        out.push('\n');
        let undeclared: Vec<&str> = self
            .label_symbols
            .iter()
            .filter(|(_, sym)| sym.is_none())
            .map(|(label, _)| label.as_str())
            .collect();
        if !undeclared.is_empty() {
            out.push_str(&format!(
                "\n(labels not declared in the DTD, matched only by spelling: {})\n",
                undeclared.join(", ")
            ));
        }
        out
    }
}

/// Collects every `child::label` step of the query into `out` (the labels
/// the buffer-description forest will key its edges by).
fn collect_labels(expr: &Expr, out: &mut std::collections::BTreeSet<String>) {
    fn path(p: &Path, out: &mut std::collections::BTreeSet<String>) {
        for step in &p.steps {
            if let Step::Child(label) = step {
                out.insert(label.clone());
            }
        }
    }
    fn cond(c: &Cond, out: &mut std::collections::BTreeSet<String>) {
        match c {
            Cond::True | Cond::False => {}
            Cond::And(a, b) | Cond::Or(a, b) => {
                cond(a, out);
                cond(b, out);
            }
            Cond::Not(inner) => cond(inner, out),
            Cond::Exists(p) | Cond::Empty(p) => path(p, out),
            Cond::Cmp { lhs, rhs, .. } => {
                for operand in [lhs, rhs] {
                    if let Operand::Path(p) = operand {
                        path(p, out);
                    }
                }
            }
        }
    }
    match expr {
        Expr::Empty | Expr::StringLit(_) | Expr::Var(_) => {}
        Expr::Path(p) => path(p, out),
        Expr::Sequence(items) => {
            for item in items {
                collect_labels(item, out);
            }
        }
        Expr::Element {
            attributes,
            content,
            ..
        } => {
            for attr in attributes {
                for part in &attr.value {
                    if let AttrPart::Expr(e) = part {
                        collect_labels(e, out);
                    }
                }
            }
            collect_labels(content, out);
        }
        Expr::For {
            source,
            where_clause,
            body,
            ..
        } => {
            path(source, out);
            if let Some(c) = where_clause {
                cond(c, out);
            }
            collect_labels(body, out);
        }
        Expr::Let { value, body, .. } => {
            collect_labels(value, out);
            collect_labels(body, out);
        }
        Expr::If {
            cond: c,
            then_branch,
            else_branch,
        } => {
            cond(c, out);
            collect_labels(then_branch, out);
            collect_labels(else_branch, out);
        }
    }
}

/// Compiles XQuery text against a DTD.
pub fn compile(query: &str, dtd: &Dtd, options: &CompileOptions) -> Result<FluxQuery> {
    let source = parse_query(query)?;
    compile_expr(&source, dtd, options)
}

/// Compiles an already-parsed query.
pub fn compile_expr(source: &Expr, dtd: &Dtd, options: &CompileOptions) -> Result<FluxQuery> {
    let normalized = normalize(source)?;
    let mut optimizer = Optimizer::new(dtd, options.optimizer);
    let optimized = optimizer.optimize(&normalized);
    let mut rewriter = if options.disable_streaming {
        Rewriter::without_streaming(dtd)
    } else {
        Rewriter::new(dtd)
    };
    let flux = rewriter.rewrite(&optimized)?;
    if options.verify_safety {
        check_safety(&flux, dtd)?;
    }
    // Intern the query's label vocabulary once, at compile time: these are
    // the symbols the plan's spec edges and handler dispatch compare
    // against on the hot path.
    let mut labels = std::collections::BTreeSet::new();
    collect_labels(&optimized, &mut labels);
    let label_symbols = labels
        .into_iter()
        .map(|label| {
            let sym = dtd.lookup(&label);
            (label, sym)
        })
        .collect();
    Ok(FluxQuery {
        source: source.clone(),
        normalized,
        optimized,
        flux,
        algebra_trace: optimizer.trace,
        schedule_trace: rewriter.trace,
        label_symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_WEAK_DTD};

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    #[test]
    fn pipeline_q3() {
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let compiled = compile(Q3, &dtd, &CompileOptions::default()).unwrap();
        assert_eq!(compiled.buffered_handler_count(), 0);
        let explain = compiled.explain();
        assert!(explain.contains("process-stream"), "{explain}");
        assert!(explain.contains("on title as"), "{explain}");
    }

    #[test]
    fn pipeline_weak_dtd() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let compiled = compile(Q3, &dtd, &CompileOptions::default()).unwrap();
        assert_eq!(compiled.buffered_handler_count(), 1);
    }

    #[test]
    fn optimizer_effect_visible_in_flux() {
        // Without R1, two publisher loops -> two handlers; with R1 they
        // merge into one.
        let dtd = Dtd::parse(PAPER_FIG1_DTD).unwrap();
        let q = r#"<out>{ for $b in $ROOT/bib/book return
            <r>{ for $x in $b/publisher return <a>{$x}</a> }
               { for $y in $b/publisher return <bb>{$y}</bb> }</r> }</out>"#;
        let with = compile(q, &dtd, &CompileOptions::default()).unwrap();
        let without = compile(
            q,
            &dtd,
            &CompileOptions {
                optimizer: OptimizerConfig::disabled(),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(with.algebra_trace.iter().any(|r| r.rule == "R1"));
        assert!(without.algebra_trace.is_empty());
        let with_printed = pretty_flux(&with.flux);
        let without_printed = pretty_flux(&without.flux);
        assert_eq!(
            with_printed.matches("on publisher").count(),
            1,
            "{with_printed}"
        );
        // Unmerged: the second loop cannot stream after the first
        // (publisher ≤ 1 makes it schedulable actually — both stream).
        assert!(
            without_printed.matches("publisher").count() >= 2,
            "{without_printed}"
        );
    }

    #[test]
    fn parse_error_propagates() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        assert!(compile("<r>{", &dtd, &CompileOptions::default()).is_err());
    }
}
