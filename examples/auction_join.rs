//! A join query on XMark-style auction data: pair each closed auction with
//! the buyer's name. Shows FluXQuery executing a join by buffering only the
//! projected person data (names + ids), never the bulky item descriptions.
//!
//! Run with: `cargo run --release --example auction_join`

use fluxquery::xmlgen::{auction_string, AuctionConfig, AUCTION_DTD};
use fluxquery::{FluxEngine, Options};

// Rooting both sides in one $s variable lets the scheduler see that
// `people` precedes `closed_auctions` in the site's content model: the
// auction loop streams, probing the (projected) people buffer.
const JOIN_QUERY: &str = r#"<sales>{
    for $s in $ROOT/site return
    for $a in $s/closed_auctions/closed_auction,
        $p in $s/people/person
    where $a/buyer = $p/@id
    return <sale>{$p/name}{$a/price}</sale>
}</sales>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = FluxEngine::compile(JOIN_QUERY, AUCTION_DTD, &Options::default())?;
    println!("{}", engine.explain());

    let doc = auction_string(&AuctionConfig::scale(1.0, 7));
    let (out, stats) = engine.run_to_string(&doc)?;
    let sales = out.matches("<sale>").count();
    println!("input:  {} bytes of auction data", doc.len());
    println!("output: {sales} sales, {} bytes", stats.output_bytes);
    println!(
        "peak buffered: {} bytes ({} nodes) — item descriptions never buffered",
        stats.peak_buffer_bytes, stats.peak_buffer_nodes
    );
    println!("runtime: {:?}", stats.duration);
    Ok(())
}
