//! Content models: the right-hand sides of `<!ELEMENT ...>` declarations.

use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// A regular expression over child element names ("content particle" in the
/// XML specification, extended with an explicit epsilon).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Particle {
    /// The empty word (used for `EMPTY` and `(#PCDATA)` models).
    Epsilon,
    /// A single child element.
    Name(Symbol),
    /// Concatenation `(p1, p2, ...)`.
    Seq(Vec<Particle>),
    /// Alternation `(p1 | p2 | ...)`.
    Choice(Vec<Particle>),
    /// `p?`
    Opt(Box<Particle>),
    /// `p*`
    Star(Box<Particle>),
    /// `p+`
    Plus(Box<Particle>),
}

impl Particle {
    /// All element symbols mentioned in the particle.
    pub fn symbols(&self, out: &mut Vec<Symbol>) {
        match self {
            Particle::Epsilon => {}
            Particle::Name(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Particle::Seq(ps) | Particle::Choice(ps) => {
                for p in ps {
                    p.symbols(out);
                }
            }
            Particle::Opt(p) | Particle::Star(p) | Particle::Plus(p) => p.symbols(out),
        }
    }

    /// Renders the particle with names resolved through `table`.
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> ParticleDisplay<'a> {
        ParticleDisplay {
            particle: self,
            table,
        }
    }
}

/// Helper for [`Particle::display`].
pub struct ParticleDisplay<'a> {
    particle: &'a Particle,
    table: &'a SymbolTable,
}

impl fmt::Display for ParticleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Particle, table: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match p {
                Particle::Epsilon => write!(f, "()"),
                Particle::Name(s) => write!(f, "{}", table.name(*s)),
                Particle::Seq(ps) => {
                    write!(f, "(")?;
                    for (i, sub) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        go(sub, table, f)?;
                    }
                    write!(f, ")")
                }
                Particle::Choice(ps) => {
                    write!(f, "(")?;
                    for (i, sub) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        go(sub, table, f)?;
                    }
                    write!(f, ")")
                }
                Particle::Opt(sub) => {
                    go(sub, table, f)?;
                    write!(f, "?")
                }
                Particle::Star(sub) => {
                    go(sub, table, f)?;
                    write!(f, "*")
                }
                Particle::Plus(sub) => {
                    go(sub, table, f)?;
                    write!(f, "+")
                }
            }
        }
        go(self.particle, self.table, f)
    }
}

/// The declared content of an element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentSpec {
    /// `EMPTY` — no children, no text.
    Empty,
    /// `ANY` — any sequence of declared elements and text.
    Any,
    /// `(#PCDATA | a | b)*` — text freely interleaved with the listed
    /// elements. An empty list is `(#PCDATA)`.
    Mixed(Vec<Symbol>),
    /// Element content: a regular expression over child elements, with
    /// whitespace-only text permitted between them and other text forbidden.
    Children(Particle),
    /// A structured content model with interleaved text (XML Schema's
    /// `mixed="true"` on a complex type; DTDs cannot express this).
    MixedChildren(Particle),
}

impl ContentSpec {
    /// True when non-whitespace character data may occur among the children.
    pub fn allows_text(&self) -> bool {
        matches!(
            self,
            ContentSpec::Any | ContentSpec::Mixed(_) | ContentSpec::MixedChildren(_)
        )
    }

    /// The particle describing the permitted child-element sequences.
    /// `all_elements` is used to expand `ANY`.
    pub fn to_particle(&self, all_elements: &[Symbol]) -> Particle {
        match self {
            ContentSpec::Empty => Particle::Epsilon,
            ContentSpec::Any => Particle::Star(Box::new(Particle::Choice(
                all_elements.iter().copied().map(Particle::Name).collect(),
            ))),
            ContentSpec::Mixed(symbols) => {
                if symbols.is_empty() {
                    Particle::Epsilon
                } else {
                    Particle::Star(Box::new(Particle::Choice(
                        symbols.iter().copied().map(Particle::Name).collect(),
                    )))
                }
            }
            ContentSpec::Children(p) | ContentSpec::MixedChildren(p) => p.clone(),
        }
    }
}

/// Default declaration of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttDefault {
    Required,
    Implied,
    Fixed(String),
    Default(String),
}

/// One attribute definition from an `<!ATTLIST ...>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    pub name: String,
    /// The declared type, stored verbatim (`CDATA`, `ID`, an enumeration...).
    pub att_type: String,
    pub default: AttDefault,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_deduplicated() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let p = Particle::Seq(vec![
            Particle::Name(a),
            Particle::Star(Box::new(Particle::Choice(vec![
                Particle::Name(a),
                Particle::Name(b),
            ]))),
        ]);
        let mut syms = Vec::new();
        p.symbols(&mut syms);
        assert_eq!(syms, vec![a, b]);
    }

    #[test]
    fn display_round_trips_shape() {
        let mut t = SymbolTable::new();
        let title = t.intern("title");
        let author = t.intern("author");
        let p = Particle::Seq(vec![
            Particle::Name(title),
            Particle::Plus(Box::new(Particle::Name(author))),
        ]);
        assert_eq!(p.display(&t).to_string(), "(title,author+)");
    }

    #[test]
    fn mixed_allows_text() {
        assert!(ContentSpec::Mixed(vec![]).allows_text());
        assert!(ContentSpec::Any.allows_text());
        assert!(!ContentSpec::Empty.allows_text());
        assert!(!ContentSpec::Children(Particle::Epsilon).allows_text());
    }

    #[test]
    fn any_expands_to_star_choice() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let p = ContentSpec::Any.to_particle(&[a, b]);
        assert_eq!(
            p,
            Particle::Star(Box::new(Particle::Choice(vec![
                Particle::Name(a),
                Particle::Name(b)
            ])))
        );
    }
}
