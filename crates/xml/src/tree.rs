//! A lightweight arena-based document tree.
//!
//! Used by the baseline engines (which materialise documents or projected
//! fragments) and by the FluXQuery runtime's buffer store (which materialises
//! only BDF-selected subtrees). Every structure reports its heap footprint so
//! experiments can account buffered memory deterministically.

use crate::error::{Result, XmlError};
use crate::event::{Attribute, RawEvent, RawEventKind, XmlEvent};
use crate::reader::XmlReader;
use crate::writer::XmlWriter;
use flux_symbols::SymbolTable;
use std::io::Read;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document node; always the arena's first entry.
    Document,
    /// An element with its attributes.
    Element {
        name: String,
        attributes: Vec<Attribute>,
    },
    /// A text node.
    Text(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
}

impl Node {
    /// Deterministic content bytes of this node: string lengths and
    /// attribute payloads, excluding the child-pointer vector (which grows
    /// independently of this node's own data). Length-based rather than
    /// capacity-based so the number is stable across allocator behaviour.
    fn content_bytes(&self) -> usize {
        match &self.kind {
            NodeKind::Document => 0,
            NodeKind::Element { name, attributes } => {
                name.len()
                    + attributes.len() * std::mem::size_of::<Attribute>()
                    + attributes
                        .iter()
                        .map(|a| a.name.len() + a.value.len())
                        .sum::<usize>()
            }
            NodeKind::Text(t) => t.len(),
        }
    }

    /// Content bytes plus the child-pointer vector.
    fn heap_bytes(&self) -> usize {
        self.content_bytes() + self.children.len() * std::mem::size_of::<NodeId>()
    }
}

/// An arena-allocated XML document or document fragment.
#[derive(Debug, Clone, Default)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates a document containing only the virtual document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The virtual document node.
    pub fn document_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The root element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.document_node())
            .iter()
            .copied()
            .find(|&id| matches!(self.kind(id), NodeKind::Element { .. }))
    }

    /// Number of nodes, including the document node.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deterministic estimate of heap memory held by the whole tree, in
    /// bytes (length-based, so independent of allocator growth policies).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.nodes.iter().map(Node::heap_bytes).sum::<usize>()
    }

    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Element name, or `None` for text/document nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Text content, or `None` for element/document nodes.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Attributes of an element node (empty slice otherwise).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match self.kind(id) {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Value of the named attribute, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Child elements with the given name, in document order.
    pub fn children_named<'a>(
        &'a self,
        id: NodeId,
        name: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.name(c) == Some(name))
    }

    /// The XPath string value: concatenated descendant text in document order.
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text(t) => out.push_str(t),
            _ => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Creates a detached element node.
    pub fn create_element(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<Attribute>,
    ) -> NodeId {
        self.push_node(NodeKind::Element {
            name: name.into(),
            attributes,
        })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Text(text.into()))
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("document too large"));
        self.nodes.push(Node {
            kind,
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Appends `child` (which must be detached) to `parent`'s children.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(
            self.nodes[child.index()].parent.is_none(),
            "child already attached"
        );
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Deterministic bytes owned by one node (its strings and attribute
    /// payloads plus the node struct), excluding the child-pointer vector
    /// so the value is identical at allocation and free time. Used for
    /// buffer accounting.
    pub fn node_heap_bytes(&self, id: NodeId) -> usize {
        self.nodes[id.index()].content_bytes() + std::mem::size_of::<Node>()
    }

    /// Resets a node for reuse: clears parent and children and replaces the
    /// payload. Used by the runtime's buffer arena to recycle freed slots;
    /// the caller is responsible for ensuring nothing references `id`.
    pub fn reset_node(&mut self, id: NodeId, kind: NodeKind) {
        let node = &mut self.nodes[id.index()];
        node.kind = kind;
        node.parent = None;
        node.children = Vec::new();
    }

    /// Appends text to an existing text node (buffer population merges
    /// adjacent text chunks); returns false if the node is not a text node.
    pub fn append_to_text(&mut self, id: NodeId, more: &str) -> bool {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text(t) => {
                t.push_str(more);
                true
            }
            _ => false,
        }
    }

    /// Parses a complete document from a reader.
    pub fn parse_reader<R: Read>(reader: &mut XmlReader<R>) -> Result<Document> {
        let mut builder = TreeBuilder::new();
        loop {
            let ev = reader.next_event()?;
            if ev == XmlEvent::EndDocument {
                return builder.finish();
            }
            builder.event(&ev)?;
        }
    }

    /// Parses a complete document from a string.
    pub fn parse_str(input: &str) -> Result<Document> {
        let mut reader = XmlReader::new(input.as_bytes());
        Self::parse_reader(&mut reader)
    }

    /// Serialises the subtree rooted at `id` to the writer.
    pub fn serialize_node<W: std::io::Write>(
        &self,
        id: NodeId,
        writer: &mut XmlWriter<W>,
    ) -> Result<()> {
        match self.kind(id) {
            NodeKind::Document => {
                for &c in self.children(id) {
                    self.serialize_node(c, writer)?;
                }
                Ok(())
            }
            NodeKind::Element { name, attributes } => {
                writer.start_element(name, attributes)?;
                for &c in self.children(id) {
                    self.serialize_node(c, writer)?;
                }
                writer.end_element()
            }
            NodeKind::Text(t) => writer.text(t),
        }
    }

    /// Serialises the whole document to a string.
    pub fn to_xml_string(&self) -> Result<String> {
        let mut writer = XmlWriter::new(Vec::new());
        self.serialize_node(self.document_node(), &mut writer)?;
        writer.finish()?;
        String::from_utf8(writer.into_inner()).map_err(|_| XmlError::WriterMisuse {
            message: "serialiser produced invalid UTF-8".to_string(),
        })
    }
}

/// Incremental tree construction from a stream of events.
///
/// Also usable for fragments: feed any balanced event sequence; the nodes end
/// up as children of the virtual document node.
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    pub fn new() -> Self {
        let doc = Document::new();
        let root = doc.document_node();
        TreeBuilder {
            doc,
            stack: vec![root],
        }
    }

    /// Current insertion parent.
    fn top(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Opens an element node (shared by both event representations).
    fn start_node(&mut self, name: &str, attributes: Vec<Attribute>) {
        let id = self.doc.create_element(name, attributes);
        let parent = self.top();
        self.doc.append_child(parent, id);
        self.stack.push(id);
    }

    /// Closes the innermost open element.
    fn end_node(&mut self) -> Result<()> {
        if self.stack.len() <= 1 {
            return Err(XmlError::WriterMisuse {
                message: "unbalanced end element fed to TreeBuilder".to_string(),
            });
        }
        self.stack.pop();
        Ok(())
    }

    /// Appends text, merging with a preceding text sibling to keep string
    /// values independent of how the input was chunked.
    fn text_node(&mut self, t: &str) {
        let parent = self.top();
        if let Some(&last) = self.doc.children(parent).last() {
            if let NodeKind::Text(existing) = &mut self.doc.nodes[last.index()].kind {
                existing.push_str(t);
                return;
            }
        }
        let id = self.doc.create_text(t);
        self.doc.append_child(parent, id);
    }

    /// Feeds one event into the tree.
    pub fn event(&mut self, ev: &XmlEvent) -> Result<()> {
        match ev {
            XmlEvent::StartDocument
            | XmlEvent::EndDocument
            | XmlEvent::DoctypeDecl { .. }
            | XmlEvent::Comment(_)
            | XmlEvent::ProcessingInstruction { .. } => Ok(()),
            XmlEvent::StartElement { name, attributes } => {
                self.start_node(name, attributes.clone());
                Ok(())
            }
            XmlEvent::EndElement { .. } => self.end_node(),
            XmlEvent::Text(t) => {
                self.text_node(t);
                Ok(())
            }
        }
    }

    /// Feeds one raw (interned) event, mapping names back through
    /// `symbols`. Materialising a tree inherently copies names and text,
    /// so this allocates exactly what the owned-event path does minus the
    /// intermediate event itself.
    pub fn raw_event(&mut self, symbols: &SymbolTable, ev: &RawEvent) -> Result<()> {
        match ev.kind() {
            RawEventKind::StartDocument
            | RawEventKind::EndDocument
            | RawEventKind::DoctypeDecl
            | RawEventKind::Comment
            | RawEventKind::ProcessingInstruction => Ok(()),
            RawEventKind::StartElement => {
                self.start_node(
                    symbols.name(ev.name()),
                    ev.attributes()
                        .iter()
                        .map(|a| a.to_attribute(symbols))
                        .collect(),
                );
                Ok(())
            }
            RawEventKind::EndElement => self.end_node(),
            RawEventKind::Text => {
                self.text_node(ev.text());
                Ok(())
            }
        }
    }

    /// Completes the build; fails if elements are still open.
    pub fn finish(self) -> Result<Document> {
        if self.stack.len() != 1 {
            return Err(XmlError::WriterMisuse {
                message: format!(
                    "{} element(s) still open in TreeBuilder",
                    self.stack.len() - 1
                ),
            });
        }
        Ok(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author><author>Wright</author></book><book year="2000"><title>Data</title></book></bib>"#;

    #[test]
    fn parse_and_navigate() {
        let doc = Document::parse_str(BIB).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), Some("bib"));
        let books: Vec<_> = doc.children_named(root, "book").collect();
        assert_eq!(books.len(), 2);
        assert_eq!(doc.attribute(books[0], "year"), Some("1994"));
        let authors: Vec<_> = doc.children_named(books[0], "author").collect();
        assert_eq!(authors.len(), 2);
        assert_eq!(doc.string_value(authors[0]), "Stevens");
    }

    #[test]
    fn string_value_concatenates() {
        let doc = Document::parse_str("<a>one<b>two</b>three</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.string_value(root), "onetwothree");
    }

    #[test]
    fn round_trip() {
        let doc = Document::parse_str(BIB).unwrap();
        assert_eq!(doc.to_xml_string().unwrap(), BIB);
    }

    #[test]
    fn parent_links() {
        let doc = Document::parse_str("<a><b><c/></b></a>").unwrap();
        let a = doc.root_element().unwrap();
        let b = doc.children(a)[0];
        let c = doc.children(b)[0];
        assert_eq!(doc.parent(c), Some(b));
        assert_eq!(doc.parent(b), Some(a));
        assert_eq!(doc.parent(a), Some(doc.document_node()));
        assert_eq!(doc.parent(doc.document_node()), None);
    }

    #[test]
    fn memory_accounting_grows_with_content() {
        let small = Document::parse_str("<a/>").unwrap();
        let big = Document::parse_str(&format!("<a>{}</a>", "x".repeat(10_000))).unwrap();
        assert!(big.memory_bytes() > small.memory_bytes() + 9_000);
    }

    #[test]
    fn builder_fragment() {
        let mut b = TreeBuilder::new();
        b.event(&XmlEvent::StartElement {
            name: "x".into(),
            attributes: vec![],
        })
        .unwrap();
        b.event(&XmlEvent::Text("hi".into())).unwrap();
        b.event(&XmlEvent::EndElement { name: "x".into() }).unwrap();
        b.event(&XmlEvent::StartElement {
            name: "y".into(),
            attributes: vec![],
        })
        .unwrap();
        b.event(&XmlEvent::EndElement { name: "y".into() }).unwrap();
        let doc = b.finish().unwrap();
        assert_eq!(doc.children(doc.document_node()).len(), 2);
    }

    #[test]
    fn builder_merges_adjacent_text() {
        let mut b = TreeBuilder::new();
        b.event(&XmlEvent::StartElement {
            name: "x".into(),
            attributes: vec![],
        })
        .unwrap();
        b.event(&XmlEvent::Text("a".into())).unwrap();
        b.event(&XmlEvent::Text("b".into())).unwrap();
        b.event(&XmlEvent::EndElement { name: "x".into() }).unwrap();
        let doc = b.finish().unwrap();
        let x = doc.root_element().unwrap();
        assert_eq!(doc.children(x).len(), 1);
        assert_eq!(doc.string_value(x), "ab");
    }

    #[test]
    fn builder_unbalanced_rejected() {
        let mut b = TreeBuilder::new();
        assert!(b.event(&XmlEvent::EndElement { name: "x".into() }).is_err());
        let mut b2 = TreeBuilder::new();
        b2.event(&XmlEvent::StartElement {
            name: "x".into(),
            attributes: vec![],
        })
        .unwrap();
        assert!(b2.finish().is_err());
    }

    #[test]
    fn detached_create_and_append() {
        let mut doc = Document::new();
        let e = doc.create_element("root", vec![Attribute::new("k", "v")]);
        let t = doc.create_text("body");
        let docnode = doc.document_node();
        doc.append_child(docnode, e);
        doc.append_child(e, t);
        assert_eq!(doc.to_xml_string().unwrap(), r#"<root k="v">body</root>"#);
    }

    #[test]
    fn root_element_skips_nothing_but_finds_element() {
        let doc = Document::parse_str("<only/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("only"));
    }
}
