//! Pipelined-error equality: a document with a mid-stream **validity**
//! error (well-formed XML that violates the DTD) must yield the identical
//! error, the identical error *position* (offset, line and column), and
//! the identical partial event stream — prefix events and on-first fires —
//! under the sequential reader, join-then-replay sharding and pipelined
//! sharding, at every shard count.
//!
//! This is the acceptance bar for overlapping validation with parsing:
//! the consumer may start validating shard *i* while shards *i+1..N* are
//! still being parsed, but nothing observable may move.

use flux_dtd::Dtd;
use flux_shard::{ReplayMode, ShardConfig, ShardedReader};
use flux_xml::{EventSource, Position, RawEvent, XmlError, XmlEvent, XmlReader};
use flux_xmlgen::{bib_string, corpus, BibConfig};
use flux_xsax::{seeded_symbols, XsaxConfig, XsaxError, XsaxParser, XsaxStep};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// One delivered step, owned for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Sax(XmlEvent),
    Fire { id: u32, depth: usize },
}

/// Drives XSAX to completion or failure, returning the delivered prefix
/// and the terminal error (if any).
fn drive<S: EventSource>(
    mut parser: XsaxParser<'_, S>,
    past: Option<(flux_dtd::Symbol, flux_xsax::PastLabels)>,
) -> (Vec<Step>, Option<XsaxError>) {
    if let Some((element, labels)) = past {
        parser.register_past(element, labels).expect("register");
    }
    let mut steps = Vec::new();
    loop {
        match parser.next_step() {
            Ok(Some(XsaxStep::Sax)) => {
                steps.push(Step::Sax(parser.view().to_xml_event(parser.symbols())));
            }
            Ok(Some(XsaxStep::Fire { id, depth })) => steps.push(Step::Fire { id: id.0, depth }),
            Ok(None) => return (steps, None),
            Err(e) => return (steps, Some(e)),
        }
    }
}

/// The position inside a validation error.
fn error_position(err: &XsaxError) -> Option<Position> {
    match err {
        XsaxError::Validation { pos, .. } => Some(*pos),
        _ => None,
    }
}

/// Runs the document through all three paths and asserts byte-for-byte
/// agreement of prefix, error message and error position.
fn assert_modes_agree(doc: &str, dtd: &Dtd, with_past: bool) {
    let past = with_past.then(|| {
        let book = dtd.lookup("book").expect("book");
        let title = dtd.lookup("title").expect("title");
        let author = dtd.lookup("author").expect("author");
        (book, flux_xsax::PastLabels::labels([title, author]))
    });
    let (seq_steps, seq_err) = drive(
        XsaxParser::new(doc.as_bytes(), dtd).expect("sequential parser"),
        past.clone(),
    );
    for shards in SHARD_COUNTS {
        for mode in [ReplayMode::Joined, ReplayMode::Pipelined] {
            let mut config = ShardConfig::new(shards);
            config.min_shard_bytes = 1;
            config.mode = mode;
            let source =
                ShardedReader::with_symbols(doc.as_bytes().to_vec(), config, seeded_symbols(dtd));
            let parser =
                XsaxParser::from_source(source, dtd, XsaxConfig::default()).expect("from_source");
            let (steps, err) = drive(parser, past.clone());
            assert_eq!(
                steps, seq_steps,
                "partial stream diverged ({shards} shards, {mode:?})"
            );
            match (&seq_err, &err) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "error diverged ({shards} shards, {mode:?})"
                    );
                    assert_eq!(
                        error_position(a),
                        error_position(b),
                        "error position (incl. offset) diverged ({shards} shards, {mode:?})"
                    );
                }
                (a, b) => panic!("verdicts diverged ({shards} shards, {mode:?}): {a:?} vs {b:?}"),
            }
        }
    }
}

/// Replaces the `n`-th occurrence of `needle` in `doc` with `with`,
/// wrapping `n` by the occurrence count.
fn corrupt_nth(doc: &str, needle: &str, with: &str, n: usize) -> Option<String> {
    let occurrences = doc.matches(needle).count();
    if occurrences == 0 {
        return None;
    }
    let n = n % occurrences;
    let mut at = 0;
    for _ in 0..=n {
        at = doc[at..].find(needle)? + at + 1;
    }
    let at = at - 1;
    let mut out = String::with_capacity(doc.len() + with.len());
    out.push_str(&doc[..at]);
    out.push_str(with);
    out.push_str(&doc[at + needle.len()..]);
    Some(out)
}

/// Drains a raw event source to completion or its first error.
fn parse_to_error<S: EventSource>(mut source: S) -> Option<XmlError> {
    let mut ev = RawEvent::new();
    loop {
        match source.next_into(&mut ev) {
            Ok(true) => {}
            Ok(false) => return None,
            Err(e) => return Some(e),
        }
    }
}

/// Parse-level counterpart of [`assert_modes_agree`]: every entry of the
/// seeded malformed-input corpus must fail with the identical error
/// message and the byte-exact sequential position — offset, line *and*
/// column — under every shard count and both replay modes.
#[test]
fn corpus_errors_byte_exact_across_shard_counts() {
    let entries = corpus();
    assert!(entries.len() >= 20, "corpus shrank to {}", entries.len());
    for entry in &entries {
        let seq_err = parse_to_error(XmlReader::new(entry.bytes.as_slice()))
            .unwrap_or_else(|| panic!("corpus entry `{}` parsed cleanly", entry.id));
        entry.check_error(&seq_err);
        let seq_pos = seq_err
            .position()
            .unwrap_or_else(|| panic!("corpus entry `{}`: error without position", entry.id));
        for shards in SHARD_COUNTS {
            for mode in [ReplayMode::Joined, ReplayMode::Pipelined] {
                let mut config = ShardConfig::new(shards);
                config.min_shard_bytes = 1;
                config.mode = mode;
                let err = parse_to_error(ShardedReader::new(entry.bytes.clone(), config))
                    .unwrap_or_else(|| {
                        panic!(
                            "corpus entry `{}` parsed cleanly ({shards} shards, {mode:?})",
                            entry.id
                        )
                    });
                assert_eq!(
                    err.to_string(),
                    seq_err.to_string(),
                    "corpus entry `{}`: error message diverged ({shards} shards, {mode:?})",
                    entry.id
                );
                assert_eq!(
                    err.position(),
                    Some(seq_pos),
                    "corpus entry `{}`: error position diverged ({shards} shards, {mode:?})",
                    entry.id
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// A mid-stream order violation (a `price` arriving before `title`)
    /// under the Fig. 1 DTD: identical error, position and prefix in all
    /// three modes, with on-first registrations active.
    #[test]
    fn validity_error_identical_across_modes(
        seed in 0u64..1_000_000,
        books in 5usize..60,
        corrupt_at in 0usize..60,
    ) {
        let dtd = Dtd::parse(flux_dtd::PAPER_FIG1_DTD).expect("dtd");
        let valid = bib_string(&BibConfig::fig1(books, seed));
        let invalid = corrupt_nth(&valid, "<title>", "<price>9</price><title>", corrupt_at)
            .expect("generated bibs contain titles");
        assert_modes_agree(&invalid, &dtd, true);
        // And the uncorrupted document agrees end to end as well.
        assert_modes_agree(&valid, &dtd, true);
    }

    /// An undeclared element appearing mid-stream.
    #[test]
    fn undeclared_element_identical_across_modes(
        seed in 0u64..1_000_000,
        books in 5usize..40,
        corrupt_at in 0usize..40,
    ) {
        let dtd = Dtd::parse(flux_dtd::PAPER_FIG1_DTD).expect("dtd");
        let valid = bib_string(&BibConfig::fig1(books, seed));
        let invalid = corrupt_nth(&valid, "<author>", "<pamphlet>x</pamphlet><author>", corrupt_at)
            .expect("generated bibs contain authors");
        assert_modes_agree(&invalid, &dtd, false);
    }
}
