//! Errors of the FluX compilation pipeline.

use flux_xquery::XQueryError;
use std::fmt;

#[derive(Debug)]
pub enum FluxError {
    /// Frontend error (parse/normalize).
    XQuery(XQueryError),
    /// The scheduler could not produce a plan (internal invariant broken —
    /// scheduling itself always succeeds by falling back to buffering).
    Schedule { message: String },
    /// The produced FluX query failed the independent safety check against
    /// the DTD. This indicates a scheduler bug and is always reported
    /// rather than silently producing wrong answers.
    Unsafe { message: String },
}

impl fmt::Display for FluxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluxError::XQuery(e) => write!(f, "{e}"),
            FluxError::Schedule { message } => write!(f, "scheduling error: {message}"),
            FluxError::Unsafe { message } => write!(f, "unsafe FluX query: {message}"),
        }
    }
}

impl std::error::Error for FluxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FluxError::XQuery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XQueryError> for FluxError {
    fn from(e: XQueryError) -> Self {
        FluxError::XQuery(e)
    }
}

pub type Result<T> = std::result::Result<T, FluxError>;
