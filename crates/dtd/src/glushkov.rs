//! Glushkov (position automaton) construction for content models.
//!
//! Each `Name` occurrence in a particle becomes a *position*; the automaton
//! has one state per position plus a start state. XML requires content
//! models to be deterministic ("1-unambiguous"), in which case the Glushkov
//! automaton is already a DFA, but we run subset construction afterwards
//! ([`crate::dfa`]) so non-deterministic models are still handled correctly.

use crate::content_model::Particle;
use crate::symbol::Symbol;
use std::collections::BTreeSet;

/// The Glushkov decomposition of a particle.
#[derive(Debug, Clone)]
pub struct Glushkov {
    /// Symbol at each position (positions are 0-based).
    pub position_symbols: Vec<Symbol>,
    /// Whether the empty word is accepted.
    pub nullable: bool,
    /// Positions that can start a word.
    pub first: BTreeSet<usize>,
    /// Positions that can end a word.
    pub last: BTreeSet<usize>,
    /// `follow[p]` = positions that may directly follow position `p`.
    pub follow: Vec<BTreeSet<usize>>,
}

struct Builder {
    position_symbols: Vec<Symbol>,
    follow: Vec<BTreeSet<usize>>,
}

/// Per-subexpression facts computed bottom-up.
struct Facts {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

impl Builder {
    fn build(&mut self, p: &Particle) -> Facts {
        match p {
            Particle::Epsilon => Facts {
                nullable: true,
                first: BTreeSet::new(),
                last: BTreeSet::new(),
            },
            Particle::Name(sym) => {
                let pos = self.position_symbols.len();
                self.position_symbols.push(*sym);
                self.follow.push(BTreeSet::new());
                Facts {
                    nullable: false,
                    first: BTreeSet::from([pos]),
                    last: BTreeSet::from([pos]),
                }
            }
            Particle::Seq(parts) => {
                let mut acc = Facts {
                    nullable: true,
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                };
                for part in parts {
                    let f = self.build(part);
                    // follow: every last of the accumulated prefix connects
                    // to every first of this part.
                    for &l in &acc.last {
                        for &fst in &f.first {
                            self.follow[l].insert(fst);
                        }
                    }
                    let new_first = if acc.nullable {
                        acc.first.union(&f.first).copied().collect()
                    } else {
                        acc.first
                    };
                    let new_last = if f.nullable {
                        acc.last.union(&f.last).copied().collect()
                    } else {
                        f.last
                    };
                    acc = Facts {
                        nullable: acc.nullable && f.nullable,
                        first: new_first,
                        last: new_last,
                    };
                }
                acc
            }
            Particle::Choice(parts) => {
                let mut acc = Facts {
                    nullable: false,
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                };
                for part in parts {
                    let f = self.build(part);
                    acc.nullable |= f.nullable;
                    acc.first.extend(f.first);
                    acc.last.extend(f.last);
                }
                acc
            }
            Particle::Opt(inner) => {
                let f = self.build(inner);
                Facts {
                    nullable: true,
                    ..f
                }
            }
            Particle::Star(inner) => {
                let f = self.build(inner);
                for &l in &f.last {
                    for &fst in &f.first {
                        self.follow[l].insert(fst);
                    }
                }
                Facts {
                    nullable: true,
                    ..f
                }
            }
            Particle::Plus(inner) => {
                let f = self.build(inner);
                for &l in &f.last {
                    for &fst in &f.first {
                        self.follow[l].insert(fst);
                    }
                }
                Facts {
                    nullable: f.nullable,
                    ..f
                }
            }
        }
    }
}

/// Computes the Glushkov decomposition of `particle`.
pub fn glushkov(particle: &Particle) -> Glushkov {
    let mut builder = Builder {
        position_symbols: Vec::new(),
        follow: Vec::new(),
    };
    let facts = builder.build(particle);
    Glushkov {
        position_symbols: builder.position_symbols,
        nullable: facts.nullable,
        first: facts.first,
        last: facts.last,
        follow: builder.follow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn syms() -> (SymbolTable, Symbol, Symbol, Symbol) {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn single_name() {
        let (_, a, _, _) = syms();
        let g = glushkov(&Particle::Name(a));
        assert!(!g.nullable);
        assert_eq!(g.first, BTreeSet::from([0]));
        assert_eq!(g.last, BTreeSet::from([0]));
        assert!(g.follow[0].is_empty());
    }

    #[test]
    fn epsilon() {
        let g = glushkov(&Particle::Epsilon);
        assert!(g.nullable);
        assert!(g.first.is_empty());
        assert!(g.last.is_empty());
        assert!(g.position_symbols.is_empty());
    }

    #[test]
    fn sequence_follow_links() {
        let (_, a, b, _) = syms();
        // (a, b): follow(a-pos) = {b-pos}
        let g = glushkov(&Particle::Seq(vec![Particle::Name(a), Particle::Name(b)]));
        assert!(!g.nullable);
        assert_eq!(g.first, BTreeSet::from([0]));
        assert_eq!(g.last, BTreeSet::from([1]));
        assert_eq!(g.follow[0], BTreeSet::from([1]));
        assert!(g.follow[1].is_empty());
    }

    #[test]
    fn star_loops_back() {
        let (_, a, _, _) = syms();
        let g = glushkov(&Particle::Star(Box::new(Particle::Name(a))));
        assert!(g.nullable);
        assert_eq!(g.follow[0], BTreeSet::from([0]));
    }

    #[test]
    fn plus_not_nullable() {
        let (_, a, _, _) = syms();
        let g = glushkov(&Particle::Plus(Box::new(Particle::Name(a))));
        assert!(!g.nullable);
        assert_eq!(g.follow[0], BTreeSet::from([0]));
    }

    #[test]
    fn choice_unions() {
        let (_, a, b, _) = syms();
        let g = glushkov(&Particle::Choice(vec![
            Particle::Name(a),
            Particle::Name(b),
        ]));
        assert!(!g.nullable);
        assert_eq!(g.first, BTreeSet::from([0, 1]));
        assert_eq!(g.last, BTreeSet::from([0, 1]));
    }

    #[test]
    fn optional_sequence_head() {
        let (_, a, b, _) = syms();
        // (a?, b): first = {a-pos, b-pos}
        let g = glushkov(&Particle::Seq(vec![
            Particle::Opt(Box::new(Particle::Name(a))),
            Particle::Name(b),
        ]));
        assert_eq!(g.first, BTreeSet::from([0, 1]));
        assert_eq!(g.last, BTreeSet::from([1]));
        assert!(!g.nullable);
    }

    #[test]
    fn fig1_book_model() {
        // (title, (author+ | editor+), publisher, price)
        let mut t = SymbolTable::new();
        let title = t.intern("title");
        let author = t.intern("author");
        let editor = t.intern("editor");
        let publisher = t.intern("publisher");
        let price = t.intern("price");
        let p = Particle::Seq(vec![
            Particle::Name(title),
            Particle::Choice(vec![
                Particle::Plus(Box::new(Particle::Name(author))),
                Particle::Plus(Box::new(Particle::Name(editor))),
            ]),
            Particle::Name(publisher),
            Particle::Name(price),
        ]);
        let g = glushkov(&p);
        assert_eq!(
            g.position_symbols,
            vec![title, author, editor, publisher, price]
        );
        assert!(!g.nullable);
        assert_eq!(g.first, BTreeSet::from([0]));
        // title is followed by author or editor
        assert_eq!(g.follow[0], BTreeSet::from([1, 2]));
        // author loops to itself or moves to publisher (no editor!)
        assert_eq!(g.follow[1], BTreeSet::from([1, 3]));
        // editor loops to itself or moves to publisher (no author!)
        assert_eq!(g.follow[2], BTreeSet::from([2, 3]));
        assert_eq!(g.follow[3], BTreeSet::from([4]));
        assert_eq!(g.last, BTreeSet::from([4]));
    }
}
