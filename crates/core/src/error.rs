//! Unified error type for the public API.

use std::fmt;

#[derive(Debug)]
pub enum Error {
    /// DTD parsing or schema construction failed.
    Dtd(flux_dtd::DtdError),
    /// Query compilation failed (parse, normalize, schedule, safety).
    Compile(flux_lang::FluxError),
    /// Execution failed (validation, evaluation, output).
    Runtime(flux_runtime::RuntimeError),
    /// A baseline engine failed.
    Baseline(flux_baseline::BaselineError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dtd(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dtd(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Baseline(e) => Some(e),
        }
    }
}

impl From<flux_dtd::DtdError> for Error {
    fn from(e: flux_dtd::DtdError) -> Self {
        Error::Dtd(e)
    }
}

impl From<flux_lang::FluxError> for Error {
    fn from(e: flux_lang::FluxError) -> Self {
        Error::Compile(e)
    }
}

impl From<flux_runtime::RuntimeError> for Error {
    fn from(e: flux_runtime::RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<flux_baseline::BaselineError> for Error {
    fn from(e: flux_baseline::BaselineError) -> Self {
        Error::Baseline(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;
