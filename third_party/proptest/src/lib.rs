//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the surface the workspace's property tests use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`]
//! macros, [`strategy::Strategy`] with integer-range, string, [`strategy::Just`]
//! and union strategies, `any::<bool>()`, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics differ from real proptest in two deliberate ways (see
//! `third_party/README.md`): cases are drawn from a deterministic per-test
//! RNG (no persistence files), and there is **no shrinking** — a failing
//! case panics immediately with its case index so it can be replayed.

/// Strategy trait and the concrete strategies the workspace uses.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Character pool for string strategies: printable ASCII including every
    /// markup-significant character, plus a spread of multi-byte Unicode.
    /// Control characters are excluded, which is exactly the `\PC` class the
    /// in-repo patterns ask for.
    const STRING_POOL: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', ' ', '<', '>', '&', '"', '\'', ';',
        '=', '-', '_', '.', ',', '/', '#', '%', '[', ']', '(', ')', 'é', 'ß', 'λ', 'Ж', '中', '✓',
        '🦀',
    ];

    impl Strategy for &str {
        type Value = String;

        /// String-pattern strategy. The pattern is interpreted loosely: any
        /// pattern samples strings of length 0..=24 over a fixed pool of
        /// printable/markup-significant/Unicode characters, which satisfies
        /// the `"\\PC*"` (no-control-characters) class used by this
        /// workspace's tests.
        fn sample(&self, rng: &mut TestRng) -> String {
            let len = (rng.next_u64() % 25) as usize;
            (0..len)
                .map(|_| STRING_POOL[(rng.next_u64() as usize) % STRING_POOL.len()])
                .collect()
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies with a common value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() as usize) % self.options.len();
            self.options[idx].sample(rng)
        }
    }

    /// A strategy for "any value" of a type (see [`crate::arbitrary::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` support for the types the workspace samples.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy returned by [`any`].
        type Strategy: crate::strategy::Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyStrategy<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyStrategy(core::marker::PhantomData)
        }
    }

    /// Returns the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Test-runner configuration, RNG and error type.
pub mod test_runner {
    /// Configuration block accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed with the contained message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(message) => f.write_str(message),
            }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for one named test case: the stream is a pure
        /// function of `(test name, case index)`, so failures replay exactly.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for byte in test_name.bytes() {
                state ^= u64::from(byte);
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: state ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Returns the next word in the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Each `fn` runs `config.cases` deterministic
/// cases; the body may use `prop_assert!`-family macros and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Uniform choice between strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
