//! Proof of the cursor evaluator's zero-allocation contract: once a query
//! is compiled (symbols resolved, slots numbered) and the evaluator's
//! pools are warm, repeatedly evaluating the compiled expression over a
//! buffered document — path cursors, a predicate, an attribute template
//! and element construction — performs **no heap allocations at all**.
//!
//! This is the steady state of the runtime's `on`-handler bodies: the
//! descent stacks, per-step symbol vectors, atomization scratch and
//! attribute buffers all recycle through the evaluator's pools, and the
//! [`CountingSink`] consumes the constructed output without writing.
//!
//! One test per file: no concurrent test can perturb the counter.

// The counting allocator is the one place the test needs `unsafe`: it
// wraps `System` one-to-one and adds a relaxed atomic increment.
#![allow(unsafe_code)]

use flux_runtime::BufferArena;
use flux_xml::SymbolTable;
use flux_xquery::{
    compile_expr, normalize, parse_query, CountingSink, CursorEvaluator, SlotMap, ROOT_VAR,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth counts as an allocation: a pooled buffer that has to
        // regrow per evaluation would be a real per-eval heap cost.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_cursor_evaluation_is_allocation_free() {
    // A buffered "bib" with two books — the shape an `on-first` handler
    // holds when its body runs.
    let mut arena = BufferArena::with_symbols(SymbolTable::new());
    let bib = arena.create_element("bib", &[]);
    for (title, author, price) in [
        ("TCP/IP Illustrated", "Stevens, W. Richard", "65.95"),
        ("Data on the Web", "Abiteboul, Serge", "39.95"),
    ] {
        let book = arena.append_element(bib, "book", &[]);
        let t = arena.append_element(book, "title", &[]);
        arena.append_text(t, title);
        let a = arena.append_element(book, "author", &[]);
        arena.append_text(a, author);
        let p = arena.append_element(book, "price", &[]);
        arena.append_text(p, price);
    }

    // Compile once against the document's table: every step matches by
    // integer symbol, the attribute template and predicate exercise the
    // atomization scratch.
    let query = r#"<results>{ for $b in $ROOT/book
        where $b/price < "50"
        return <hit t="{$b/title}">{$b/author/text()}</hit> }</results>"#;
    let parsed = parse_query(query).unwrap();
    let normalized = normalize(&parsed).unwrap();
    let mut slots = SlotMap::new();
    let root_slot = slots.slot(ROOT_VAR);
    let compiled = compile_expr(&normalized, &mut slots, &mut |label| {
        arena.doc().symbols().lookup(label)
    })
    .unwrap();

    let mut slots = slots.make_slots();
    slots[root_slot] = Some(bib);
    let mut evaluator = CursorEvaluator::new();

    // Warm-up: pools reach their final capacities.
    for _ in 0..8 {
        let mut sink = CountingSink::default();
        evaluator
            .eval(arena.doc(), &compiled, &mut slots, &mut sink)
            .unwrap();
        assert!(sink.bytes > 0 && sink.events > 0);
    }

    // Minimum over several measured windows: the global counter also sees
    // the test harness's own threads, so a single window can pick up a
    // stray allocation. A real per-eval cost repeats in every window.
    let allocations = (0..5)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..500 {
                let mut sink = CountingSink::default();
                evaluator
                    .eval(arena.doc(), &compiled, &mut slots, &mut sink)
                    .unwrap();
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap();
    assert_eq!(
        allocations, 0,
        "steady-state cursor evaluation must not allocate (cursors, scratch \
         strings and attribute buffers recycle); got {allocations} allocations \
         over 500 evaluations"
    );
}
