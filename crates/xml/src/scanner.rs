//! Low-level incremental byte scanner used by the XML reader.
//!
//! Maintains a small refillable window over the underlying [`Read`] so the
//! reader never materialises the whole input — memory use is bounded by the
//! longest single token (tag, text run, comment), not by document size.

use crate::error::{Position, Result, XmlError};
use crate::scan::{count_byte_with_last, find_byte, find_subslice};
use std::io::Read;

const CHUNK: usize = 8 * 1024;

/// Incremental scanner with single-byte and small-slice lookahead.
pub struct Scanner<R: Read> {
    src: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    eof: bool,
    offset: u64,
    line: u32,
    column: u32,
}

impl<R: Read> Scanner<R> {
    pub fn new(src: R) -> Self {
        Scanner {
            src,
            buf: vec![0; CHUNK],
            start: 0,
            end: 0,
            eof: false,
            offset: 0,
            line: 1,
            column: 1,
        }
    }

    /// Current position (next unread byte).
    pub fn position(&self) -> Position {
        Position {
            offset: self.offset,
            line: self.line,
            column: self.column,
        }
    }

    fn available(&self) -> usize {
        self.end - self.start
    }

    /// Ensures at least `n` unread bytes are buffered, or EOF was reached.
    fn fill(&mut self, n: usize) -> Result<()> {
        if self.available() >= n || self.eof {
            return Ok(());
        }
        // Compact the consumed prefix away.
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < n {
            self.buf.resize(n.max(CHUNK), 0);
        }
        while self.available() < n && !self.eof {
            if self.end == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            let read = self.src.read(&mut self.buf[self.end..])?;
            if read == 0 {
                self.eof = true;
            } else {
                self.end += read;
            }
        }
        Ok(())
    }

    /// Next byte without consuming it.
    pub fn peek(&mut self) -> Result<Option<u8>> {
        self.fill(1)?;
        Ok(if self.available() == 0 {
            None
        } else {
            Some(self.buf[self.start])
        })
    }

    /// Up to `n` upcoming bytes without consuming them (shorter at EOF).
    pub fn peek_slice(&mut self, n: usize) -> Result<&[u8]> {
        self.fill(n)?;
        let len = self.available().min(n);
        Ok(&self.buf[self.start..self.start + len])
    }

    /// True if the upcoming bytes start with `s` (without consuming).
    pub fn looking_at(&mut self, s: &[u8]) -> Result<bool> {
        Ok(self.peek_slice(s.len())? == s)
    }

    fn advance_position(&mut self, b: u8) {
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }

    /// Position bookkeeping for a whole consumed run `buf[from..to]` at
    /// once: one SWAR newline count instead of a per-byte loop.
    fn advance_span(&mut self, from: usize, to: usize) {
        self.offset += (to - from) as u64;
        let (newlines, last) = count_byte_with_last(&self.buf[from..to], b'\n');
        if let Some(last) = last {
            self.line += newlines as u32;
            self.column = (to - (from + last)) as u32;
        } else {
            self.column += (to - from) as u32;
        }
    }

    /// Consumes and returns the next byte.
    pub fn next_byte(&mut self) -> Result<Option<u8>> {
        self.fill(1)?;
        if self.available() == 0 {
            return Ok(None);
        }
        let b = self.buf[self.start];
        self.start += 1;
        self.advance_position(b);
        Ok(Some(b))
    }

    /// Consumes `s`, which must be the upcoming input (checked with
    /// `looking_at` by the caller or enforced here).
    pub fn expect_str(&mut self, s: &'static [u8], what: &'static str) -> Result<()> {
        if !self.looking_at(s)? {
            let pos = self.position();
            if self.available() < s.len() && self.eof {
                return Err(XmlError::UnexpectedEof {
                    expected: what,
                    pos,
                });
            }
            return Err(XmlError::Syntax {
                message: format!("expected {what}"),
                pos,
            });
        }
        for _ in 0..s.len() {
            self.next_byte()?;
        }
        Ok(())
    }

    /// Consumes a single expected byte.
    pub fn expect_byte(&mut self, b: u8, what: &'static str) -> Result<()> {
        match self.peek()? {
            Some(got) if got == b => {
                self.next_byte()?;
                Ok(())
            }
            Some(_) => Err(XmlError::Syntax {
                message: format!("expected {what}"),
                pos: self.position(),
            }),
            None => Err(XmlError::UnexpectedEof {
                expected: what,
                pos: self.position(),
            }),
        }
    }

    /// Skips XML whitespace; returns how many bytes were skipped.
    pub fn skip_whitespace(&mut self) -> Result<usize> {
        let mut n = 0;
        while let Some(b) = self.peek()? {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.next_byte()?;
                n += 1;
            } else {
                break;
            }
        }
        Ok(n)
    }

    /// Consumes bytes while `pred` holds, appending them to `out`.
    pub fn read_while(
        &mut self,
        mut pred: impl FnMut(u8) -> bool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        loop {
            self.fill(1)?;
            if self.available() == 0 {
                return Ok(());
            }
            // Scan the buffered window directly for speed.
            let window_len = self.end - self.start;
            let mut taken = 0;
            for i in self.start..self.end {
                if pred(self.buf[i]) {
                    taken += 1;
                } else {
                    break;
                }
            }
            out.extend_from_slice(&self.buf[self.start..self.start + taken]);
            self.advance_span(self.start, self.start + taken);
            self.start += taken;
            if taken < window_len || self.eof && self.available() == 0 {
                return Ok(());
            }
        }
    }

    /// Attempts to consume a whole run up to (not including) `stop`
    /// **without copying**: when the run ends inside the currently
    /// buffered window and at least `lookahead` bytes beyond the stop are
    /// already buffered (or EOF was reached), the run is consumed and its
    /// absolute range in the buffer is returned. The range stays valid as
    /// long as no method refills or compacts the buffer — peeks of up to
    /// `lookahead` bytes are guaranteed not to.
    ///
    /// Returns `None` without consuming anything when the run may cross a
    /// refill boundary; the caller falls back to the copying
    /// [`Scanner::read_until_byte`].
    pub fn borrow_run(&mut self, stop: u8, lookahead: usize) -> Result<Option<(usize, usize)>> {
        self.fill(1)?;
        let window = &self.buf[self.start..self.end];
        let taken = match find_byte(window, stop) {
            // The stop byte and `lookahead` bytes of context are buffered:
            // peeks after the run cannot trigger a refill.
            Some(i) if self.end - (self.start + i) >= lookahead || self.eof => i,
            // No stop byte, but EOF: the window is the whole rest.
            None if self.eof => window.len(),
            _ => return Ok(None),
        };
        let range = (self.start, self.start + taken);
        self.advance_span(range.0, range.1);
        self.start += taken;
        Ok(Some(range))
    }

    /// The bytes behind a range returned by [`Scanner::borrow_run`].
    pub fn borrowed(&self, range: (usize, usize)) -> &[u8] {
        &self.buf[range.0..range.1]
    }

    /// Consumes bytes up to (not including) the next occurrence of `stop`,
    /// appending them to `out`. The SWAR fast path for text runs:
    /// equivalent to `read_while(|b| b != stop, out)`, eight bytes at a
    /// time for both the search and the newline accounting.
    pub fn read_until_byte(&mut self, stop: u8, out: &mut Vec<u8>) -> Result<()> {
        loop {
            self.fill(1)?;
            if self.available() == 0 {
                return Ok(());
            }
            let window_len = self.end - self.start;
            let taken = find_byte(&self.buf[self.start..self.end], stop).unwrap_or(window_len);
            out.extend_from_slice(&self.buf[self.start..self.start + taken]);
            self.advance_span(self.start, self.start + taken);
            self.start += taken;
            if taken < window_len || self.eof && self.available() == 0 {
                return Ok(());
            }
        }
    }

    /// Consumes bytes up to and including the delimiter string `delim`,
    /// appending everything before the delimiter to `out`.
    pub fn read_until(
        &mut self,
        delim: &[u8],
        out: &mut Vec<u8>,
        what: &'static str,
    ) -> Result<()> {
        debug_assert!(!delim.is_empty());
        loop {
            self.fill(delim.len())?;
            if self.available() < delim.len() {
                return Err(XmlError::UnexpectedEof {
                    expected: what,
                    pos: self.position(),
                });
            }
            let window = &self.buf[self.start..self.end];
            match find_subslice(window, delim) {
                Some(at) => {
                    out.extend_from_slice(&self.buf[self.start..self.start + at]);
                    self.advance_span(self.start, self.start + at + delim.len());
                    self.start += at + delim.len();
                    return Ok(());
                }
                None => {
                    // Keep the last delim.len()-1 bytes: they may begin the
                    // delimiter continued in the next chunk.
                    let keep = delim.len() - 1;
                    let consumable = window.len().saturating_sub(keep);
                    out.extend_from_slice(&self.buf[self.start..self.start + consumable]);
                    self.advance_span(self.start, self.start + consumable);
                    self.start += consumable;
                    if self.eof {
                        return Err(XmlError::UnexpectedEof {
                            expected: what,
                            pos: self.position(),
                        });
                    }
                    self.fill(self.available() + 1)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanner(s: &str) -> Scanner<&[u8]> {
        Scanner::new(s.as_bytes())
    }

    #[test]
    fn peek_and_next() {
        let mut sc = scanner("ab");
        assert_eq!(sc.peek().unwrap(), Some(b'a'));
        assert_eq!(sc.next_byte().unwrap(), Some(b'a'));
        assert_eq!(sc.next_byte().unwrap(), Some(b'b'));
        assert_eq!(sc.next_byte().unwrap(), None);
        assert_eq!(sc.peek().unwrap(), None);
    }

    #[test]
    fn position_tracking() {
        let mut sc = scanner("a\nbc");
        sc.next_byte().unwrap();
        sc.next_byte().unwrap();
        let pos = sc.position();
        assert_eq!(pos.line, 2);
        assert_eq!(pos.column, 1);
        assert_eq!(pos.offset, 2);
        sc.next_byte().unwrap();
        assert_eq!(sc.position().column, 2);
    }

    #[test]
    fn looking_at_and_expect() {
        let mut sc = scanner("<!--x-->");
        assert!(sc.looking_at(b"<!--").unwrap());
        assert!(!sc.looking_at(b"<!DO").unwrap());
        sc.expect_str(b"<!--", "comment start").unwrap();
        assert_eq!(sc.peek().unwrap(), Some(b'x'));
    }

    #[test]
    fn read_until_simple() {
        let mut sc = scanner("hello-->rest");
        let mut out = Vec::new();
        sc.read_until(b"-->", &mut out, "comment end").unwrap();
        assert_eq!(out, b"hello");
        assert_eq!(sc.peek().unwrap(), Some(b'r'));
    }

    #[test]
    fn read_until_delimiter_spanning_chunks() {
        // Force the delimiter to straddle refill boundaries by using a large prefix.
        let prefix = "x".repeat(CHUNK * 2 + 3);
        let input = format!("{prefix}-->tail");
        let mut sc = Scanner::new(input.as_bytes());
        let mut out = Vec::new();
        sc.read_until(b"-->", &mut out, "end").unwrap();
        assert_eq!(out.len(), prefix.len());
        assert_eq!(sc.peek().unwrap(), Some(b't'));
    }

    #[test]
    fn read_until_eof_errors() {
        let mut sc = scanner("no delimiter here");
        let mut out = Vec::new();
        let err = sc.read_until(b"-->", &mut out, "comment end").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn read_while_stops_at_boundary() {
        let mut sc = scanner("abc<def");
        let mut out = Vec::new();
        sc.read_while(|b| b != b'<', &mut out).unwrap();
        assert_eq!(out, b"abc");
        assert_eq!(sc.peek().unwrap(), Some(b'<'));
    }

    #[test]
    fn read_until_byte_matches_read_while() {
        let input = "line one\nline two<rest";
        let mut a = scanner(input);
        let mut b = scanner(input);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        a.read_until_byte(b'<', &mut out_a).unwrap();
        b.read_while(|x| x != b'<', &mut out_b).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(a.position(), b.position());
        assert_eq!(a.position().line, 2);
        assert_eq!(a.position().column, 9, "column counted from last newline");
        assert_eq!(a.peek().unwrap(), Some(b'<'));
    }

    #[test]
    fn read_until_byte_spanning_chunks() {
        let prefix = "y\n".repeat(CHUNK);
        let input = format!("{prefix}<tail");
        let mut sc = Scanner::new(input.as_bytes());
        let mut out = Vec::new();
        sc.read_until_byte(b'<', &mut out).unwrap();
        assert_eq!(out.len(), prefix.len());
        assert_eq!(sc.position().line as usize, CHUNK + 1);
        assert_eq!(sc.peek().unwrap(), Some(b'<'));
    }

    #[test]
    fn skip_whitespace_counts() {
        let mut sc = scanner("  \t\n x");
        assert_eq!(sc.skip_whitespace().unwrap(), 5);
        assert_eq!(sc.peek().unwrap(), Some(b'x'));
        assert_eq!(sc.skip_whitespace().unwrap(), 0);
    }
}
