//! # flux_conformance
//!
//! The differential conformance harness: one place that replays every
//! [`flux_bench::Workload`] of the matrix — and every entry of
//! the malformed corpus — through each execution configuration and
//! asserts that **nothing observable moves**:
//!
//! * **Stream tier** ([`assert_stream_equivalent`]): the sequential
//!   [`XmlReader`] versus the sharded reader at shard counts
//!   [`SHARD_COUNTS`], in both replay modes, with the interner unbounded
//!   and capped. The delivered event sequence must be identical, and on
//!   malformed input the terminal error must match **byte-exactly** —
//!   same rendered message, same offset, same line, same column.
//! * **Engine tier** ([`assert_engines_equivalent`]): FluXQuery, the
//!   projection baseline and the DOM baseline over the workload's query.
//!   Output bytes must agree across architectures; for the FluX engine,
//!   output *and* run statistics (peak/total buffer accounting, event
//!   counts) must be invariant across shard counts and interner caps.
//!
//! The harness is a library so the workspace's release `conformance` CI
//! job, the proptest suites and one-off reproductions all drive the same
//! assertions.

use flux_bench::{run_engine_input, run_engine_with};
use flux_shard::{ReplayMode, ShardConfig, ShardedReader};
use flux_xml::{EventSource, Position, RawEvent, ReaderConfig, XmlEvent, XmlReader};
use fluxquery_core::{EngineKind, Input, Options, Parallelism, RunStats};

pub use flux_bench::{workload, workloads, Workload};
pub use flux_xmlgen::{corpus, CorpusEntry};

/// Shard counts every differential assertion covers.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// The tiny interner cap used for the bounded axis: small enough that
/// every workload's vocabulary overflows it, so the cap is genuinely
/// exercised rather than decorative.
pub const TINY_CAP: usize = 8;

/// Everything a raw parse observes: the delivered prefix and how it ended.
#[derive(Debug, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Owned events delivered before success or failure.
    pub events: Vec<XmlEvent>,
    /// Terminal error, rendered, with its exact position.
    pub error: Option<(String, Option<Position>)>,
}

fn drain<S: EventSource>(mut source: S) -> StreamOutcome {
    let mut ev = RawEvent::new();
    let mut events = Vec::new();
    loop {
        match source.next_into(&mut ev) {
            Ok(true) => events.push(ev.to_xml_event(source.symbols())),
            Ok(false) => {
                return StreamOutcome {
                    events,
                    error: None,
                }
            }
            Err(e) => {
                return StreamOutcome {
                    events,
                    error: Some((e.to_string(), e.position())),
                }
            }
        }
    }
}

/// Parses `bytes` with the sequential reader.
pub fn stream_sequential(bytes: &[u8], max_symbols: Option<usize>) -> StreamOutcome {
    drain(XmlReader::with_config(
        bytes,
        ReaderConfig {
            max_symbols,
            ..ReaderConfig::default()
        },
    ))
}

/// Parses `bytes` with the sharded reader.
pub fn stream_sharded(
    bytes: &[u8],
    shards: usize,
    mode: ReplayMode,
    max_symbols: Option<usize>,
) -> StreamOutcome {
    let mut config = ShardConfig::new(shards);
    config.min_shard_bytes = 1; // shard even small documents
    config.mode = mode;
    config.max_symbols = max_symbols;
    drain(ShardedReader::new(bytes.to_vec(), config))
}

/// Asserts the full stream-tier grid on one input: sequential versus
/// sharded × `SHARD_COUNTS` × both replay modes × unbounded/capped
/// interner. Returns the sequential outcome so callers can make further
/// assertions (e.g. against the corpus manifest).
pub fn assert_stream_equivalent(label: &str, bytes: &[u8]) -> StreamOutcome {
    let mut reference = None;
    for cap in [None, Some(TINY_CAP)] {
        let sequential = stream_sequential(bytes, cap);
        // The interner bound itself must be invisible to the event stream.
        if let Some(unbounded) = &reference {
            assert_eq!(
                &sequential, unbounded,
                "{label}: sequential stream changed under max_symbols={TINY_CAP}"
            );
        }
        for shards in SHARD_COUNTS {
            for mode in [ReplayMode::Joined, ReplayMode::Pipelined] {
                let sharded = stream_sharded(bytes, shards, mode, cap);
                assert_eq!(
                    sharded.events.len(),
                    sequential.events.len(),
                    "{label}: prefix length diverged ({shards} shards, {mode:?}, cap {cap:?}): \
                     sequential error {:?}, sharded error {:?}",
                    sequential.error,
                    sharded.error,
                );
                assert_eq!(
                    sharded, sequential,
                    "{label}: stream diverged ({shards} shards, {mode:?}, cap {cap:?})"
                );
            }
        }
        if reference.is_none() {
            reference = Some(sequential);
        }
    }
    reference.expect("loop ran")
}

/// The statistics that must be invariant across execution configurations
/// of the *same* engine (wall-clock time excluded).
pub fn stats_fingerprint(stats: &RunStats) -> (usize, usize, u64, u64, u64) {
    (
        stats.peak_buffer_bytes,
        stats.peak_buffer_nodes,
        stats.total_buffered_bytes,
        stats.output_bytes,
        stats.events,
    )
}

fn options(parallelism: Parallelism, cap: Option<usize>) -> Options {
    let mut o = match cap {
        Some(cap) => Options::with_max_symbols(cap),
        None => Options::new(),
    };
    o.parallelism = parallelism;
    o
}

/// Asserts the engine tier on one workload document: all architectures
/// agree on the output bytes, and the FluX engine's output *and* stats
/// are invariant across shard counts and interner caps. Panics on
/// workloads without a query (stream-tier-only shapes).
pub fn assert_engines_equivalent(w: &Workload, scale: f64, seed: u64) {
    let query = w
        .query
        .unwrap_or_else(|| panic!("workload {} has no engine tier", w.id));
    let dtd = w.dtd.expect("engine-tier workloads declare a DTD");
    let doc = w.document(scale, seed);

    // Reference: FluX, sequential, unbounded.
    let reference = run_engine_with(
        EngineKind::Flux,
        query,
        dtd,
        doc.as_bytes(),
        &options(Parallelism::Sequential, None),
    )
    .unwrap_or_else(|e| panic!("{}: flux sequential failed: {e}", w.id));

    // Architectures agree on the output bytes.
    for kind in [EngineKind::Projection, EngineKind::Dom] {
        let outcome = run_engine_with(
            kind,
            query,
            dtd,
            doc.as_bytes(),
            &options(Parallelism::Sequential, None),
        )
        .unwrap_or_else(|e| panic!("{}: {} failed: {e}", w.id, kind.label()));
        assert_eq!(
            outcome.output,
            reference.output,
            "{}: {} output diverged from flux (scale {scale}, seed {seed})",
            w.id,
            kind.label()
        );
        // The baselines must also be blind to the interner cap.
        let capped = run_engine_with(
            kind,
            query,
            dtd,
            doc.as_bytes(),
            &options(Parallelism::Sequential, Some(TINY_CAP)),
        )
        .unwrap_or_else(|e| panic!("{}: {} capped failed: {e}", w.id, kind.label()));
        assert_eq!(
            capped.output,
            outcome.output,
            "{}: {} output changed under max_symbols={TINY_CAP}",
            w.id,
            kind.label()
        );
        assert_eq!(
            stats_fingerprint(&capped.stats),
            stats_fingerprint(&outcome.stats),
            "{}: {} stats changed under max_symbols={TINY_CAP}\n  capped:    {}\n  unbounded: {}",
            w.id,
            kind.label(),
            capped.stats,
            outcome.stats
        );
    }

    // Streamed ingestion: the same document arriving through an opaque
    // `Read` (generator-backed where the workload has one, a cursor
    // otherwise) must be indistinguishable from the buffered slice —
    // output and stats, sequentially and with incremental shard
    // dispatch, which takes a different code path than buffered shards.
    for parallelism in [Parallelism::Sequential, Parallelism::Shards(2)] {
        let outcome = run_engine_input(
            EngineKind::Flux,
            query,
            dtd,
            Input::from_reader(w.stream(scale, seed)),
            &options(parallelism, None),
        )
        .unwrap_or_else(|e| panic!("{}: flux streamed {parallelism:?} failed: {e}", w.id));
        assert_eq!(
            outcome.output, reference.output,
            "{}: streamed ingestion diverged from buffered ({parallelism:?})",
            w.id
        );
        assert_eq!(
            stats_fingerprint(&outcome.stats),
            stats_fingerprint(&reference.stats),
            "{}: streamed ingestion stats diverged ({parallelism:?})\n  streamed: {}\n  buffered: {}",
            w.id,
            outcome.stats,
            reference.stats
        );
    }

    // FluX: output and stats invariant across shards × caps.
    for shards in SHARD_COUNTS {
        for cap in [None, Some(TINY_CAP)] {
            let outcome = run_engine_with(
                EngineKind::Flux,
                query,
                dtd,
                doc.as_bytes(),
                &options(Parallelism::Shards(shards), cap),
            )
            .unwrap_or_else(|e| panic!("{}: flux shards={shards} cap={cap:?} failed: {e}", w.id));
            assert_eq!(
                outcome.output, reference.output,
                "{}: flux output diverged (shards {shards}, cap {cap:?})",
                w.id
            );
            assert_eq!(
                stats_fingerprint(&outcome.stats),
                stats_fingerprint(&reference.stats),
                "{}: flux stats diverged (shards {shards}, cap {cap:?})\n  sharded:    {}\n  sequential: {}",
                w.id,
                outcome.stats,
                reference.stats
            );
        }
    }
}

/// Materialises `bytes` into a plain DOM and evaluates `query` with the
/// *reference* (materialising) evaluator — the oracle the streaming cursor
/// evaluator is differential-tested against. Returns the rendered output,
/// or the rendered error.
pub fn reference_output(query: &str, bytes: &[u8]) -> Result<String, String> {
    use flux_xml::tree::TreeBuilder;
    use flux_xml::SymbolTable;
    let parsed = flux_xquery::parse_query(query).map_err(|e| e.to_string())?;
    let normalized = flux_xquery::normalize(&parsed).map_err(|e| e.to_string())?;
    let mut reader = XmlReader::with_symbols(bytes, ReaderConfig::default(), SymbolTable::new());
    let mut builder = TreeBuilder::new();
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).map_err(|e| e.to_string())? {
        builder
            .raw_event(reader.symbols(), &ev)
            .map_err(|e| e.to_string())?;
    }
    let doc = builder.finish().map_err(|e| e.to_string())?;
    flux_xquery::reference_eval_to_string(&doc, &normalized).map_err(|e| e.to_string())
}

/// Pins the compiled cursor evaluator to the reference evaluator: every
/// engine architecture, at shard counts {1, 2} with the interner unbounded
/// and capped, must reproduce the reference output byte-for-byte, and each
/// engine's run statistics must be invariant across the grid.
pub fn assert_cursor_matches_reference(label: &str, query: &str, dtd: &str, bytes: &[u8]) {
    let expected = reference_output(query, bytes)
        .unwrap_or_else(|e| panic!("{label}: reference evaluation failed: {e}\n{query}"));
    for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
        let mut fingerprint = None;
        for shards in [1usize, 2] {
            for cap in [None, Some(TINY_CAP)] {
                let outcome = run_engine_with(
                    kind,
                    query,
                    dtd,
                    bytes,
                    &options(Parallelism::Shards(shards), cap),
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "{label}: {} shards={shards} cap={cap:?} failed: {e}\n{query}",
                        kind.label()
                    )
                });
                assert_eq!(
                    String::from_utf8_lossy(&outcome.output),
                    expected,
                    "{label}: {} diverged from the reference evaluator \
                     (shards {shards}, cap {cap:?})\n{query}",
                    kind.label()
                );
                let fp = stats_fingerprint(&outcome.stats);
                match &fingerprint {
                    None => fingerprint = Some(fp),
                    Some(first) => assert_eq!(
                        &fp,
                        first,
                        "{label}: {} stats moved across the grid (shards {shards}, cap {cap:?})",
                        kind.label()
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_tier_smoke() {
        let outcome = assert_stream_equivalent("smoke", b"<r><a>x</a><b k=\"v\"/></r>");
        assert!(outcome.error.is_none());
        assert!(!outcome.events.is_empty());
    }

    #[test]
    fn stream_tier_reports_errors() {
        let outcome = assert_stream_equivalent("smoke-err", b"<r><a>x</b></r>");
        let (msg, pos) = outcome.error.expect("mismatched tags must fail");
        assert!(msg.contains("mismatched end tag"), "{msg}");
        assert!(pos.is_some());
    }
}
