//! Proof of the buffer store's zero-allocation contract: once names are
//! interned and the spare pools warmed, the scoped buffer-and-free loop —
//! the runtime's steady state on the paper's running example, one book's
//! buffered children at a time — performs **no heap allocations at all**.
//!
//! Buffering an element never materialises a name string (names import as
//! integers through the arena document's seeded table, `Document::
//! import_name`); attribute values and text land in recycled `String`s and
//! the freed slots' children vectors keep their capacity. The test
//! instruments the global allocator: after a warm-up scope, repeating the
//! identical scope shape hundreds of times must add exactly zero
//! allocations.
//!
//! This file holds exactly one test so no concurrent test in the same
//! binary can perturb the allocation counter.
//!
//! The contract must hold identically under `--features telemetry`: the
//! tracker's traffic counters are `u64` adds and the buffer-residency
//! sampler decimates into a fixed inline array (`RESIDENCY_SLOTS` pairs,
//! no heap), so the instrumented buffer-and-free loop stays
//! allocation-free (CI runs this proof in both modes).

// The counting allocator is the one place the test needs `unsafe`: it
// wraps `System` one-to-one and adds a relaxed atomic increment.
#![allow(unsafe_code)]

use flux_runtime::BufferArena;
use flux_xml::{RawEvent, RawEventKind, RawEventRef, SymbolTable};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth counts as an allocation: a recycled buffer that has to
        // regrow per scope would be a real per-scope heap cost.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Buffers one "book" scope — an attributed shell, two children, merged
/// text — from recycled stream events, then frees it. This is the shape
/// the streamed evaluator drives per `on`-handler instance.
fn buffer_one_scope(
    arena: &mut BufferArena,
    symbols: &SymbolTable,
    book: &RawEvent,
    author: &RawEvent,
) {
    let shell = arena.create_element_view(symbols, &RawEventRef::from_event(book));
    let a1 = arena.append_element_view(shell, symbols, &RawEventRef::from_event(author));
    arena.append_text(a1, "Stevens, W. Richard");
    arena.append_text(a1, " and Wright, Gary R.");
    let a2 = arena.append_element_view(shell, symbols, &RawEventRef::from_event(author));
    arena.append_text(a2, "Abiteboul, Serge");
    arena.free_scope(shell);
}

#[test]
fn steady_state_buffering_is_allocation_free() {
    let mut symbols = SymbolTable::new();
    let book_sym = symbols.intern("book");
    let author_sym = symbols.intern("author");
    let year = symbols.intern("year");
    let lang = symbols.intern("lang");

    // Recycled events, as the reader would hand them out.
    let mut book = RawEvent::new();
    book.reset(RawEventKind::StartElement);
    book.set_name(book_sym);
    book.push_attr(year).push_str("1994");
    book.push_attr(lang).push_str("en");
    let mut author = RawEvent::new();
    author.reset(RawEventKind::StartElement);
    author.set_name(author_sym);

    // The arena seeds its document table from the stream's: every name in
    // the loop below imports as an integer copy.
    let mut arena = BufferArena::with_symbols(symbols.clone());

    // Warm-up: first sight of each slot, pool buffer and children vector
    // (a few rounds, so every recycled vector reaches its final capacity).
    for _ in 0..8 {
        buffer_one_scope(&mut arena, &symbols, &book, &author);
    }

    // Minimum over several measured windows: the global counter also sees
    // the test harness's own threads, so a single window can pick up a
    // stray allocation or two. A real per-scope cost repeats in every
    // window; the minimum is the clean figure.
    let allocations = (0..5)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..500 {
                buffer_one_scope(&mut arena, &symbols, &book, &author);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap();
    assert_eq!(
        allocations, 0,
        "steady-state buffer-and-free must not allocate (names are symbols, \
         payload buffers and slots recycle); got {allocations} allocations \
         over 500 scopes"
    );

    // Sanity: the loop really buffered content and the accounting closed
    // to zero. The payloads here repeat only across freed scopes — never
    // two live copies at once — so the shared-text gate (whose sighting
    // counts reset every `free_scope` generation) correctly keeps them
    // out of the resident dictionary.
    assert_eq!(arena.current_bytes(), 0);
    assert_eq!(arena.doc().shared_text_bytes(), 0);
    assert!(arena.peak_bytes() > 0);
    // The residency sampler ran inside the allocation-free window above —
    // its decimation must still have preserved the exact peak.
    if flux_telemetry::enabled() {
        assert_eq!(
            arena.tracker().residency().max_high_water(),
            arena.peak_bytes() as u64,
            "residency decimation lost the high-water mark"
        );
    }
    assert!(
        arena.doc().node_count() < 16,
        "slots must recycle: {} nodes",
        arena.doc().node_count()
    );
}
