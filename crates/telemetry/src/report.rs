//! The unified per-run report tree.
//!
//! A [`RunReport`] is the single rollup every instrumented pipeline
//! component appends itself to at the end of a run: a tree of [`Stage`]s,
//! each carrying counters, span totals, derived rates, annotations,
//! residency samples and journal events. The engine returns it next to
//! `RunStats`; the CLI renders it with `--report json|text`; `experiments
//! --e8` embeds it in `BENCH_events.json`; `perf_gate` reads it back for
//! stage-level regression attribution.
//!
//! The tree types are always compiled: a build without the `enabled`
//! feature produces a structurally valid report whose `telemetry` flag is
//! `false` and whose stages carry no counters — consumers need no
//! feature-gating of their own.

use crate::json::JsonWriter;

/// One pipeline stage's telemetry (possibly with nested child stages —
/// the shard pipeline nests one lane stage per shard).
#[derive(Debug, Default, Clone)]
pub struct Stage {
    pub name: String,
    /// String annotations (active ISA, replay mode, ...).
    pub notes: Vec<(&'static str, String)>,
    /// Monotonic counter values.
    pub counters: Vec<(&'static str, u64)>,
    /// Span totals, nanoseconds.
    pub spans_ns: Vec<(&'static str, u64)>,
    /// Derived rates (events/s, bytes/s, ratios).
    pub rates: Vec<(&'static str, f64)>,
    /// Residency trace points: `(tick, high_water_bytes)`.
    pub samples: Vec<(u64, u64)>,
    /// Journal entries: `(seq, tag, value)`.
    pub events: Vec<(u64, &'static str, u64)>,
    pub children: Vec<Stage>,
}

impl Stage {
    pub fn new(name: impl Into<String>) -> Self {
        Stage {
            name: name.into(),
            ..Stage::default()
        }
    }

    /// Appends one counter.
    pub fn counter(&mut self, name: &'static str, value: u64) -> &mut Self {
        self.counters.push((name, value));
        self
    }

    /// Appends a counter-struct snapshot, routing `*_ns` entries into the
    /// span list so timings and counts stay separate in the report.
    pub fn absorb(&mut self, snapshot: Vec<(&'static str, u64)>) -> &mut Self {
        for (name, value) in snapshot {
            if name.ends_with("_ns") {
                self.spans_ns.push((name, value));
            } else {
                self.counters.push((name, value));
            }
        }
        self
    }

    /// Appends one span total (nanoseconds).
    pub fn span(&mut self, name: &'static str, ns: u64) -> &mut Self {
        self.spans_ns.push((name, ns));
        self
    }

    /// Appends one derived rate.
    pub fn rate(&mut self, name: &'static str, value: f64) -> &mut Self {
        self.rates.push((name, value));
        self
    }

    /// Appends one string annotation.
    pub fn note(&mut self, name: &'static str, value: impl Into<String>) -> &mut Self {
        self.notes.push((name, value.into()));
        self
    }

    /// Looks a counter up by name (searching this stage only).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks a span total up by name (searching this stage only).
    pub fn span_value(&self, name: &str) -> Option<u64> {
        self.spans_ns
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.field_str("name", &self.name);
        if !self.notes.is_empty() {
            w.begin_named_obj("notes");
            for (k, v) in &self.notes {
                w.field_str(k, v);
            }
            w.end_obj();
        }
        if !self.counters.is_empty() {
            w.begin_named_obj("counters");
            for &(k, v) in &self.counters {
                w.field_u64(k, v);
            }
            w.end_obj();
        }
        if !self.spans_ns.is_empty() {
            w.begin_named_obj("spans_ns");
            for &(k, v) in &self.spans_ns {
                w.field_u64(k, v);
            }
            w.end_obj();
        }
        if !self.rates.is_empty() {
            w.begin_named_obj("rates");
            for &(k, v) in &self.rates {
                w.field_f64(k, v);
            }
            w.end_obj();
        }
        if !self.samples.is_empty() {
            w.begin_named_arr("samples");
            for &(tick, high) in &self.samples {
                w.value_raw(&format!("[{tick}, {high}]"));
            }
            w.end_arr();
        }
        if !self.events.is_empty() {
            w.begin_named_arr("journal");
            for &(seq, tag, value) in &self.events {
                w.value_raw(&format!("[{seq}, \"{tag}\", {value}]"));
            }
            w.end_arr();
        }
        if !self.children.is_empty() {
            w.begin_named_arr("stages");
            for child in &self.children {
                child.write_json(w);
            }
            w.end_arr();
        }
        w.end_obj();
    }

    fn write_text(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&indent);
        out.push_str(&self.name);
        for (k, v) in &self.notes {
            out.push_str(&format!("  [{k}={v}]"));
        }
        out.push('\n');
        for &(k, v) in &self.counters {
            out.push_str(&format!("{indent}  {k:<24} {v}\n"));
        }
        for &(k, ns) in &self.spans_ns {
            out.push_str(&format!("{indent}  {k:<24} {}\n", fmt_ns(ns)));
        }
        for &(k, v) in &self.rates {
            out.push_str(&format!("{indent}  {k:<24} {v:.1}\n"));
        }
        if !self.samples.is_empty() {
            let peak = self.samples.iter().map(|&(_, h)| h).max().unwrap_or(0);
            out.push_str(&format!(
                "{indent}  residency trace           {} points, max {} bytes\n",
                self.samples.len(),
                peak
            ));
        }
        for &(seq, tag, value) in &self.events {
            out.push_str(&format!("{indent}  @{seq} {tag} {value}\n"));
        }
        for child in &self.children {
            child.write_text(out, depth + 1);
        }
    }
}

/// The per-run telemetry rollup.
#[derive(Debug, Default, Clone)]
pub struct RunReport {
    /// Whether the build carries live instrumentation (`false` means the
    /// structure below is present but every stage is empty).
    pub telemetry: bool,
    pub stages: Vec<Stage>,
    /// The run's `RunStats`, pre-rendered as JSON by `flux_runtime` and
    /// spliced into the report verbatim.
    pub stats_json: Option<String>,
}

impl RunReport {
    /// An empty report flagged with this build's instrumentation state.
    pub fn new() -> Self {
        RunReport {
            telemetry: crate::enabled(),
            stages: Vec::new(),
            stats_json: None,
        }
    }

    /// Appends a top-level stage.
    pub fn stage(&mut self, stage: Stage) {
        self.stages.push(stage);
    }

    /// Finds a top-level stage by name.
    pub fn find(&self, name: &str) -> Option<&Stage> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_bool("telemetry", self.telemetry);
        if !self.telemetry {
            w.field_str(
                "note",
                "telemetry feature disabled at build time; stages carry no data",
            );
        }
        if let Some(stats) = &self.stats_json {
            w.field_raw("run_stats", stats);
        }
        w.begin_named_arr("stages");
        for stage in &self.stages {
            stage.write_json(&mut w);
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Renders the report as an indented text tree.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.telemetry {
            "run report (telemetry enabled)\n"
        } else {
            "run report (telemetry disabled at build time; rebuild with --features telemetry)\n"
        });
        if let Some(stats) = &self.stats_json {
            out.push_str("run_stats: ");
            out.push_str(stats.replace('\n', " ").as_str());
            out.push('\n');
        }
        for stage in &self.stages {
            stage.write_text(&mut out, 0);
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut report = RunReport::new();
        let mut scanner = Stage::new("scanner");
        scanner.note("isa", "swar-fallback");
        scanner.counter("refills", 3).counter("prescan_bytes", 4096);
        report.stage(scanner);
        let mut pipeline = Stage::new("shard_pipeline");
        pipeline.counter("shards", 2);
        let mut lane = Stage::new("shard_0");
        lane.span("parse_ns", 1_500_000).counter("events", 120);
        lane.samples.push((64, 1024));
        lane.events.push((0, "tape_ready", 0));
        pipeline.children.push(lane);
        report.stage(pipeline);
        report.stats_json = Some("{\n  \"events\": 120\n}".to_string());
        report
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_report().to_json();
        for needle in [
            "\"telemetry\":",
            "\"run_stats\":",
            "\"scanner\"",
            "\"isa\": \"swar-fallback\"",
            "\"prescan_bytes\": 4096",
            "\"shard_0\"",
            "\"parse_ns\": 1500000",
            "[64, 1024]",
            "[0, \"tape_ready\", 0]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn text_tree_indents_children() {
        let text = sample_report().to_text();
        assert!(text.contains("shard_pipeline"));
        assert!(text.contains("  shard_0"), "child indented:\n{text}");
        assert!(text.contains("1.500ms"), "span humanized:\n{text}");
    }

    #[test]
    fn lookup_helpers_find_values() {
        let report = sample_report();
        let scanner = report.find("scanner").unwrap();
        assert_eq!(scanner.counter_value("refills"), Some(3));
        assert_eq!(scanner.counter_value("absent"), None);
        let lane = &report.find("shard_pipeline").unwrap().children[0];
        assert_eq!(lane.span_value("parse_ns"), Some(1_500_000));
    }

    #[test]
    fn disabled_build_is_flagged() {
        let report = RunReport::new();
        assert_eq!(report.telemetry, crate::enabled());
        let json = report.to_json();
        if !crate::enabled() {
            assert!(json.contains("telemetry feature disabled"));
        }
    }
}
