//! The workload matrix: every named input shape the test suite, the
//! conformance harness and the perf recording agree on.
//!
//! One recorded bibliography stopped being enough the moment the paper's
//! claims — bounded buffers under adversarial shapes, sequential-exact
//! sharded errors — had to hold off the happy path. Each entry here is a
//! *named axis* of the input space: the two paper bibliographies, an
//! XMark-style auction document that scales to multi-MB, and the four
//! pathological shapes from [`flux_xmlgen::pathological`].
//!
//! Consumers:
//! * `flux_conformance` replays every workload through all engines ×
//!   shard counts × interner bounds and asserts nothing observable moves;
//! * `experiments --e8` records one `workload_<id>` section per
//!   perf-gated entry in `BENCH_events.json`;
//! * `perf_gate` fails a >10% throughput or `peak_buffer_bytes`
//!   regression in any one of them.

use crate::{catalog_query, Domain, Q3};
use flux_xmlgen::{
    attr_heavy_string, auction_string, deep_string, mint_string, text_heavy_string,
    AttrHeavyConfig, AuctionConfig, AuctionStream, DeepConfig, MintConfig, TextHeavyConfig,
};
use std::io::Read;

/// One named workload: a deterministic document generator plus the schema
/// and query the engine tier runs over it.
pub struct Workload {
    /// Stable identifier (`BENCH_events.json` section names derive from
    /// it: `workload_<id>`).
    pub id: &'static str,
    /// What this workload stresses.
    pub description: &'static str,
    /// DTD for the validating (FluX) engine tier; `None` restricts the
    /// workload to the stream tier and the non-validating baselines.
    pub dtd: Option<&'static str>,
    /// Query for the engine tier; `None` = stream (parse-level) tier only.
    pub query: Option<&'static str>,
    /// The distinct-name vocabulary grows with document size — the input
    /// the bounded interner exists for. Conformance runs these under a
    /// tiny `max_symbols` cap as well.
    pub adversarial_names: bool,
    /// Whether `experiments --e8` records a `workload_<id>` perf section.
    pub perf_gated: bool,
    /// The scale `experiments --e8` records perf sections at (seed 42) —
    /// kept on the registry so the recording, the gate and the docs agree
    /// on what the committed numbers measured.
    pub record_scale: f64,
    document: fn(f64, u64) -> String,
    /// Generator-backed streamed source. Entries with `Some` can be
    /// driven at scales whose documents could never be materialised
    /// (the GB axis); the bytes are identical to `document()` at the
    /// same scale and seed. `None` falls back to a cursor over
    /// `document()`.
    stream: Option<StreamFn>,
}

/// Opens a workload's document as a streamed source at (scale, seed).
type StreamFn = fn(f64, u64) -> Box<dyn Read + Send>;

impl Workload {
    /// Generates this workload's document at roughly `scale` × base size.
    pub fn document(&self, scale: f64, seed: u64) -> String {
        (self.document)(scale, seed)
    }

    /// Opens this workload's document as a streamed source — the bytes
    /// `document(scale, seed)` would produce, arriving through an opaque
    /// `Read` suitable for `Input::from_reader`. Generator-streamed
    /// entries never materialise the document.
    pub fn stream(&self, scale: f64, seed: u64) -> Box<dyn Read + Send> {
        match self.stream {
            Some(open) => open(scale, seed),
            None => Box::new(std::io::Cursor::new(
                self.document(scale, seed).into_bytes(),
            )),
        }
    }

    /// Whether [`Workload::stream`] is generator-backed (safe at GB
    /// scales) rather than a cursor over the materialised document.
    pub fn generator_streamed(&self) -> bool {
        self.stream.is_some()
    }

    /// The `BENCH_events.json` section name for this workload.
    pub fn section_name(&self) -> String {
        format!("workload_{}", self.id)
    }
}

/// The full matrix, in stable order.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            id: "bib_weak",
            description: "paper bibliography, weak DTD `book (title|author)*`",
            dtd: Some(Domain::BibWeak.dtd()),
            query: Some(Q3),
            adversarial_names: false,
            // The primary recording (`current` + `parallel` sections)
            // already gates this shape at scale 32.
            perf_gated: false,
            record_scale: 32.0,
            document: |scale, seed| Domain::BibWeak.document(scale, seed),
            stream: None,
        },
        Workload {
            id: "bib_fig1",
            description: "paper bibliography, strong Figure 1 DTD",
            dtd: Some(Domain::BibFig1.dtd()),
            query: Some(Q3),
            adversarial_names: false,
            perf_gated: false,
            record_scale: 32.0,
            document: |scale, seed| Domain::BibFig1.document(scale, seed),
            stream: None,
        },
        Workload {
            id: "auction",
            description: "XMark-style auction site (multi-MB document-size axis)",
            dtd: Some(Domain::Auction.dtd()),
            query: Some(catalog_query("AUC-EXP").query),
            adversarial_names: false,
            perf_gated: true,
            record_scale: 48.0,
            document: |scale, seed| Domain::Auction.document(scale, seed),
            stream: None,
        },
        Workload {
            id: "auction_gb",
            description: "GB-scale auction stream (generator-streamed ingestion; the \
                          document is produced behind a `Read` and never materialised)",
            dtd: Some(Domain::Auction.dtd()),
            query: Some(catalog_query("AUC-EXP").query),
            adversarial_names: false,
            // Perf recording would have to materialise comparison runs at
            // this scale; the `slow` suite gates the GB axis instead.
            perf_gated: false,
            // ~1 GiB with the auction generator's ~50 KiB-per-unit-scale
            // rate — the scale the `slow` bounded-memory suite drives.
            record_scale: 21_000.0,
            document: |scale, seed| auction_string(&AuctionConfig::scale(scale, seed)),
            stream: Some(|scale, seed| {
                Box::new(AuctionStream::new(AuctionConfig::scale(scale, seed)))
            }),
        },
        Workload {
            id: "deep",
            description: "deeply recursive spines (element stack depth axis)",
            dtd: None,
            query: None,
            adversarial_names: false,
            perf_gated: true,
            record_scale: 16.0,
            document: |scale, seed| {
                deep_string(&DeepConfig::new(
                    128,
                    ((24.0 * scale).ceil() as usize).max(1),
                    seed,
                ))
            },
            stream: None,
        },
        Workload {
            id: "attr_heavy",
            description: "attribute-dominated bibliography (per-event attribute lists)",
            dtd: Some(Domain::BibWeak.dtd()),
            query: Some(Q3),
            adversarial_names: false,
            perf_gated: true,
            record_scale: 16.0,
            document: |scale, seed| {
                attr_heavy_string(&AttrHeavyConfig::new(
                    ((40.0 * scale).ceil() as usize).max(1),
                    10,
                    seed,
                ))
            },
            stream: None,
        },
        Workload {
            id: "text_heavy",
            description: "text-dominated bibliography with entities mid-run",
            dtd: Some(Domain::BibWeak.dtd()),
            query: Some(Q3),
            adversarial_names: false,
            perf_gated: true,
            record_scale: 16.0,
            document: |scale, seed| {
                text_heavy_string(&TextHeavyConfig::new(
                    ((12.0 * scale).ceil() as usize).max(1),
                    80,
                    seed,
                ))
            },
            stream: None,
        },
        Workload {
            id: "name_mint",
            description: "name-minting adversary (unbounded distinct-name vocabulary)",
            dtd: Some(Domain::BibWeak.dtd()),
            query: Some(Q3),
            adversarial_names: true,
            perf_gated: true,
            record_scale: 32.0,
            document: |scale, seed| {
                mint_string(&MintConfig::new(
                    ((50.0 * scale).ceil() as usize).max(1),
                    6,
                    seed,
                ))
            },
            stream: None,
        },
    ]
}

/// Looks up a workload by id.
pub fn workload(id: &str) -> Workload {
    workloads()
        .into_iter()
        .find(|w| w.id == id)
        .unwrap_or_else(|| panic!("unknown workload {id}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_and_sections_named() {
        let all = workloads();
        let mut ids: Vec<_> = all.iter().map(|w| w.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert_eq!(workload("deep").section_name(), "workload_deep");
    }

    #[test]
    fn at_least_four_perf_gated_workloads() {
        assert!(workloads().iter().filter(|w| w.perf_gated).count() >= 4);
    }

    #[test]
    fn documents_deterministic_and_scaling() {
        for w in workloads() {
            let a = w.document(0.2, 7);
            let b = w.document(0.2, 7);
            assert_eq!(a, b, "{} not deterministic", w.id);
            let large = w.document(2.0, 7);
            assert!(
                large.len() > a.len() * 4,
                "{} does not scale: {} -> {}",
                w.id,
                a.len(),
                large.len()
            );
        }
    }

    #[test]
    fn generator_streamed_entries_match_their_documents() {
        let mut saw_streamed = false;
        for w in workloads() {
            // Cursor-backed fallback is identical by construction; the
            // generator-backed path is the one that can drift.
            if !w.generator_streamed() {
                continue;
            }
            saw_streamed = true;
            let mut streamed = Vec::new();
            w.stream(0.3, 11).read_to_end(&mut streamed).unwrap();
            assert_eq!(streamed, w.document(0.3, 11).into_bytes(), "{}", w.id);
        }
        assert!(saw_streamed, "matrix lost its GB-scale streamed entry");
    }

    #[test]
    fn engine_tier_workloads_have_dtd_and_query() {
        for w in workloads() {
            if w.query.is_some() {
                assert!(w.dtd.is_some(), "{}: query without DTD", w.id);
            }
        }
    }
}
