//! E10 — cursor-evaluator microbench: compiled streaming evaluation over
//! an already-buffered document, against the retained materialising
//! reference evaluator on the same tree. Isolates the evaluator from
//! parsing: the document is materialised once, both evaluators run over
//! the same nodes, and the cursor side drives a counting (non-writing)
//! sink so the comparison measures traversal + construction, not I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flux_bench::{Domain, Q3};
use flux_xml::tree::{Document, TreeBuilder};
use flux_xml::{RawEvent, ReaderConfig, SymbolTable, XmlReader};
use flux_xquery::{
    compile_expr, normalize, parse_query, reference_eval_to_string, CompiledExpr, CountingSink,
    CursorEvaluator, Expr, SlotMap, ROOT_VAR,
};

fn materialise(bytes: &[u8]) -> Document {
    let mut reader = XmlReader::with_symbols(bytes, ReaderConfig::default(), SymbolTable::new());
    let mut builder = TreeBuilder::new().with_shared_text();
    let mut ev = RawEvent::new();
    while reader.next_into(&mut ev).expect("parse") {
        builder.raw_event(reader.symbols(), &ev).expect("build");
    }
    builder.finish().expect("tree")
}

fn compiled_for(doc: &Document, normalized: &Expr) -> (CompiledExpr, SlotMap, usize) {
    let mut slots = SlotMap::new();
    let root_slot = slots.slot(ROOT_VAR);
    let compiled = compile_expr(normalized, &mut slots, &mut |label| {
        doc.symbols().lookup(label)
    })
    .expect("compile");
    (compiled, slots, root_slot)
}

fn cursor_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_cursor_eval");
    let parsed = parse_query(Q3).expect("parse query");
    let normalized = normalize(&parsed).expect("normalize");
    for scale in [1.0f64, 4.0] {
        let bytes = Domain::BibWeak.document(scale, 42).into_bytes();
        let doc = materialise(&bytes);
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        let (compiled, slot_map, root_slot) = compiled_for(&doc, &normalized);
        let mut slots = slot_map.make_slots();
        slots[root_slot] = Some(doc.document_node());
        let mut evaluator = CursorEvaluator::new();
        group.bench_with_input(
            BenchmarkId::new("cursor", format!("{scale}x")),
            &doc,
            |b, doc| {
                b.iter(|| {
                    let mut sink = CountingSink::default();
                    evaluator
                        .eval(doc, &compiled, &mut slots, &mut sink)
                        .expect("eval");
                    (sink.bytes, sink.events)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("reference", format!("{scale}x")),
            &doc,
            |b, doc| {
                b.iter(|| {
                    reference_eval_to_string(doc, &normalized)
                        .expect("eval")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = cursor_eval
}
criterion_main!(benches);
