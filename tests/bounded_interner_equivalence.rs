//! Property-based proof that the bounded interner is **observationally
//! invisible**: capping `max_symbols` restores a hard memory bound on the
//! name tables, and must change *nothing* a query can observe — not the
//! output bytes, not the buffer accounting, not an error, not a position.
//!
//! Exercised across all three engine architectures (FluX streaming,
//! projection, DOM) and, for FluX, across sequential and sharded parsing
//! (shard counts 1 and 2, where the *merged* table is the bounded one).
//! The generated documents deliberately carry many distinct undeclared
//! attribute names, so a tiny cap genuinely overflows: query-relevant
//! names then travel as `OVERFLOW` + literal spelling through buffering,
//! projection descent and serialisation.

use flux_bench::run_engine_with;
use fluxquery::{EngineKind, Options, Parallelism, RunStats, PAPER_WEAK_DTD};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;
const FILTER: &str =
    r#"<hits>{ for $b in $ROOT/bib/book return if (exists($b/author)) then $b else () }</hits>"#;

/// A weak-DTD-valid bibliography whose elements carry undeclared
/// attributes with a wide name vocabulary — the part of the alphabet a
/// tiny interner cap overflows (declared names are pre-seeded from the
/// DTD and always resolve).
fn noisy_doc(books: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut doc = String::from("<bib>");
    for b in 0..books {
        doc.push_str(&format!("<book meta{}=\"m\">", rng.gen_range(0..500)));
        for _ in 0..rng.gen_range(0usize..4) {
            if rng.gen_bool(0.5) {
                doc.push_str(&format!(
                    "<title tag{}=\"t\">Title {b}-{}</title>",
                    rng.gen_range(0..500),
                    rng.gen_range(0..100)
                ));
            } else {
                doc.push_str(&format!(
                    "<author id{}=\"a\" ref{}=\"r\">Author {b}-{}</author>",
                    rng.gen_range(0..500),
                    rng.gen_range(0..500),
                    rng.gen_range(0..100)
                ));
            }
        }
        doc.push_str("</book>");
    }
    doc.push_str("</bib>");
    doc
}

/// The observable facts of one run.
fn verdict(stats: &RunStats) -> (usize, usize, u64, u64) {
    (
        stats.peak_buffer_bytes,
        stats.peak_buffer_nodes,
        stats.total_buffered_bytes,
        stats.events,
    )
}

/// Every engine/parallelism configuration under test, with a label.
fn configurations() -> Vec<(String, EngineKind, Parallelism)> {
    vec![
        ("flux".into(), EngineKind::Flux, Parallelism::Sequential),
        (
            "flux-shards-1".into(),
            EngineKind::Flux,
            Parallelism::Shards(1),
        ),
        (
            "flux-shards-2".into(),
            EngineKind::Flux,
            Parallelism::Shards(2),
        ),
        (
            "projection".into(),
            EngineKind::Projection,
            Parallelism::Sequential,
        ),
        ("dom".into(), EngineKind::Dom, Parallelism::Sequential),
    ]
}

fn options(cap: Option<usize>, parallelism: Parallelism) -> Options {
    let mut o = match cap {
        Some(cap) => Options::with_max_symbols(cap),
        None => Options::new(),
    };
    o.parallelism = parallelism;
    o
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For every engine and shard count, a tiny interner cap leaves the
    /// output bytes and the run statistics byte-for-byte identical to the
    /// unbounded run.
    #[test]
    fn bounded_interner_never_changes_results(
        seed in 0u64..10_000,
        books in 1usize..24,
        cap in 0usize..6,
        query_pick in 0usize..2,
    ) {
        let doc = noisy_doc(books, seed);
        let query = if query_pick == 0 { Q3 } else { FILTER };
        for (label, kind, parallelism) in configurations() {
            let unbounded = run_engine_with(
                kind, query, PAPER_WEAK_DTD, doc.as_bytes(), &options(None, parallelism),
            ).unwrap_or_else(|e| panic!("{label} unbounded failed: {e}"));
            let bounded = run_engine_with(
                kind, query, PAPER_WEAK_DTD, doc.as_bytes(), &options(Some(cap), parallelism),
            ).unwrap_or_else(|e| panic!("{label} cap={cap} failed: {e}"));
            prop_assert_eq!(
                &bounded.output, &unbounded.output,
                "{} output changed under max_symbols={} (seed {}, books {})",
                label, cap, seed, books
            );
            prop_assert_eq!(
                verdict(&bounded.stats), verdict(&unbounded.stats),
                "{} stats changed under max_symbols={} (seed {}, books {})",
                label, cap, seed, books
            );
        }
    }
}

/// Errors are part of the observable behaviour too: an invalid document
/// must fail with the *same* rendered error whether or not the interner is
/// bounded, sequentially and sharded.
#[test]
fn bounded_interner_preserves_errors() {
    // `pamphlet` is not declared in the weak DTD: validation rejects it at
    // the same position in every configuration.
    let doc = "<bib><book><title>T</title></book><pamphlet/></bib>";
    for (label, kind, parallelism) in configurations() {
        let unbounded = run_engine_with(
            kind,
            Q3,
            PAPER_WEAK_DTD,
            doc.as_bytes(),
            &options(None, parallelism),
        );
        let bounded = run_engine_with(
            kind,
            Q3,
            PAPER_WEAK_DTD,
            doc.as_bytes(),
            &options(Some(0), parallelism),
        );
        match (unbounded, bounded) {
            (Err(u), Err(b)) => {
                assert_eq!(
                    u.to_string(),
                    b.to_string(),
                    "{label} error message changed"
                );
            }
            // The baselines do not validate; both modes must then succeed
            // with identical output.
            (Ok(u), Ok(b)) => assert_eq!(u.output, b.output, "{label} output changed"),
            (u, b) => panic!(
                "{label} verdict changed under the bounded interner: unbounded {:?}, bounded {:?}",
                u.map(|o| o.output).map_err(|e| e.to_string()),
                b.map(|o| o.output).map_err(|e| e.to_string()),
            ),
        }
    }
}

/// A document with mismatched tags whose names all overflow a zero cap:
/// errors must keep their exact sequential message and position under
/// sharding + bounding. In particular, two overflowed names must *not*
/// balance just because both carry the sentinel — the non-validating
/// engines reach the mismatch and must name both tags; the FluX engine
/// rejects the undeclared element first, with the same message in every
/// configuration.
#[test]
fn overflowed_tag_mismatch_still_detected() {
    let doc = "<bib><book><zzfirst>x</zzsecond></book></bib>";
    let mut flux_errors = Vec::new();
    for (label, kind, parallelism) in configurations() {
        let bounded = run_engine_with(
            kind,
            Q3,
            PAPER_WEAK_DTD,
            doc.as_bytes(),
            &options(Some(0), parallelism),
        );
        let unbounded = run_engine_with(
            kind,
            Q3,
            PAPER_WEAK_DTD,
            doc.as_bytes(),
            &options(None, parallelism),
        );
        let err = bounded.err().expect("the document must fail").to_string();
        let err_unbounded = unbounded.err().expect("the document must fail").to_string();
        assert_eq!(err, err_unbounded, "{label}: bounding changed the error");
        match kind {
            EngineKind::Flux => flux_errors.push(err),
            // DOM and projection do not validate: they stream up to the
            // well-formedness flaw and must name both overflowed tags.
            _ => assert!(
                err.contains("zzfirst") && err.contains("zzsecond"),
                "{label}: error must name both tags: {err}"
            ),
        }
    }
    // FluX sequential and both shard counts agree byte-for-byte.
    assert_eq!(flux_errors[0], flux_errors[1]);
    assert_eq!(flux_errors[0], flux_errors[2]);
}
