//! Failure injection: malformed queries, schema violations and broken
//! streams must surface as errors, never as wrong answers or panics.

use fluxquery::{FluxEngine, Options, PAPER_FIG1_DTD, PAPER_WEAK_DTD};

const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

#[test]
fn malformed_query_rejected() {
    for bad in [
        "<r>{",
        "for $x in return ()",
        "<r>{ $x/ }</r>",
        "<a></b>",
        "<r>{ for $b in $ROOT//book return $b }</r>", // descendant axis
        "<r>{ if ($x/a) then <y/> }</r>",             // missing else
    ] {
        assert!(
            FluxEngine::compile(bad, PAPER_WEAK_DTD, &Options::default()).is_err(),
            "accepted: {bad}"
        );
    }
}

#[test]
fn malformed_dtd_rejected() {
    for bad in [
        "",
        "<!ELEMENT a (b,>",
        "<!ELEMENT a (#PCDATA | b)>", // mixed without *
        "<!BOGUS>",
        "<!ELEMENT a EMPTY><!ELEMENT a ANY>", // duplicate
    ] {
        assert!(
            FluxEngine::compile(Q3, bad, &Options::default()).is_err(),
            "accepted DTD: {bad}"
        );
    }
}

#[test]
fn invalid_documents_rejected_at_runtime() {
    let engine = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::default()).unwrap();
    for bad in [
        // wrong root
        "<book/>",
        // undeclared element
        "<bib><pamphlet/></bib>",
        // missing mandatory children
        "<bib><book><title>T</title></book></bib>",
        // wrong order
        "<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>1</price></book></bib>",
        // author and editor together
        "<bib><book><title>T</title><author>A</author><editor>E</editor><publisher>P</publisher><price>1</price></book></bib>",
        // text in element content
        "<bib>text</bib>",
    ] {
        let mut out = Vec::new();
        assert!(engine.run(bad.as_bytes(), &mut out).is_err(), "accepted: {bad}");
    }
}

#[test]
fn broken_xml_rejected_at_runtime() {
    let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::default()).unwrap();
    for bad in [
        "<bib><book></bib>",      // mismatched tags
        "<bib>",                  // truncated
        "<bib><book x=1/></bib>", // unquoted attribute
        "<bib>&undefined;</bib>", // unknown entity
        "",                       // empty input
        "<bib/><bib/>",           // two roots
    ] {
        let mut out = Vec::new();
        assert!(
            engine.run(bad.as_bytes(), &mut out).is_err(),
            "accepted: {bad:?}"
        );
    }
}

#[test]
fn truncated_stream_mid_element() {
    let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::default()).unwrap();
    let full = "<bib><book><title>T</title><author>A</author></book></bib>";
    // Every strict prefix must fail cleanly (error, not panic or success).
    for cut in 1..full.len() {
        let mut out = Vec::new();
        let result = engine.run(&full.as_bytes()[..cut], &mut out);
        assert!(result.is_err(), "prefix of length {cut} accepted");
    }
}

#[test]
fn unbound_variable_rejected_at_compile_time_or_runtime() {
    // $nowhere is never bound: scheduling treats it as an outer unknown.
    let q = "<r>{ for $b in $nowhere/book return $b }</r>";
    let compile = FluxEngine::compile(q, PAPER_WEAK_DTD, &Options::default());
    match compile {
        Err(_) => {}
        Ok(engine) => {
            let mut out = Vec::new();
            assert!(engine.run("<bib/>".as_bytes(), &mut out).is_err());
        }
    }
}

#[test]
fn reserved_variable_prefix_rejected() {
    let q = "<r>{ for $__flux1 in $ROOT/bib/book return $__flux1 }</r>";
    assert!(FluxEngine::compile(q, PAPER_WEAK_DTD, &Options::default()).is_err());
}
