//! The full conformance matrix: every workload × every engine ×
//! shard counts {1, 2, 8} × bounded/unbounded interner.
//!
//! This is the release-mode CI `conformance` job's payload. Scales are
//! kept modest so the debug-mode run stays fast; the axes (not the
//! document sizes) are what the differential assertions exercise.

use flux_conformance::{assert_engines_equivalent, assert_stream_equivalent, workload, workloads};
use flux_xmlgen::{auction_string, AuctionConfig};

#[test]
fn stream_tier_full_matrix() {
    for w in workloads() {
        for (scale, seed) in [(0.2, 7), (0.6, 21)] {
            let doc = w.document(scale, seed);
            let outcome = assert_stream_equivalent(&format!("{} s={scale}", w.id), doc.as_bytes());
            assert!(
                outcome.error.is_none(),
                "{}: generated document failed to parse: {:?}",
                w.id,
                outcome.error
            );
        }
    }
}

#[test]
fn engine_tier_full_matrix() {
    for w in workloads() {
        if w.query.is_none() {
            continue; // stream-tier-only shape (covered above)
        }
        for (scale, seed) in [(0.2, 7), (0.6, 21)] {
            assert_engines_equivalent(&w, scale, seed);
        }
    }
}

#[test]
fn engine_tier_covers_every_query_workload() {
    // Guard against the matrix silently degenerating to stream-only.
    let with_query = workloads().iter().filter(|w| w.query.is_some()).count();
    assert!(with_query >= 5, "only {with_query} engine-tier workloads");
}

#[test]
fn auction_size_axis_reaches_multi_mb() {
    // The XMark-style document-size knob: a multi-MB auction document
    // still satisfies the full stream grid. One size is enough here —
    // this is the expensive end of the matrix.
    let doc = auction_string(&AuctionConfig::target_bytes(2 * 1_048_576, 5));
    assert!(doc.len() > 1_500_000, "size knob fell short: {}", doc.len());
    let outcome = assert_stream_equivalent("auction-2mb", doc.as_bytes());
    assert!(outcome.error.is_none());
}

#[test]
fn name_mint_adversary_is_marked() {
    assert!(workload("name_mint").adversarial_names);
}
