//! End-to-end assertions of the specific claims in the paper's Section 2:
//! what Q3 buffers under each DTD, where `on-first` fires, and which FluX
//! queries are safe.

use fluxquery::lang::pretty_flux;
use fluxquery::{FluxEngine, Options, PAPER_FIG1_DTD, PAPER_UNSAFE_DTD, PAPER_WEAK_DTD};

const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

/// "we only need to buffer the author children of one book node at a time,
/// but not the titles" (Sec. 2, weak DTD).
#[test]
fn weak_dtd_buffers_authors_only() {
    let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::default()).unwrap();
    assert_eq!(engine.buffered_handler_count(), 1);
    let explain = engine.explain();
    assert!(
        explain.contains("{author:*}"),
        "only authors in the BDF:\n{explain}"
    );
    assert!(
        !explain.contains("title:"),
        "titles must not be buffered:\n{explain}"
    );

    // The generated FluX matches the paper's hand-written version:
    // on title streams, on-first past(title,author) flushes authors.
    let flux = pretty_flux(&engine.query().flux);
    assert!(flux.contains("on title as"), "{flux}");
    assert!(flux.contains("on-first past(author,title)"), "{flux}");
}

/// "no buffering is required to execute query Q with the DTD shown in
/// Figure 1" (Sec. 2).
#[test]
fn fig1_dtd_requires_zero_buffering() {
    let engine = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::default()).unwrap();
    assert_eq!(engine.buffered_handler_count(), 0);
    let flux = pretty_flux(&engine.query().flux);
    assert!(flux.contains("on title as"), "{flux}");
    assert!(flux.contains("on author as"), "{flux}");
    assert!(!flux.contains("on-first"), "{flux}");
}

/// Buffer consumption is per-book, not per-document: growing the number of
/// books does not grow the peak (Sec. 2: "we may refill it with the author
/// nodes from the next book").
#[test]
fn peak_buffer_independent_of_book_count() {
    let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::default()).unwrap();
    let make_doc = |books: usize| {
        let mut d = String::from("<bib>");
        for i in 0..books {
            d.push_str(&format!(
                "<book><author>First Author {i}</author><title>Title {i}</title><author>Second Author {i}</author></book>"
            ));
        }
        d.push_str("</bib>");
        d
    };
    let (_, small) = engine.run_to_string(&make_doc(5)).unwrap();
    let (_, large) = engine.run_to_string(&make_doc(500)).unwrap();
    // Identical book shapes → identical peak (one book's authors).
    let ratio = large.peak_buffer_bytes as f64 / small.peak_buffer_bytes as f64;
    assert!(
        ratio < 1.3,
        "peak must not grow with document size: {} vs {}",
        small.peak_buffer_bytes,
        large.peak_buffer_bytes
    );
}

/// The output respects XQuery semantics (titles before authors) regardless
/// of the arrival order in the stream.
#[test]
fn output_order_is_query_order_not_stream_order() {
    let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::default()).unwrap();
    let doc = "<bib><book><author>A1</author><title>T1</title><author>A2</author><title>T2</title></book></bib>";
    let (out, _) = engine.run_to_string(doc).unwrap();
    assert_eq!(
        out,
        "<results><result><title>T1</title><title>T2</title><author>A1</author><author>A2</author></result></results>"
    );
}

/// Sec. 2's unsafe example: with book = ((title|author)*, price), an
/// on-first past(title,author) handler reading $book/price would fire while
/// the price buffer is still empty. The scheduler must not produce it, and
/// produces a safe (buffering) plan instead — verified by the independent
/// safety checker which runs on every compile.
#[test]
fn unsafe_dtd_still_compiles_safely() {
    let q = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/price}{$b/title}</result> }</results>"#;
    let engine = FluxEngine::compile(q, PAPER_UNSAFE_DTD, &Options::default()).unwrap();
    // Prices come last in the stream but first in the query: everything
    // must wait for prices.
    let doc = "<bib><book><title>T</title><author>A</author><price>5</price></book></bib>";
    let (out, _) = engine.run_to_string(doc).unwrap();
    assert_eq!(
        out,
        "<results><result><price>5</price><title>T</title></result></results>"
    );
}

/// The paper's XSAX claim: on-first events fire at the earliest position
/// the DTD implies — under Figure 1, before the publisher even opens.
#[test]
fn authors_flushed_before_publisher_under_fig1() {
    // Query order: authors then publisher. Authors stream; the publisher
    // item also streams (all authors precede the publisher in Fig. 1).
    let q = r#"<results>{ for $b in $ROOT/bib/book return <r>{$b/author}{$b/publisher}</r> }</results>"#;
    let engine = FluxEngine::compile(q, PAPER_FIG1_DTD, &Options::default()).unwrap();
    assert_eq!(engine.buffered_handler_count(), 0, "{}", engine.explain());
}

/// Optimizations are observable end to end: the Goedel conditional is
/// eliminated and the query produces the (empty-filtered) result without
/// ever evaluating the condition.
#[test]
fn goedel_condition_removed_end_to_end() {
    let q = r#"<out>{ for $b in $ROOT/bib/book return if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit/> else <miss/> }</out>"#;
    let engine = FluxEngine::compile(q, PAPER_FIG1_DTD, &Options::default()).unwrap();
    assert!(engine.query().algebra_trace.iter().any(|r| r.rule == "R2"));
    let doc = "<bib><book><title>T</title><author>Goedel</author><publisher>P</publisher><price>1</price></book></bib>";
    let (out, _) = engine.run_to_string(doc).unwrap();
    assert_eq!(out, "<out><miss></miss></out>");
}
