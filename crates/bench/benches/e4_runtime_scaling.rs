//! E4 — runtime vs. document size for the three engine architectures
//! (the [8]-style runtime curve). Criterion timing companion to the
//! `experiments --e4` table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flux_bench::{Domain, Q3};
use fluxquery_core::{AnyEngine, EngineKind, Input};
use std::sync::Arc;

fn runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_runtime_scaling");
    for &scale in &[1.0f64, 4.0, 16.0] {
        let doc = Arc::new(Domain::BibWeak.document(scale, 42).into_bytes());
        group.throughput(Throughput::Bytes(doc.len() as u64));
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, Domain::BibWeak.dtd()).expect("compile");
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("scale-{scale}")),
                &doc,
                |b, doc| {
                    b.iter(|| {
                        let mut out = Vec::new();
                        engine
                            .run_input(Input::from_shared_bytes(Arc::clone(doc)), &mut out)
                            .expect("run");
                        out.len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = runtime_scaling
}
criterion_main!(benches);
