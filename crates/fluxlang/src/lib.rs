//! # flux-lang
//!
//! The **FluX** internal query language and the paper's query optimizer:
//!
//! * [`ast`] — `process-stream` / `on` / `on-first past(L)` abstract syntax;
//! * [`algebra`] — algebraic optimization with cardinality and language
//!   constraints (loop merging, unsatisfiable-conditional elimination);
//! * [`rewrite`] — the order-constraint scheduler turning normal-form
//!   XQuery into FluX with minimized buffering;
//! * [`safety`] — the independent "safe FluX" checker;
//! * [`optimizer`] — the end-to-end compilation pipeline with explain
//!   output.

pub mod algebra;
pub mod ast;
pub mod error;
pub mod optimizer;
pub mod pretty;
pub mod rewrite;
pub mod safety;

pub use algebra::{Optimizer, OptimizerConfig, RuleApplication};
pub use ast::{FluxExpr, Handler, PastSet};
pub use error::{FluxError, Result};
pub use optimizer::{compile, compile_expr, CompileOptions, FluxQuery};
pub use pretty::pretty_flux;
pub use rewrite::Rewriter;
pub use safety::check_safety;
