//! A minimal hand-rolled JSON writer (always compiled, no dependencies).
//!
//! Produces pretty-printed, two-space-indented JSON in insertion order —
//! the same house style as `BENCH_events.json`. Used by the
//! [`crate::report::RunReport`] renderer and by `flux_runtime`'s
//! `RunStats` serialization, so the schema survives builds without the
//! `enabled` feature.

/// An incremental JSON document builder.
///
/// Containers are opened and closed explicitly; the writer tracks comma
/// placement and indentation. Misnesting panics (builder bugs, not input
/// errors).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has an item.
    stack: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pad(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Comma/newline bookkeeping before writing a new item in the current
    /// container.
    fn item(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
            self.out.push('\n');
            self.pad();
        }
    }

    fn key(&mut self, key: &str) {
        self.item();
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\": ");
    }

    /// Opens the root object or an array-element object.
    pub fn begin_obj(&mut self) {
        self.item();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Opens `"key": {`.
    pub fn begin_named_obj(&mut self, key: &str) {
        self.key(key);
        self.out.push('{');
        self.stack.push(false);
    }

    pub fn end_obj(&mut self) {
        let had_items = self.stack.pop().expect("end_obj without begin_obj");
        if had_items {
            self.out.push('\n');
            self.pad();
        }
        self.out.push('}');
    }

    /// Opens `"key": [`.
    pub fn begin_named_arr(&mut self, key: &str) {
        self.key(key);
        self.out.push('[');
        self.stack.push(false);
    }

    pub fn end_arr(&mut self) {
        let had_items = self.stack.pop().expect("end_arr without begin_arr");
        if had_items {
            self.out.push('\n');
            self.pad();
        }
        self.out.push(']');
    }

    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
    }

    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        self.out.push_str(&format_f64(value));
    }

    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Splices pre-rendered JSON as the value of `key`, re-indented to
    /// the current nesting depth.
    pub fn field_raw(&mut self, key: &str, raw_json: &str) {
        self.key(key);
        let indent = "  ".repeat(self.stack.len());
        for (i, line) in raw_json.lines().enumerate() {
            if i > 0 {
                self.out.push('\n');
                self.out.push_str(&indent);
            }
            self.out.push_str(line);
        }
    }

    /// Writes a raw (already-rendered) array element.
    pub fn value_raw(&mut self, raw_json: &str) {
        self.item();
        self.out.push_str(raw_json);
    }

    /// The finished document (callers must have closed every container).
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }
}

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `f64` rendering: finite values with enough precision to round-trip
/// rates, non-finite values as 0 (JSON has no NaN/Infinity).
pub fn format_f64(value: f64) -> String {
    if value.is_finite() {
        if value == value.trunc() && value.abs() < 1e15 {
            format!("{value:.1}")
        } else {
            format!("{value}")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders_in_order() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("name", "q\"3\"");
        w.field_u64("events", 42);
        w.begin_named_obj("inner");
        w.field_bool("ok", true);
        w.field_f64("rate", 2.5);
        w.end_obj();
        w.begin_named_arr("items");
        w.value_raw("[1, 2]");
        w.end_arr();
        w.end_obj();
        let text = w.finish();
        assert_eq!(
            text,
            "{\n  \"name\": \"q\\\"3\\\"\",\n  \"events\": 42,\n  \"inner\": {\n    \"ok\": true,\n    \"rate\": 2.5\n  },\n  \"items\": [\n    [1, 2]\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers_stay_compact() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.begin_named_obj("empty");
        w.end_obj();
        w.begin_named_arr("none");
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), "{\n  \"empty\": {},\n  \"none\": []\n}");
    }

    #[test]
    fn raw_splice_reindents() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_raw("stats", "{\n  \"a\": 1\n}");
        w.end_obj();
        assert_eq!(w.finish(), "{\n  \"stats\": {\n    \"a\": 1\n  }\n}");
    }

    #[test]
    fn control_chars_escape() {
        let mut s = String::new();
        escape_into(&mut s, "a\u{1}\tb");
        assert_eq!(s, "a\\u0001\\tb");
    }
}
