//! The chunk splitter: finds shard boundaries that are safe to hand to
//! independent fragment parsers.
//!
//! A boundary is safe when it sits on the `<` of an element tag (start or
//! end tag) that is *markup* — not a `<` inside a comment, CDATA section,
//! processing instruction or DOCTYPE declaration. Restricting boundaries
//! to element tags has a second, load-bearing consequence: a text run
//! (including its merged CDATA sections) always ends at an element tag, so
//! **no event payload ever straddles a shard seam** and concatenating
//! shard event sequences reproduces the sequential event sequence exactly.
//!
//! The scan hops from `<` to `<` through the same vectorised structural
//! prescan that feeds the parser ([`flux_xml::simd`]): input is swept
//! block by block into the index's `<` lane only as far as the hop needs,
//! and special constructs are skipped atomically. The splitter therefore
//! shares the parser's single structural kernel instead of re-scanning
//! for `<` with its own byte loop, touches only markup-start bytes, and
//! still stops as soon as the last requested boundary is placed — the
//! cost is one vectorised pass over a prefix of the input.

use flux_xml::is_name_start;
use flux_xml::scan::{find_byte, find_subslice};
use flux_xml::simd::{self, StructuralIndex};

/// How many bytes one lazy prescan step sweeps into the index. Large
/// enough to amortise kernel dispatch, small enough that a splitter that
/// places its last boundary early never sweeps far past it.
const PRESCAN_BLOCK: usize = 64 * 1024;

/// Lazily prescanned `<` positions: the structural index is grown one
/// [`PRESCAN_BLOCK`] at a time, so a hop near the start of the input
/// never pays for indexing the whole document.
struct LtFeed<'a> {
    input: &'a [u8],
    idx: StructuralIndex,
    /// Bytes swept into the index so far.
    swept: usize,
}

impl<'a> LtFeed<'a> {
    fn new(input: &'a [u8]) -> Self {
        LtFeed {
            input,
            idx: StructuralIndex::new(),
            swept: 0,
        }
    }

    /// First `<` at or after `from`, sweeping further blocks on demand.
    /// Queries must be monotone non-decreasing (the splitter only moves
    /// forward).
    fn next_lt(&mut self, from: usize) -> Option<usize> {
        loop {
            if let Some(abs) = self.idx.lt.next_at_or_after(from as u64) {
                return Some(abs as usize);
            }
            if self.swept >= self.input.len() {
                return None;
            }
            let end = (self.swept + PRESCAN_BLOCK).min(self.input.len());
            simd::prescan_into(
                &self.input[self.swept..end],
                self.swept as u64,
                &mut self.idx,
            );
            self.swept = end;
            // Only the `<` lane is consumed here; flush the others so the
            // feed's footprint stays one block, not the swept prefix.
            self.idx.gt.drop_before(end as u64);
            self.idx.quote.drop_before(end as u64);
            self.idx.amp.drop_before(end as u64);
            self.idx.nl.drop_before(end as u64);
            self.idx.release_consumed();
        }
    }
}

/// Index just past the `>` closing a DOCTYPE declaration starting at
/// `start` (the `<` of `<!DOCTYPE`), honouring quoted literals, the
/// bracketed internal subset and comments inside it. `None` when the
/// declaration is unterminated.
pub(crate) fn doctype_end(input: &[u8], start: usize) -> Option<usize> {
    let mut i = start + "<!DOCTYPE".len();
    let mut in_subset = false;
    while i < input.len() {
        match input[i] {
            b'"' | b'\'' => {
                let quote = input[i];
                i = i + 1 + find_byte(&input[i + 1..], quote)? + 1;
            }
            b'[' => {
                in_subset = true;
                i += 1;
            }
            b']' => {
                in_subset = false;
                i += 1;
            }
            b'<' if in_subset && input[i..].starts_with(b"<!--") => {
                i = i + find_subslice(&input[i..], b"-->")? + 3;
            }
            b'>' if !in_subset => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// Outcome of one incremental boundary scan over a growing buffer
/// ([`find_boundary`]): the streaming chunker's resumable variant of the
/// whole-buffer [`split_points`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoundaryScan {
    /// A safe element-tag `<` at this offset, at or after the requested
    /// minimum.
    Found(usize),
    /// No safe boundary is determinable from the bytes seen so far.
    /// Append more input and re-scan from `resume` — the start of the
    /// unterminated (or not-yet-classifiable) construct, which is always
    /// outside every construct, so re-scanning from it is safe.
    NeedMore { resume: usize },
}

/// Finds the first safe element-tag `<` at or after `min_pos`, scanning
/// forward from `from`. `from` must lie outside every comment, CDATA
/// section, PI and DOCTYPE (position 0, a previous `resume`, or just past
/// a previously found boundary all qualify). Boundary classification is
/// identical to [`split_points`] — the buffered and streamed sharded
/// paths must agree on what a safe seam is.
pub(crate) fn find_boundary(input: &[u8], from: usize, min_pos: usize) -> BoundaryScan {
    let mut pos = from;
    while pos < input.len() {
        let Some(rel) = find_byte(&input[pos..], b'<') else {
            return BoundaryScan::NeedMore {
                resume: input.len(),
            };
        };
        let at = pos + rel;
        let rest = &input[at..];
        // A `<` too close to the buffer end to classify (`<!` may yet
        // become a comment, CDATA or DOCTYPE once more bytes arrive).
        if rest.len() < 9 && (rest.len() == 1 || rest[1] == b'!') {
            return BoundaryScan::NeedMore { resume: at };
        }
        if rest.starts_with(b"<!--") {
            match find_subslice(rest, b"-->") {
                Some(end) => pos = at + end + 3,
                None => return BoundaryScan::NeedMore { resume: at },
            }
        } else if rest.starts_with(b"<![CDATA[") {
            match find_subslice(rest, b"]]>") {
                Some(end) => pos = at + end + 3,
                None => return BoundaryScan::NeedMore { resume: at },
            }
        } else if rest.starts_with(b"<!DOCTYPE") {
            match doctype_end(input, at) {
                Some(end) => pos = end,
                None => return BoundaryScan::NeedMore { resume: at },
            }
        } else if rest.starts_with(b"<?") {
            match find_subslice(rest, b"?>") {
                Some(end) => pos = at + end + 2,
                None => return BoundaryScan::NeedMore { resume: at },
            }
        } else if rest[1] == b'/' || is_name_start(rest[1]) {
            if at >= min_pos && at > 0 {
                return BoundaryScan::Found(at);
            }
            pos = at + 1;
        } else {
            // `<` followed by nothing we recognise — malformed input; let
            // a fragment parser report it.
            pos = at + 1;
        }
    }
    BoundaryScan::NeedMore {
        resume: input.len(),
    }
}

/// Computes chunk start offsets for up to `shards` shards: the first chunk
/// starts at 0, every further chunk at a safe element-tag `<` at or after
/// its ideal `i * len / shards` position. Returns fewer boundaries (down
/// to a single chunk) when the document does not offer enough safe tags —
/// never an invalid one.
pub fn split_points(input: &[u8], shards: usize) -> Vec<usize> {
    let mut points = vec![0usize];
    if shards <= 1 || input.is_empty() {
        return points;
    }
    let ideal = |i: usize| i * input.len() / shards;
    let mut feed = LtFeed::new(input);
    let mut next = 1; // index of the next boundary to place
    let mut pos = 0usize;
    while next < shards && pos < input.len() {
        let Some(at) = feed.next_lt(pos) else {
            break;
        };
        let rest = &input[at..];
        if rest.starts_with(b"<!--") {
            match find_subslice(rest, b"-->") {
                Some(end) => pos = at + end + 3,
                None => break,
            }
        } else if rest.starts_with(b"<![CDATA[") {
            match find_subslice(rest, b"]]>") {
                Some(end) => pos = at + end + 3,
                None => break,
            }
        } else if rest.starts_with(b"<!DOCTYPE") {
            match doctype_end(input, at) {
                Some(end) => pos = end,
                None => break,
            }
        } else if rest.starts_with(b"<?") {
            match find_subslice(rest, b"?>") {
                Some(end) => pos = at + end + 2,
                None => break,
            }
        } else if rest.len() > 1 && (rest[1] == b'/' || is_name_start(rest[1])) {
            // A safe element-tag boundary. Place every boundary whose ideal
            // position we have passed (only once — duplicates would make
            // empty shards).
            if at > 0 && at >= ideal(next) {
                points.push(at);
                next += 1;
                while next < shards && at >= ideal(next) {
                    next += 1;
                }
            }
            pos = at + 1;
        } else {
            // `<` followed by something that is no construct we know —
            // malformed input; let a shard report it.
            pos = at + 1;
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points_of(doc: &str, shards: usize) -> Vec<usize> {
        split_points(doc.as_bytes(), shards)
    }

    #[test]
    fn single_shard_is_whole_input() {
        assert_eq!(points_of("<a><b/></a>", 1), vec![0]);
    }

    #[test]
    fn boundaries_sit_on_tags() {
        let doc = "<a>".to_string() + &"<b>x</b>".repeat(200) + "</a>";
        let pts = points_of(&doc, 4);
        assert_eq!(pts[0], 0);
        assert!(pts.len() > 1, "enough tags to split");
        for &p in &pts[1..] {
            assert_eq!(doc.as_bytes()[p], b'<');
            let next = doc.as_bytes()[p + 1];
            assert!(next == b'/' || is_name_start(next), "at {p}");
        }
        let mut sorted = pts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, pts, "strictly increasing, no duplicates");
    }

    #[test]
    fn never_splits_inside_comments_or_cdata() {
        // The only `<` bytes after position 0 live inside constructs; no
        // split point may land there.
        let filler = "<!-- <fake1/><fake2/><fake3/> -->".repeat(40);
        let doc = format!("<a>{filler}<![CDATA[<fake4/><fake5/>]]>{filler}</a>");
        let pts = points_of(&doc, 8);
        for &p in &pts[1..] {
            // Every boundary must be the real `</a>` or a tag outside the
            // constructs — verify by checking it is not inside a comment.
            let prefix = &doc[..p];
            let opens = prefix.matches("<!--").count();
            let closes = prefix.matches("-->").count();
            assert_eq!(opens, closes, "boundary {p} inside a comment");
            let copens = prefix.matches("<![CDATA[").count();
            let ccloses = prefix.matches("]]>").count();
            assert_eq!(copens, ccloses, "boundary {p} inside CDATA");
        }
    }

    #[test]
    fn doctype_with_subset_skipped_atomically() {
        let doc = r#"<!DOCTYPE bib [<!ELEMENT bib (book)*> <!ENTITY x "]<z>">]><bib><book/><book/><book/><book/></bib>"#;
        let pts = points_of(doc, 3);
        let subset_end = doc.find("]>").unwrap();
        for &p in &pts[1..] {
            assert!(p > subset_end, "boundary {p} inside the DOCTYPE");
        }
    }

    #[test]
    fn unterminated_construct_stops_splitting() {
        let doc = "<a><!-- never closed ".to_string() + &"x".repeat(500);
        assert_eq!(points_of(&doc, 4), vec![0], "no safe boundary found");
    }
}
