//! The XSAX parser: DTD validation + `on-first` event generation.
//!
//! The parser is **symbol-native**: at construction it clones the DTD's
//! [`SymbolTable`] into the underlying [`XmlReader`], so the symbols the
//! reader produces *are* the symbols the DTD's content-model DFAs
//! transition on — no per-event name lookup or re-hashing anywhere. Element
//! declarations and attribute lists are pre-resolved into dense
//! symbol-indexed tables.
//!
//! The hot pull API is the **zero-copy step protocol**:
//! [`XsaxParser::next_step`] advances and [`XsaxParser::view`] exposes the
//! delivered event as a borrowed [`RawEventRef`] — payload bytes flow from
//! the source's storage (scanner window or shard tape arena) to the
//! consumer without a copy. Attribute defaults a validating parser must
//! inject are kept in a side list and chained onto the view, so even
//! default injection does not force materialisation. The copying
//! [`XsaxParser::next_into`] and the owned [`XsaxParser::next`] APIs wrap
//! it for compatibility, tests and tools.

use crate::error::{Result, XsaxError};
use crate::event::{PastId, PastLabels, XsaxEvent, XsaxStep};
use flux_dtd::{AttDefault, Dfa, Dtd, ElementDecl, StateId, Symbol, SymbolTable};
use flux_telemetry::{RunReport, Stage, XsaxCounters};
use flux_xml::{EventSource, RawEvent, RawEventKind, RawEventRef, XmlEvent, XmlReader};
use std::collections::{HashMap, VecDeque};
use std::io::Read;

/// The symbol table an [`EventSource`] must be seeded with before it can
/// feed [`XsaxParser::from_source`]: the DTD's own table (element names)
/// plus every declared attribute name. Clones preserve indices, so symbols
/// produced by a seeded source *are* the symbols the DTD's content-model
/// DFAs transition on.
pub fn seeded_symbols(dtd: &Dtd) -> SymbolTable {
    let mut symbols = dtd.symbols().clone();
    for decl in dtd.elements() {
        for def in &decl.attlist {
            symbols.intern(&def.name);
        }
    }
    symbols
}

/// Configuration for [`XsaxParser`].
#[derive(Debug, Clone)]
pub struct XsaxConfig {
    /// Reject attributes that are not declared in an `ATTLIST` and require
    /// `#REQUIRED` attributes to be present. Defaults to `false`.
    pub strict_attributes: bool,
    /// Drop whitespace-only text between children of element-content
    /// elements ("ignorable whitespace"). Defaults to `true`.
    pub suppress_ignorable_whitespace: bool,
    /// Cap on the reader interner (see
    /// [`flux_xml::ReaderConfig::max_symbols`]); default `None`. The
    /// schema vocabulary is always pre-seeded, so on valid input the cap
    /// only affects undeclared names — which travel by literal spelling
    /// and never change validation verdicts or query output.
    pub max_symbols: Option<usize>,
    /// Scanner window size for the underlying reader (see
    /// [`flux_xml::ReaderConfig::window`]).
    pub window: usize,
    /// Memory budget threaded through to the reader's scanner (see
    /// [`flux_xml::ReaderConfig::budget`]).
    pub budget: Option<std::sync::Arc<flux_xml::MemoryBudget>>,
}

impl Default for XsaxConfig {
    fn default() -> Self {
        XsaxConfig {
            strict_attributes: false,
            suppress_ignorable_whitespace: true,
            max_symbols: None,
            window: flux_xml::DEFAULT_WINDOW,
            budget: None,
        }
    }
}

#[derive(Debug)]
struct Registration {
    /// Element type the query is registered on (kept for diagnostics).
    #[allow(dead_code)]
    element: Symbol,
    labels: PastLabels,
}

/// Per-instance tracker of one registration.
#[derive(Debug)]
struct Tracker {
    id: PastId,
    fired: bool,
}

struct OpenElement<'d> {
    symbol: Symbol,
    dfa: &'d Dfa,
    state: StateId,
    text_allowed: bool,
    /// Depth of this element (document = 0, root = 1).
    depth: usize,
    trackers: Vec<Tracker>,
}

/// One pre-resolved `ATTLIST` entry: interned name, requiredness, and the
/// default value to inject when the attribute is absent.
struct AttPlan<'d> {
    name: Symbol,
    required: bool,
    default: Option<&'d str>,
}

/// A queued deliverable: the parked sax event, or a fired past query.
enum Pending {
    Sax,
    Fire { id: PastId, depth: usize },
}

/// The XSAX validating parser. See the crate docs for the event-ordering
/// contract.
///
/// Generic over its [`EventSource`]: the classic constructors wrap a
/// sequential [`XmlReader`], while [`XsaxParser::from_source`] accepts any
/// seeded source — notably `flux_shard::ShardedReader`, whose shards parse
/// in parallel while this parser carries the content-model DFA
/// configuration (the single piece of cross-shard state) across every
/// shard seam, so validation verdicts are exactly the sequential ones.
pub struct XsaxParser<'d, S: EventSource> {
    source: S,
    dtd: &'d Dtd,
    config: XsaxConfig,
    registrations: Vec<Registration>,
    by_element: HashMap<Symbol, Vec<PastId>>,
    /// Dense per-symbol element declarations (`decls[sym.index()]`);
    /// symbols interned after construction (attribute names, undeclared
    /// element names) fall off the end and resolve to `None`.
    decls: Vec<Option<&'d ElementDecl>>,
    /// Dense per-symbol attribute plans, same indexing as `decls`.
    atts: Vec<Vec<AttPlan<'d>>>,
    stack: Vec<OpenElement<'d>>,
    /// Deliverables for the current stream seam, in delivery order.
    /// `Pending::Sax` refers to the *source's current event* — the source
    /// is not advanced again until the queue is drained, so the borrowed
    /// view stays valid across the queued deliveries.
    pending: VecDeque<Pending>,
    /// Attribute defaults injected for the current start element, chained
    /// onto the view after the literal attributes. Values borrow the DTD.
    injected: Vec<(Symbol, &'d str)>,
    /// Recycled event backing the owned-`XsaxEvent` compatibility API.
    compat: RawEvent,
    started: bool,
    finished: bool,
    /// Validation/fire counters (zero-sized unless telemetry is enabled).
    tel: XsaxCounters,
}

impl<'d, R: Read> XsaxParser<'d, XmlReader<R>> {
    /// Creates a parser over `src` validating against `dtd`.
    ///
    /// Fails when the DTD has no known root element (parse it with
    /// [`Dtd::parse_with_root`] in that case).
    pub fn new(src: R, dtd: &'d Dtd) -> Result<Self> {
        Self::with_config(src, dtd, XsaxConfig::default())
    }

    pub fn with_config(src: R, dtd: &'d Dtd, config: XsaxConfig) -> Result<Self> {
        // Seed the reader's interner with the DTD's table (plus attlist
        // names): clones preserve indices, so stream symbols coincide with
        // schema symbols and attribute validation is symbol equality too.
        let reader_config = flux_xml::ReaderConfig {
            max_symbols: config.max_symbols,
            window: config.window,
            budget: config.budget.clone(),
            ..Default::default()
        };
        let reader = XmlReader::with_symbols(src, reader_config, seeded_symbols(dtd));
        Self::from_source(reader, dtd, config)
    }
}

impl<'d, S: EventSource> XsaxParser<'d, S> {
    /// Wraps an already-seeded event source. `source.symbols()` must have
    /// been seeded with [`seeded_symbols`] (or a clone of it) so stream
    /// symbols coincide with schema symbols — this is how the parallel
    /// `ShardedReader` plugs in: its shards parse in parallel, and this
    /// parser threads the DFA configuration across their seams.
    pub fn from_source(source: S, dtd: &'d Dtd, config: XsaxConfig) -> Result<Self> {
        if dtd.content_dfa(SymbolTable::DOCUMENT).is_none() {
            return Err(XsaxError::Config {
                message: "the DTD has no unambiguous root element".to_string(),
            });
        }
        let symbols = source.symbols();
        let mut decls: Vec<Option<&'d ElementDecl>> = vec![None; dtd.symbols().len()];
        let mut atts: Vec<Vec<AttPlan<'d>>> = Vec::new();
        for decl in dtd.elements() {
            decls[decl.name.index()] = Some(decl);
            // Guard against unseeded sources: the dense tables below index
            // by schema symbol, which only works when the source's interner
            // agrees with the DTD's on every element name.
            if symbols.lookup(dtd.name(decl.name)) != Some(decl.name) {
                return Err(XsaxError::Config {
                    message: format!(
                        "event source symbols not seeded with element `{}` \
                         (seed the source with flux_xsax::seeded_symbols)",
                        dtd.name(decl.name)
                    ),
                });
            }
        }
        for decl in dtd.elements() {
            let plans: Result<Vec<AttPlan<'d>>> = decl
                .attlist
                .iter()
                .map(|def| {
                    Ok(AttPlan {
                        name: symbols.lookup(&def.name).ok_or_else(|| XsaxError::Config {
                            message: format!(
                                "event source symbols not seeded with attribute `{}` \
                                 (seed the source with flux_xsax::seeded_symbols)",
                                def.name
                            ),
                        })?,
                        required: matches!(def.default, AttDefault::Required),
                        default: match &def.default {
                            AttDefault::Default(v) | AttDefault::Fixed(v) => Some(v.as_str()),
                            _ => None,
                        },
                    })
                })
                .collect();
            if atts.len() <= decl.name.index() {
                atts.resize_with(decl.name.index() + 1, Vec::new);
            }
            atts[decl.name.index()] = plans?;
        }
        Ok(XsaxParser {
            source,
            dtd,
            config,
            registrations: Vec::new(),
            by_element: HashMap::new(),
            decls,
            atts,
            stack: Vec::new(),
            pending: VecDeque::new(),
            injected: Vec::new(),
            compat: RawEvent::new(),
            started: false,
            finished: false,
            tel: XsaxCounters::default(),
        })
    }

    /// Registers a past query: fire once per `element` instance as soon as
    /// no child with a label in `labels` can occur any more. Must be called
    /// before the first event is pulled.
    pub fn register_past(&mut self, element: Symbol, labels: PastLabels) -> Result<PastId> {
        if self.started {
            return Err(XsaxError::Config {
                message: "register_past called after streaming started".to_string(),
            });
        }
        let id = PastId(u32::try_from(self.registrations.len()).expect("too many registrations"));
        self.by_element.entry(element).or_default().push(id);
        self.registrations.push(Registration { element, labels });
        Ok(id)
    }

    /// Number of registered past queries.
    pub fn registration_count(&self) -> usize {
        self.registrations.len()
    }

    /// The shared symbol table (DTD symbols plus names interned from the
    /// stream). Use it to render the symbols in raw events.
    pub fn symbols(&self) -> &SymbolTable {
        self.source.symbols()
    }

    /// Current input position.
    pub fn position(&self) -> flux_xml::Position {
        self.source.position()
    }

    /// Appends the source's telemetry stages (scanner/reader, and the
    /// shard pipeline when the source is sharded) followed by this
    /// parser's own `xsax` stage. Stages are empty when the `telemetry`
    /// feature is off.
    pub fn report_into(&self, report: &mut RunReport) {
        self.source.report_into(report);
        let mut stage = Stage::new("xsax");
        stage.counter("registrations", self.registrations.len() as u64);
        stage.absorb(self.tel.snapshot());
        report.stage(stage);
    }

    fn validation(&self, message: impl Into<String>) -> XsaxError {
        XsaxError::Validation {
            message: message.into(),
            pos: self.source.position(),
        }
    }

    /// Fires all trackers of `elem` whose past condition holds at `state`
    /// (or unconditionally with `force`), queueing fire deliverables.
    fn fire_ready(
        registrations: &[Registration],
        elem: &mut OpenElement<'_>,
        state: StateId,
        force: bool,
        out: &mut VecDeque<Pending>,
        tel: &mut XsaxCounters,
    ) {
        let dfa = elem.dfa;
        let text_allowed = elem.text_allowed;
        let depth = elem.depth;
        for tracker in &mut elem.trackers {
            if tracker.fired {
                continue;
            }
            tel.past_fire_checks(1);
            let reg = &registrations[tracker.id.index()];
            if force || is_past_at(dfa, text_allowed, &reg.labels, state) {
                tracker.fired = true;
                out.push_back(Pending::Fire {
                    id: tracker.id,
                    depth,
                });
            }
        }
    }

    /// Pulls the next step of the validated stream — the zero-copy hot
    /// path.
    ///
    /// Returns [`XsaxStep::Sax`] when the next validated event is readable
    /// through [`XsaxParser::view`], [`XsaxStep::Fire`] for a fired past
    /// query, or `None` after `EndDocument` has been delivered. No payload
    /// bytes are copied and no heap is touched: the event stays wherever
    /// the source keeps it (scanner window, tape arena) until the next
    /// step consumes it.
    pub fn next_step(&mut self) -> Result<Option<XsaxStep>> {
        loop {
            if let Some(p) = self.pending.pop_front() {
                // Counted at delivery, so every push site is covered once.
                return Ok(Some(match p {
                    Pending::Sax => {
                        self.tel.sax_events(1);
                        XsaxStep::Sax
                    }
                    Pending::Fire { id, depth } => {
                        self.tel.fires(1);
                        XsaxStep::Fire { id, depth }
                    }
                }));
            }
            if self.finished {
                return Ok(None);
            }
            self.started = true;
            self.injected.clear();
            if !self.source.advance()? {
                self.finished = true;
                return Ok(None);
            }
            match self.source.view().kind() {
                RawEventKind::StartDocument => self.pending.push_back(Pending::Sax),
                RawEventKind::DoctypeDecl => {
                    if let Some(root) = self.dtd.root() {
                        let v = self.source.view();
                        let name = v.target();
                        if self.dtd.lookup(name) != Some(root) {
                            let message = format!(
                                "DOCTYPE names `{name}` but the DTD root is `{}`",
                                self.dtd.name(root)
                            );
                            return Err(self.validation(message));
                        }
                    }
                    self.pending.push_back(Pending::Sax);
                }
                RawEventKind::StartElement => self.handle_start()?,
                RawEventKind::EndElement => self.handle_end()?,
                RawEventKind::Text => self.handle_text()?,
                RawEventKind::Comment | RawEventKind::ProcessingInstruction => {}
                RawEventKind::EndDocument => {
                    self.finished = true;
                    self.pending.push_back(Pending::Sax);
                }
            }
        }
    }

    /// A borrowed view of the event behind the last [`XsaxStep::Sax`]:
    /// the source's current event plus any injected attribute defaults,
    /// valid until the next [`XsaxParser::next_step`].
    pub fn view(&self) -> RawEventRef<'_> {
        self.source.view().with_defaults(&self.injected)
    }

    /// Pulls the next step, materialising a delivered sax event into the
    /// caller-owned `ev` — the copying compatibility wrapper around
    /// [`XsaxParser::next_step`] / [`XsaxParser::view`].
    pub fn next_into(&mut self, ev: &mut RawEvent) -> Result<Option<XsaxStep>> {
        let step = self.next_step()?;
        if let Some(XsaxStep::Sax) = step {
            self.view().copy_into(ev);
        }
        Ok(step)
    }

    /// Pulls the next event as an owned [`XsaxEvent`], or `None` after
    /// `EndDocument`. Allocates per event.
    #[deprecated(
        since = "0.1.0",
        note = "legacy string-event wrapper; migrate to `XsaxParser::next_step` \
                with `view()` (borrowed zero-copy view) or `next_into` \
                (caller-owned recycled event). Both deliver interned `Symbol` \
                names; map them back with `symbols()` where strings are needed."
    )]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XsaxEvent>> {
        let mut ev = std::mem::take(&mut self.compat);
        let res = self.next_into(&mut ev);
        let out = match res {
            Ok(Some(XsaxStep::Sax)) => {
                Ok(Some(XsaxEvent::Sax(ev.to_xml_event(self.source.symbols()))))
            }
            Ok(Some(XsaxStep::Fire { id, depth })) => {
                Ok(Some(XsaxEvent::OnFirstPast { id, depth }))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(e),
        };
        self.compat = ev;
        out
    }

    /// Looks up the pre-resolved declaration for a stream symbol.
    fn decl_of(&self, sym: Symbol) -> Option<&'d ElementDecl> {
        self.decls.get(sym.index()).copied().flatten()
    }

    fn handle_start(&mut self) -> Result<()> {
        let v = self.source.view();
        let sym = v.name();
        let Some(decl) = self.decl_of(sym) else {
            let message = format!(
                "element `{}` is not declared in the DTD",
                v.name_str(self.source.symbols())
            );
            return Err(self.validation(message));
        };

        // Transition the parent's content automaton (the document automaton
        // for the root) and queue parent seam fires, in delivery order
        // (before the start tag).
        self.tel.validation_steps(1);
        if let Some(parent) = self.stack.last_mut() {
            let next = parent.dfa.transition(parent.state, sym).ok_or_else(|| {
                let expected: Vec<String> = parent
                    .dfa
                    .transitions(parent.state)
                    .iter()
                    .map(|&(s, _)| self.dtd.name(s).to_string())
                    .collect();
                XsaxError::Validation {
                    message: format!(
                        "element `{}` not allowed here inside `{}` (expected one of: {})",
                        v.name_str(self.source.symbols()),
                        self.dtd.name(parent.symbol),
                        if expected.is_empty() {
                            "end of element".to_string()
                        } else {
                            expected.join(", ")
                        }
                    ),
                    pos: self.source.position(),
                }
            })?;
            parent.state = next;
            // Fire parent trackers whose guarantee starts at this seam,
            // except those that mention this very child's label (they fire
            // once the child completes).
            let regs = &self.registrations;
            let parent_state = parent.state;
            let dfa = parent.dfa;
            let text_allowed = parent.text_allowed;
            let depth = parent.depth;
            for tracker in &mut parent.trackers {
                if tracker.fired {
                    continue;
                }
                self.tel.past_fire_checks(1);
                let reg = &regs[tracker.id.index()];
                let involves_child = match &reg.labels {
                    PastLabels::All => true,
                    PastLabels::Labels(set) => set.contains(&sym),
                };
                if !involves_child && is_past_at(dfa, text_allowed, &reg.labels, parent_state) {
                    tracker.fired = true;
                    self.pending.push_back(Pending::Fire {
                        id: tracker.id,
                        depth,
                    });
                }
            }
        } else {
            // Root element: validate against the virtual document model.
            let doc_dfa = self
                .dtd
                .content_dfa(SymbolTable::DOCUMENT)
                .expect("checked in constructor");
            if doc_dfa.transition(doc_dfa.start(), sym).is_none() {
                let message = format!(
                    "root element `{}` does not match the DTD root `{}`",
                    v.name_str(self.source.symbols()),
                    self.dtd.root().map(|r| self.dtd.name(r)).unwrap_or("?")
                );
                return Err(self.validation(message));
            }
        }

        self.validate_attributes(sym)?;

        // Open the element and instantiate its trackers.
        let depth = self.stack.len() + 1;
        let mut elem = OpenElement {
            symbol: sym,
            dfa: &decl.dfa,
            state: decl.dfa.start(),
            text_allowed: decl.text_allowed,
            depth,
            trackers: self
                .by_element
                .get(&sym)
                .map(|ids| ids.iter().map(|&id| Tracker { id, fired: false }).collect())
                .unwrap_or_default(),
        };

        // Delivery order: parent seam fires (already queued), then the
        // start tag, then immediately-past fires of the new element
        // (labels that can never occur in this element).
        self.pending.push_back(Pending::Sax);
        let start_state = elem.dfa.start();
        Self::fire_ready(
            &self.registrations,
            &mut elem,
            start_state,
            false,
            &mut self.pending,
            &mut self.tel,
        );

        self.stack.push(elem);
        Ok(())
    }

    fn handle_end(&mut self) -> Result<()> {
        // Document-mode readers and the stitched sharded reader guarantee
        // balance; guard anyway so a misused fragment source yields an
        // error, not a panic.
        let Some(elem) = self.stack.last_mut() else {
            return Err(XsaxError::Validation {
                message: "end tag with no open element (unbalanced event source)".to_string(),
                pos: self.source.position(),
            });
        };
        self.tel.validation_steps(1);
        if !elem.dfa.is_accepting(elem.state) {
            let expected: Vec<String> = elem
                .dfa
                .transitions(elem.state)
                .iter()
                .map(|&(s, _)| self.dtd.name(s).to_string())
                .collect();
            return Err(XsaxError::Validation {
                message: format!(
                    "content of `{}` is incomplete (expected one of: {})",
                    self.dtd.name(elem.symbol),
                    expected.join(", ")
                ),
                pos: self.source.position(),
            });
        }

        // Everything is past at the closing tag: fire all remaining trackers
        // before the end event.
        let state = elem.state;
        Self::fire_ready(
            &self.registrations,
            elem,
            state,
            true,
            &mut self.pending,
            &mut self.tel,
        );
        self.stack.pop();

        self.pending.push_back(Pending::Sax);

        // A completed child may release parent trackers that were deferred
        // because the child's own label was in their set.
        if let Some(parent) = self.stack.last_mut() {
            let parent_state = parent.state;
            Self::fire_ready(
                &self.registrations,
                parent,
                parent_state,
                false,
                &mut self.pending,
                &mut self.tel,
            );
        }
        Ok(())
    }

    fn handle_text(&mut self) -> Result<()> {
        self.tel.validation_steps(1);
        let elem = self.stack.last().ok_or_else(|| XsaxError::Validation {
            message: "character data outside the root element (unbalanced event source)"
                .to_string(),
            pos: self.source.position(),
        })?;
        let whitespace_only = self.source.view().is_whitespace_text();
        if !elem.text_allowed {
            if !whitespace_only {
                return Err(self.validation(format!(
                    "character data is not allowed inside `{}` (element content)",
                    self.dtd.name(elem.symbol)
                )));
            }
            if self.config.suppress_ignorable_whitespace {
                return Ok(());
            }
        }
        self.pending.push_back(Pending::Sax);
        Ok(())
    }

    /// Validates the current start tag's attributes against the element's
    /// pre-resolved `ATTLIST` and collects declared defaults into the
    /// injected side list (chained onto the view after the literal
    /// attributes), as a validating parser must. Pure symbol equality — no
    /// string hashing, and no event materialisation.
    fn validate_attributes(&mut self, sym: Symbol) -> Result<()> {
        let v = self.source.view();
        let plans = self.atts.get(sym.index()).map(Vec::as_slice).unwrap_or(&[]);
        if self.config.strict_attributes {
            for attr in v.attrs() {
                if !plans.iter().any(|d| d.name == attr.name) {
                    return Err(XsaxError::Validation {
                        message: format!(
                            "attribute `{}` is not declared for element `{}`",
                            attr.name_str(self.source.symbols()),
                            v.name_str(self.source.symbols())
                        ),
                        pos: self.source.position(),
                    });
                }
            }
            for def in plans {
                if def.required && !v.attrs().any(|a| a.name == def.name) {
                    return Err(XsaxError::Validation {
                        message: format!(
                            "required attribute `{}` missing on element `{}`",
                            self.source.symbols().name(def.name),
                            v.name_str(self.source.symbols())
                        ),
                        pos: self.source.position(),
                    });
                }
            }
        }
        for def in plans {
            let Some(value) = def.default else { continue };
            if !v.attrs().any(|a| a.name == def.name) {
                self.injected.push((def.name, value));
            }
        }
        Ok(())
    }
}

/// Whether `labels` is "past" at `state`: no label in the set can occur on
/// any continuation (text counts as always-possible while the element allows
/// character data).
fn is_past_at(dfa: &Dfa, text_allowed: bool, labels: &PastLabels, state: StateId) -> bool {
    match labels {
        PastLabels::All => false,
        PastLabels::Labels(set) => {
            if set.contains(&SymbolTable::TEXT) && text_allowed {
                return false;
            }
            let still = dfa.still_possible(state);
            set.iter()
                .filter(|&&s| s != SymbolTable::TEXT)
                .all(|s| !still.contains(s))
        }
    }
}

/// Convenience: validates a complete document, returning the number of
/// delivered events.
pub fn validate<R: Read>(src: R, dtd: &Dtd) -> Result<u64> {
    let mut parser = XsaxParser::new(src, dtd)?;
    let mut ev = RawEvent::new();
    let mut n = 0;
    while parser.next_into(&mut ev)?.is_some() {
        n += 1;
    }
    Ok(n)
}

/// Convenience for tests: runs a document through XSAX with the given past
/// registrations, returning a rendered event trace.
#[allow(deprecated)] // diagnostic helper; the owned-event API is its point
pub fn trace(
    input: &str,
    dtd: &Dtd,
    registrations: &[(Symbol, PastLabels)],
) -> Result<Vec<String>> {
    let mut parser = XsaxParser::new(input.as_bytes(), dtd)?;
    for (sym, labels) in registrations {
        parser.register_past(*sym, labels.clone())?;
    }
    let mut out = Vec::new();
    while let Some(ev) = parser.next()? {
        match ev {
            XsaxEvent::Sax(XmlEvent::StartDocument)
            | XsaxEvent::Sax(XmlEvent::EndDocument)
            | XsaxEvent::Sax(XmlEvent::DoctypeDecl { .. }) => {}
            XsaxEvent::Sax(XmlEvent::StartElement { name, .. }) => out.push(format!("<{name}>")),
            XsaxEvent::Sax(XmlEvent::EndElement { name }) => out.push(format!("</{name}>")),
            XsaxEvent::Sax(XmlEvent::Text(t)) => out.push(format!("{t:?}")),
            XsaxEvent::Sax(other) => out.push(other.kind().to_string()),
            XsaxEvent::OnFirstPast { id, .. } => out.push(format!("past#{}", id.0)),
        }
    }
    Ok(out)
}
#[cfg(test)]
mod tests {
    // Tests exercise the deprecated owned-event wrappers on purpose.
    #![allow(deprecated)]
    use super::*;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_WEAK_DTD};

    const FIG1_DOC: &str = "<bib><book><title>T1</title><author>A1</author><author>A2</author><publisher>P</publisher><price>9</price></book></bib>";
    const WEAK_DOC: &str =
        "<bib><book><author>A1</author><title>T1</title><author>A2</author></book></bib>";

    fn fig1() -> Dtd {
        Dtd::parse(PAPER_FIG1_DTD).unwrap()
    }

    fn weak() -> Dtd {
        Dtd::parse(PAPER_WEAK_DTD).unwrap()
    }

    #[test]
    fn validates_conforming_document() {
        let dtd = fig1();
        assert!(validate(FIG1_DOC.as_bytes(), &dtd).is_ok());
    }

    #[test]
    fn rejects_wrong_child_order() {
        let dtd = fig1();
        let doc = "<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>9</price></book></bib>";
        let err = validate(doc.as_bytes(), &dtd).unwrap_err();
        assert!(matches!(err, XsaxError::Validation { .. }), "{err}");
    }

    #[test]
    fn rejects_incomplete_content() {
        let dtd = fig1();
        let doc = "<bib><book><title>T</title><author>A</author></book></bib>";
        let err = validate(doc.as_bytes(), &dtd).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("incomplete"), "{msg}");
    }

    #[test]
    fn rejects_undeclared_element() {
        let dtd = fig1();
        let doc = "<bib><pamphlet/></bib>";
        let err = validate(doc.as_bytes(), &dtd).unwrap_err();
        assert!(err.to_string().contains("not declared"), "{err}");
    }

    #[test]
    fn rejects_wrong_root() {
        let dtd = fig1();
        let err = validate("<book/>".as_bytes(), &dtd).unwrap_err();
        assert!(err.to_string().contains("root"), "{err}");
    }

    #[test]
    fn rejects_text_in_element_content() {
        let dtd = fig1();
        let doc = "<bib>stray text</bib>";
        let err = validate(doc.as_bytes(), &dtd).unwrap_err();
        assert!(err.to_string().contains("character data"), "{err}");
    }

    #[test]
    fn ignorable_whitespace_suppressed() {
        let dtd = fig1();
        let doc = "<bib>\n  <book><title>T</title><author>A</author><publisher>P</publisher><price>9</price></book>\n</bib>";
        let events = trace(doc, &dtd, &[]).unwrap();
        assert!(!events.iter().any(|e| e.contains("\\n")), "{events:?}");
    }

    #[test]
    fn rejects_author_and_editor_together() {
        let dtd = fig1();
        let doc = "<bib><book><title>T</title><author>A</author><editor>E</editor><publisher>P</publisher><price>9</price></book></bib>";
        assert!(validate(doc.as_bytes(), &dtd).is_err());
    }

    #[test]
    fn strong_dtd_past_fires_before_editor_branch() {
        // past(title, author) fires as soon as the first editor arrives:
        // the editor branch excludes authors.
        let dtd = fig1();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        let doc = "<bib><book><title>T</title><editor>E</editor><publisher>P</publisher><price>9</price></book></bib>";
        let events = trace(doc, &dtd, &[(book, PastLabels::labels([title, author]))]).unwrap();
        let fire = events.iter().position(|e| e == "past#0").unwrap();
        let editor_start = events.iter().position(|e| e == "<editor>").unwrap();
        assert!(
            fire < editor_start,
            "past must fire before <editor> is delivered: {events:?}"
        );
    }

    #[test]
    fn strong_dtd_past_fires_after_last_author() {
        // Under Fig. 1, past(title, author) fires when <publisher> opens —
        // before its start event is delivered.
        let dtd = fig1();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        let events = trace(
            FIG1_DOC,
            &dtd,
            &[(book, PastLabels::labels([title, author]))],
        )
        .unwrap();
        let fire = events.iter().position(|e| e == "past#0").unwrap();
        let last_author_end = events.iter().rposition(|e| e == "</author>").unwrap();
        let publisher_start = events.iter().position(|e| e == "<publisher>").unwrap();
        assert!(fire > last_author_end, "{events:?}");
        assert!(fire < publisher_start, "{events:?}");
    }

    #[test]
    fn weak_dtd_past_fires_only_at_close() {
        // (title|author)*: another title/author can always arrive, so the
        // guarantee only holds at </book>.
        let dtd = weak();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        let events = trace(
            WEAK_DOC,
            &dtd,
            &[(book, PastLabels::labels([title, author]))],
        )
        .unwrap();
        let fire = events.iter().position(|e| e == "past#0").unwrap();
        let book_end = events.iter().position(|e| e == "</book>").unwrap();
        assert_eq!(
            fire + 1,
            book_end,
            "fires immediately before </book>: {events:?}"
        );
    }

    #[test]
    fn past_of_impossible_label_fires_at_open() {
        // `publisher` can never occur under the weak DTD's book.
        let dtd = weak();
        let book = dtd.lookup("book").unwrap();
        let mut parser = XsaxParser::new(WEAK_DOC.as_bytes(), &dtd).unwrap();
        // An undeclared label: intern it through a second DTD is impossible,
        // so use a label declared elsewhere — `bib` never occurs below book.
        let bib = dtd.lookup("bib").unwrap();
        parser
            .register_past(book, PastLabels::labels([bib]))
            .unwrap();
        let mut events = Vec::new();
        while let Some(ev) = parser.next().unwrap() {
            match ev {
                XsaxEvent::Sax(XmlEvent::StartElement { ref name, .. }) => {
                    events.push(format!("<{name}>"))
                }
                XsaxEvent::Sax(XmlEvent::EndElement { ref name }) => {
                    events.push(format!("</{name}>"))
                }
                XsaxEvent::OnFirstPast { .. } => events.push("fire".to_string()),
                _ => {}
            }
        }
        let book_start = events.iter().position(|e| e == "<book>").unwrap();
        assert_eq!(events[book_start + 1], "fire", "{events:?}");
    }

    #[test]
    fn fires_once_per_instance() {
        let dtd = weak();
        let book = dtd.lookup("book").unwrap();
        let author = dtd.lookup("author").unwrap();
        let doc = "<bib><book><author>A</author></book><book><title>T</title></book><book/></bib>";
        let events = trace(doc, &dtd, &[(book, PastLabels::labels([author]))]).unwrap();
        let fires = events.iter().filter(|e| *e == "past#0").count();
        assert_eq!(fires, 3, "one fire per book: {events:?}");
    }

    #[test]
    fn all_labels_fire_at_close_only() {
        let dtd = fig1();
        let book = dtd.lookup("book").unwrap();
        let events = trace(FIG1_DOC, &dtd, &[(book, PastLabels::All)]).unwrap();
        let fire = events.iter().position(|e| e == "past#0").unwrap();
        let book_end = events.iter().position(|e| e == "</book>").unwrap();
        assert_eq!(fire + 1, book_end, "{events:?}");
    }

    #[test]
    fn multiple_registrations_fire_in_order() {
        let dtd = fig1();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let events = trace(
            FIG1_DOC,
            &dtd,
            &[
                (book, PastLabels::labels([title])),
                (book, PastLabels::labels([title])),
            ],
        )
        .unwrap();
        let p0 = events.iter().position(|e| e == "past#0").unwrap();
        let p1 = events.iter().position(|e| e == "past#1").unwrap();
        assert!(p0 < p1, "{events:?}");
        // Both fire after </title> and before <author>.
        let title_end = events.iter().position(|e| e == "</title>").unwrap();
        let author_start = events.iter().position(|e| e == "<author>").unwrap();
        assert!(title_end < p0 && p1 < author_start, "{events:?}");
    }

    #[test]
    fn past_with_own_label_defers_to_child_end() {
        // past({title}) under Fig. 1 (title, ...): when <title> opens the
        // DFA already implies no second title, but the title itself is not
        // yet complete — the fire must come after </title>.
        let dtd = fig1();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let events = trace(FIG1_DOC, &dtd, &[(book, PastLabels::labels([title]))]).unwrap();
        let fire = events.iter().position(|e| e == "past#0").unwrap();
        let title_end = events.iter().position(|e| e == "</title>").unwrap();
        assert_eq!(
            fire,
            title_end + 1,
            "fires right after </title>: {events:?}"
        );
    }

    #[test]
    fn text_label_with_mixed_content_fires_at_close() {
        let dtd = Dtd::parse("<!ELEMENT note (#PCDATA)>").unwrap();
        let note = dtd.lookup("note").unwrap();
        let events = trace(
            "<note>some text</note>",
            &dtd,
            &[(note, PastLabels::labels([SymbolTable::TEXT]))],
        )
        .unwrap();
        assert_eq!(events, vec!["<note>", "\"some text\"", "past#0", "</note>"]);
    }

    #[test]
    fn text_label_with_element_content_fires_at_open() {
        let dtd = Dtd::parse("<!ELEMENT a (b*)>\n<!ELEMENT b EMPTY>").unwrap();
        let a = dtd.lookup("a").unwrap();
        let events = trace(
            "<a><b/></a>",
            &dtd,
            &[(a, PastLabels::labels([SymbolTable::TEXT]))],
        )
        .unwrap();
        assert_eq!(events[0], "<a>");
        assert_eq!(events[1], "past#0", "text can never occur: fires at open");
    }

    #[test]
    fn attribute_defaults_injected() {
        let dtd =
            Dtd::parse("<!ELEMENT a EMPTY>\n<!ATTLIST a lang CDATA \"en\" rel CDATA #FIXED \"x\">")
                .unwrap();
        let mut parser = XsaxParser::new("<a/>".as_bytes(), &dtd).unwrap();
        let mut found = false;
        while let Some(ev) = parser.next().unwrap() {
            if let XsaxEvent::Sax(XmlEvent::StartElement { attributes, .. }) = ev {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].value, "en");
                assert_eq!(attributes[1].value, "x");
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn explicit_attribute_beats_default() {
        let dtd = Dtd::parse("<!ELEMENT a EMPTY>\n<!ATTLIST a lang CDATA \"en\">").unwrap();
        let mut parser = XsaxParser::new(r#"<a lang="de"/>"#.as_bytes(), &dtd).unwrap();
        while let Some(ev) = parser.next().unwrap() {
            if let XsaxEvent::Sax(XmlEvent::StartElement { attributes, .. }) = ev {
                assert_eq!(attributes.len(), 1);
                assert_eq!(attributes[0].value, "de");
            }
        }
    }

    #[test]
    fn strict_attributes_enforced() {
        let dtd = Dtd::parse("<!ELEMENT a EMPTY>\n<!ATTLIST a id CDATA #REQUIRED>").unwrap();
        let config = XsaxConfig {
            strict_attributes: true,
            ..XsaxConfig::default()
        };
        // Missing required attribute.
        let mut p = XsaxParser::with_config("<a/>".as_bytes(), &dtd, config.clone()).unwrap();
        let err = loop {
            match p.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected validation error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("required"), "{err}");
        // Undeclared attribute.
        let mut p =
            XsaxParser::with_config(r#"<a id="1" bogus="2"/>"#.as_bytes(), &dtd, config).unwrap();
        let err = loop {
            match p.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected validation error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("not declared"), "{err}");
    }

    #[test]
    fn register_after_start_rejected() {
        let dtd = weak();
        let book = dtd.lookup("book").unwrap();
        let mut parser = XsaxParser::new(WEAK_DOC.as_bytes(), &dtd).unwrap();
        parser.next().unwrap();
        assert!(parser.register_past(book, PastLabels::All).is_err());
    }

    #[test]
    fn doctype_mismatch_rejected() {
        let dtd = fig1();
        let doc = "<!DOCTYPE book><bib></bib>";
        let err = validate(doc.as_bytes(), &dtd).unwrap_err();
        assert!(err.to_string().contains("DOCTYPE"), "{err}");
    }

    #[test]
    fn nested_instances_tracked_independently() {
        // Recursive DTD: section contains sections.
        let dtd = Dtd::parse(
            "<!ELEMENT doc (section)>\n<!ELEMENT section (head, section?, tail?)>\n<!ELEMENT head EMPTY>\n<!ELEMENT tail EMPTY>",
        )
        .unwrap();
        let section = dtd.lookup("section").unwrap();
        let head = dtd.lookup("head").unwrap();
        let doc = "<doc><section><head/><section><head/></section><tail/></section></doc>";
        let events = trace(doc, &dtd, &[(section, PastLabels::labels([head]))]).unwrap();
        let fires = events.iter().filter(|e| *e == "past#0").count();
        assert_eq!(
            fires, 2,
            "inner and outer section each fire once: {events:?}"
        );
        // The first fire (outer section) comes right after the first </head>.
        let first_head_end = events.iter().position(|e| e == "</head>").unwrap();
        assert_eq!(events[first_head_end + 1], "past#0", "{events:?}");
    }
}
