//! The pull-event source abstraction.
//!
//! [`EventSource`] is the contract between event *producers* (the
//! sequential [`XmlReader`], the parallel `flux_shard::ShardedReader`) and
//! event *consumers* (the XSAX validating parser, the FluX runtime): one
//! recycled [`RawEvent`] rewritten per pull, names interned in a
//! [`SymbolTable`] owned by the source. Consumers written against this
//! trait work unchanged over a single-threaded stream or a sharded,
//! multi-core one.

use crate::error::{Position, Result};
use crate::event::RawEvent;
use crate::reader::XmlReader;
use flux_symbols::SymbolTable;
use std::io::Read;

/// A pull source of recycled [`RawEvent`]s.
pub trait EventSource {
    /// Pulls the next event into the caller-owned `ev`, recycling its
    /// buffers. Returns `Ok(false)` once `EndDocument` has been delivered.
    fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool>;

    /// The interner mapping the [`flux_symbols::Symbol`]s in delivered
    /// events back to names. Sources seeded from a schema table preserve
    /// its indices, so stream symbols coincide with schema symbols.
    fn symbols(&self) -> &SymbolTable;

    /// Current input position, for error reporting. Sources without exact
    /// line/column knowledge (e.g. a sharded reader mid-replay) report a
    /// best-effort byte offset.
    fn position(&self) -> Position;
}

impl<R: Read> EventSource for XmlReader<R> {
    fn next_into(&mut self, ev: &mut RawEvent) -> Result<bool> {
        XmlReader::next_into(self, ev)
    }

    fn symbols(&self) -> &SymbolTable {
        XmlReader::symbols(self)
    }

    fn position(&self) -> Position {
        XmlReader::position(self)
    }
}
