//! Streamed sharded ingestion: incremental chunk dispatch over an
//! unbounded `Read`, replacing the buffered path's up-front `Vec<u8>`.
//!
//! Three thread roles cooperate through bounded channels, so every memory
//! pool is capped independently of document size:
//!
//! * the **dispatcher** owns the byte source. It accumulates a carry
//!   buffer up to the configured chunk size, extends it to the next safe
//!   element-tag boundary ([`crate::splitter::find_boundary`] — the same
//!   seam rule as the buffered splitter), and ships each chunk as an
//!   [`Arc<Vec<u8>>`] job. The job channel is bounded by the worker
//!   count, so at most O(workers) chunks are ever in flight;
//! * a pool of **workers** pulls jobs and parses each chunk in fragment
//!   mode, handing over *partial tapes* every `segment_events` events
//!   through a per-chunk channel bounded by `segment_queue` — in-flight
//!   tape memory is O(segment × queue × workers), not O(chunk);
//! * the **consumer** (the [`crate::ShardedReader`] merger) receives
//!   chunks in dispatch order and replays their segment chains, applying
//!   exactly the document-level re-checks of the buffered path.
//!
//! Every pool charges the optional [`MemoryBudget`]: chunk buffers as
//! [`BudgetKind::Chunk`] (released when the merger finishes the chunk),
//! segment tapes as [`BudgetKind::Tape`] (released when the segment is
//! replayed), and each worker's scanner window as `Window` via the
//! reader's own accounting.

use crate::splitter::{find_boundary, BoundaryScan};
use crate::worker::{parse_segmented, Segment, SegmentLimits};
use flux_symbols::SymbolTable;
use flux_telemetry::Stopwatch;
use flux_xml::{BudgetKind, MemoryBudget, ReaderConfig};
use std::io::Read;
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

/// Floor for the configured chunk size: chunks below this thrash the
/// dispatch machinery without buying parallelism.
pub(crate) const MIN_CHUNK_BYTES: usize = 4 * 1024;

/// Read granularity of the dispatcher's carry buffer.
const READ_BLOCK: usize = 64 * 1024;

/// One parse assignment: a chunk plus the channel its segments go out on.
struct Job {
    bytes: Arc<Vec<u8>>,
    seg_tx: SyncSender<Segment>,
}

/// What the dispatcher hands the consumer for one chunk, in dispatch
/// order. The segment chain arrives through `seg_rx` as the worker
/// parses.
pub(crate) struct ChunkHandle {
    /// The chunk's bytes — kept by the consumer for the whitespace-skip
    /// error-position replay, shared with the parsing worker.
    pub bytes: Arc<Vec<u8>>,
    /// The chunk's segment chain (at least one segment, the last flagged).
    pub seg_rx: Receiver<Segment>,
    /// Whether this is the document's final chunk (known at cut time:
    /// only end-of-input finalises a chunk).
    pub is_final: bool,
    /// Budget charge for `bytes`, released when the consumer drops the
    /// handle at chunk end.
    pub charge: Option<flux_xml::BudgetCharge>,
}

/// Dispatch-ordered message stream the consumer receives.
pub(crate) enum ChunkMsg {
    Chunk(ChunkHandle),
    /// The byte source failed mid-stream; terminal.
    Io(std::io::Error),
}

/// Incremental chunker: reads the source into a carry buffer and cuts it
/// at safe element-tag boundaries at or after the target size.
struct Chunker {
    src: Box<dyn Read + Send>,
    carry: Vec<u8>,
    /// Scan may resume here: a position known to be outside every
    /// markup construct.
    resume: usize,
    eof: bool,
    target: usize,
    produced_any: bool,
}

impl Chunker {
    fn new(src: Box<dyn Read + Send>, target: usize) -> Self {
        Chunker {
            src,
            carry: Vec::with_capacity(target + READ_BLOCK),
            resume: 0,
            eof: false,
            target,
            produced_any: false,
        }
    }

    /// Appends one read block to the carry buffer.
    fn fill_block(&mut self) -> std::io::Result<()> {
        let old_len = self.carry.len();
        self.carry.resize(old_len + READ_BLOCK, 0);
        let read = self.src.read(&mut self.carry[old_len..])?;
        self.carry.truncate(old_len + read);
        if read == 0 {
            self.eof = true;
        }
        Ok(())
    }

    /// The next chunk and whether it is the document's last, or `None`
    /// once the input is exhausted.
    fn next_chunk(&mut self) -> std::io::Result<Option<(Vec<u8>, bool)>> {
        loop {
            while !self.eof && self.carry.len() < self.target {
                self.fill_block()?;
            }
            if self.eof && self.carry.len() <= self.target {
                // Everything left (possibly empty, for an empty document
                // that still needs its one chunk so the merger can raise
                // the sequential missing-root error) is the final chunk.
                if self.carry.is_empty() && self.produced_any {
                    return Ok(None);
                }
                self.produced_any = true;
                self.resume = 0;
                return Ok(Some((std::mem::take(&mut self.carry), true)));
            }
            match find_boundary(&self.carry, self.resume, self.target) {
                BoundaryScan::Found(cut) => {
                    // The boundary `<` starts the next chunk, so the carry
                    // is never empty after a cut — end-of-input is always
                    // reached with bytes in hand, and the final chunk is
                    // recognisable as final when it is cut.
                    let rest = self.carry.split_off(cut);
                    let chunk = std::mem::replace(&mut self.carry, rest);
                    self.resume = 0;
                    self.produced_any = true;
                    return Ok(Some((chunk, false)));
                }
                BoundaryScan::NeedMore { resume } => {
                    self.resume = resume;
                    if self.eof {
                        // No safe seam in what remains: ship it whole.
                        self.produced_any = true;
                        self.resume = 0;
                        return Ok(Some((std::mem::take(&mut self.carry), true)));
                    }
                    self.fill_block()?;
                }
            }
        }
    }
}

/// Everything the streaming pipeline needs at launch.
pub(crate) struct StreamLaunch {
    pub source: Box<dyn Read + Send>,
    pub reader_config: ReaderConfig,
    pub seed: SymbolTable,
    pub epoch: Stopwatch,
    pub workers: usize,
    pub chunk_bytes: usize,
    pub segment_events: usize,
    pub segment_bytes: usize,
    pub segment_queue: usize,
    pub budget: Option<Arc<MemoryBudget>>,
}

/// Spawns the dispatcher and the worker pool; returns the consumer's
/// dispatch-ordered chunk stream. All threads shut down on their own when
/// either the source ends or the consumer drops the receiver (send errors
/// make every role bail out).
pub(crate) fn start_stream(launch: StreamLaunch) -> Receiver<ChunkMsg> {
    let StreamLaunch {
        source,
        reader_config,
        seed,
        epoch,
        workers,
        chunk_bytes,
        segment_events,
        segment_bytes,
        segment_queue,
        budget,
    } = launch;
    let workers = workers.max(1);
    let chunk_bytes = chunk_bytes.max(MIN_CHUNK_BYTES);
    let segment_queue = segment_queue.max(1);
    let limits = SegmentLimits {
        events: segment_events,
        bytes: segment_bytes,
    };
    // Jobs: bounded by the worker count, so the dispatcher stalls (and
    // stops reading the source) instead of buffering unparsed chunks.
    let (job_tx, job_rx) = sync_channel::<Job>(workers);
    // Chunk handles: plain channel, but in practice bounded by the job
    // channel — the dispatcher sends one handle per job it manages to
    // enqueue.
    let (chunk_tx, chunk_rx) = channel::<ChunkMsg>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    for _ in 0..workers {
        let job_rx = Arc::clone(&job_rx);
        let cfg = reader_config.clone();
        let seed = seed.clone();
        let budget = budget.clone();
        std::thread::spawn(move || {
            loop {
                // Holding the lock across the recv is the point: exactly
                // one idle worker waits on the channel, the rest queue on
                // the mutex — a classic shared work queue.
                let job = match job_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => return,
                };
                let Ok(Job { bytes, seg_tx }) = job else {
                    return; // dispatcher gone, no more chunks
                };
                parse_segmented(&bytes, &cfg, &seed, epoch, limits, budget.as_ref(), &seg_tx);
            }
        });
    }
    std::thread::spawn(move || {
        let mut chunker = Chunker::new(source, chunk_bytes);
        loop {
            match chunker.next_chunk() {
                Ok(Some((chunk, is_final))) => {
                    let bytes = Arc::new(chunk);
                    let charge = budget
                        .as_ref()
                        .map(|b| b.charge(BudgetKind::Chunk, bytes.len() as u64));
                    let (seg_tx, seg_rx) = sync_channel::<Segment>(segment_queue);
                    let handle = ChunkHandle {
                        bytes: Arc::clone(&bytes),
                        seg_rx,
                        is_final,
                        charge,
                    };
                    if chunk_tx.send(ChunkMsg::Chunk(handle)).is_err() {
                        return; // consumer gone
                    }
                    if job_tx.send(Job { bytes, seg_tx }).is_err() {
                        return; // workers gone (only after consumer drop)
                    }
                    if is_final {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = chunk_tx.send(ChunkMsg::Io(e));
                    return;
                }
            }
        }
    });
    chunk_rx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks_of(doc: &str, target: usize) -> Vec<(Vec<u8>, bool)> {
        let mut chunker = Chunker::new(
            Box::new(std::io::Cursor::new(doc.as_bytes().to_vec())),
            target,
        );
        let mut out = Vec::new();
        while let Some(c) = chunker.next_chunk().unwrap() {
            out.push(c);
        }
        out
    }

    #[test]
    fn chunks_reassemble_exactly_and_cut_on_tags() {
        let doc = "<r>".to_string() + &"<b attr=\"v\">text &amp; more</b>".repeat(2000) + "</r>";
        let chunks = chunks_of(&doc, MIN_CHUNK_BYTES);
        assert!(chunks.len() > 1, "large doc must split");
        let mut glued = Vec::new();
        for (i, (chunk, is_final)) in chunks.iter().enumerate() {
            assert_eq!(*is_final, i + 1 == chunks.len(), "only the last is final");
            if i > 0 {
                assert_eq!(chunk[0], b'<', "chunks start on tag boundaries");
            }
            glued.extend_from_slice(chunk);
        }
        assert_eq!(glued, doc.as_bytes());
    }

    #[test]
    fn constructs_never_straddle_cuts() {
        // Comments bigger than the chunk target: every cut must fall
        // outside them.
        let filler = format!("<!-- {} -->", "pad ".repeat(3000));
        let doc = format!("<r>{}<a/>{}<b/>{}</r>", filler, filler, filler);
        let chunks = chunks_of(&doc, MIN_CHUNK_BYTES);
        let mut offset = 0;
        for (chunk, _) in &chunks[..chunks.len().saturating_sub(1)] {
            offset += chunk.len();
            let prefix = &doc.as_bytes()[..offset];
            let s = std::str::from_utf8(prefix).unwrap();
            assert_eq!(
                s.matches("<!--").count(),
                s.matches("-->").count(),
                "cut at {offset} inside a comment"
            );
        }
        let glued: Vec<u8> = chunks.iter().flat_map(|(c, _)| c.iter().copied()).collect();
        assert_eq!(glued, doc.as_bytes());
    }

    #[test]
    fn empty_input_yields_one_final_chunk() {
        let chunks = chunks_of("", MIN_CHUNK_BYTES);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].0.is_empty());
        assert!(chunks[0].1);
    }

    #[test]
    fn small_input_is_one_final_chunk() {
        let chunks = chunks_of("<a><b/></a>", MIN_CHUNK_BYTES);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].0, b"<a><b/></a>");
        assert!(chunks[0].1);
    }
}
