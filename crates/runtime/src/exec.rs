//! The streamed query evaluator (paper Sec. 3.2).
//!
//! Drives XSAX events through the physical plan: per open element it keeps
//! an `ElementCtx` recording which process-streams dispatch that
//! element's children, which buffers the element populates (per the BDF's
//! projection views), whether its events are being stream-copied to the
//! output, and which output end tags it owes. `on-first` events from XSAX
//! trigger buffered evaluation of handler bodies over the buffer store.
//!
//! The event loop runs on the **zero-copy view path**: each step exposes
//! the validated event as a borrowed [`RawEventRef`] whose payloads live
//! in the source's storage (scanner window or shard tape arena), handler
//! dispatch and buffer descent are symbol comparisons against the stream's
//! shared [`SymbolTable`], and the output writer maps symbols back through
//! the same table, streaming payload bytes straight from the view into the
//! sink. An event that only streams (no buffering) costs zero heap
//! allocations and zero payload copies on the way through.

use crate::buffer::BufferArena;
use crate::error::{Result, RuntimeError};
use crate::plan::{compile_plan, DocTiming, HandlerPlan, Plan, PlanExpr, PsId};
use crate::stats::RunStats;
use flux_dtd::Dtd;
use flux_lang::FluxQuery;
use flux_telemetry::{RunReport, RuntimeCounters, Stage};
use flux_xml::tree::NodeId;
use flux_xml::{EventSource, RawEventKind, RawEventRef, SymbolTable, XmlWriter};
use flux_xquery::{CompiledExpr, CursorEvaluator, Slots};
use flux_xsax::{XsaxConfig, XsaxParser, XsaxStep};
use std::io::{Read, Write};
use std::time::Instant;

use crate::bdf::SpecView;

/// Per-open-element execution state.
#[derive(Default)]
struct ElementCtx {
    /// Events inside this element are copied to the output.
    copying: bool,
    /// Buffer insertion points this element's content populates.
    buf_targets: Vec<(NodeId, SpecView)>,
    /// Process-streams dispatching this element's children.
    scopes: Vec<PsId>,
    /// Output end tags owed when this element closes.
    closers: usize,
    /// Variable bindings to restore at close (slot, shadowed value).
    bindings: Vec<(usize, Option<NodeId>)>,
    /// Scope shells to free at close.
    shells: Vec<NodeId>,
}

/// Executes a compiled FluX query over an XML input stream.
pub struct Executor<'d> {
    dtd: &'d Dtd,
    plan: Plan,
}

impl<'d> Executor<'d> {
    /// Compiles the physical plan for `query`.
    pub fn new(query: &FluxQuery, dtd: &'d Dtd) -> Result<Self> {
        let plan = compile_plan(query, dtd)?;
        Ok(Executor { dtd, plan })
    }

    /// The compiled plan (for explain output).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Runs the query over `input`, writing the result stream to `output`.
    pub fn run<R: Read, W: Write>(&self, input: R, output: W) -> Result<RunStats> {
        self.run_with_config(input, output, XsaxConfig::default())
    }

    pub fn run_with_config<R: Read, W: Write>(
        &self,
        input: R,
        output: W,
        config: XsaxConfig,
    ) -> Result<RunStats> {
        execute_plan(&self.plan, self.dtd, input, output, config)
    }

    /// Runs the query and additionally assembles the run's telemetry
    /// [`RunReport`] (structurally valid — but empty-staged — without the
    /// `telemetry` feature).
    pub fn run_with_report<R: Read, W: Write>(
        &self,
        input: R,
        output: W,
    ) -> Result<(RunStats, RunReport)> {
        execute_plan_with_report(&self.plan, self.dtd, input, output, XsaxConfig::default())
    }
}

/// Runs a pre-compiled physical plan over an input stream. This is the
/// lowest-level entry point; [`Executor`] and the `fluxquery-core` facade
/// wrap it.
pub fn execute_plan<R: Read, W: Write>(
    plan: &Plan,
    dtd: &Dtd,
    input: R,
    output: W,
    config: XsaxConfig,
) -> Result<RunStats> {
    run_events(plan, XsaxParser::with_config(input, dtd, config)?, output)
}

/// [`execute_plan`] plus the run's assembled telemetry [`RunReport`].
pub fn execute_plan_with_report<R: Read, W: Write>(
    plan: &Plan,
    dtd: &Dtd,
    input: R,
    output: W,
    config: XsaxConfig,
) -> Result<(RunStats, RunReport)> {
    let (stats, report) = run_events_inner(
        plan,
        XsaxParser::with_config(input, dtd, config)?,
        output,
        true,
    )?;
    Ok((stats, report.expect("report requested")))
}

/// Runs a pre-compiled plan over an arbitrary [`EventSource`] — the entry
/// point for parallel input: hand it a `flux_shard::ShardedReader` seeded
/// with `flux_xsax::seeded_symbols(&dtd)` and the shards parse on their
/// own threads while this evaluator (and the XSAX DFA configuration it
/// drives) consumes the stitched stream sequentially.
pub fn execute_plan_from_source<S: EventSource, W: Write>(
    plan: &Plan,
    dtd: &Dtd,
    source: S,
    output: W,
    config: XsaxConfig,
) -> Result<RunStats> {
    run_events(plan, XsaxParser::from_source(source, dtd, config)?, output)
}

/// [`execute_plan_from_source`] plus the run's telemetry [`RunReport`] —
/// with a sharded source, the report carries the per-shard pipeline
/// timeline the source recorded.
pub fn execute_plan_from_source_with_report<S: EventSource, W: Write>(
    plan: &Plan,
    dtd: &Dtd,
    source: S,
    output: W,
    config: XsaxConfig,
) -> Result<(RunStats, RunReport)> {
    let (stats, report) = run_events_inner(
        plan,
        XsaxParser::from_source(source, dtd, config)?,
        output,
        true,
    )?;
    Ok((stats, report.expect("report requested")))
}

fn run_events<S: EventSource, W: Write>(
    plan: &Plan,
    parser: XsaxParser<'_, S>,
    output: W,
) -> Result<RunStats> {
    run_events_inner(plan, parser, output, false).map(|(stats, _)| stats)
}

fn run_events_inner<S: EventSource, W: Write>(
    plan: &Plan,
    mut parser: XsaxParser<'_, S>,
    output: W,
    want_report: bool,
) -> Result<(RunStats, Option<RunReport>)> {
    let start_time = Instant::now();
    for reg in &plan.past_regs {
        parser.register_past(reg.element, reg.labels.clone())?;
    }
    // The BDF's edges were interned at plan-compile time against the
    // DTD's table — the same index space the stream's seeded interner
    // uses — so per-event descent is pure symbol equality with no per-run
    // index build. The arena document seeds its name table from the
    // stream's, so buffered names import as integer copies.
    let mut state = ExecState {
        plan,
        arena: BufferArena::with_symbols(parser.symbols().clone()),
        slots: plan.slots.make_slots(),
        evaluator: CursorEvaluator::new(),
        writer: XmlWriter::new(output),
        stack: Vec::new(),
        events: 0,
        tel: RuntimeCounters::default(),
    };
    while let Some(step) = parser.next_step()? {
        state.events += 1;
        match step {
            XsaxStep::Sax => {
                let v = parser.view();
                state.handle(&v, parser.symbols())?;
            }
            XsaxStep::Fire { id, depth } => state.on_first(id.index(), depth)?,
        }
    }
    state.writer.finish()?;
    let stats = RunStats {
        peak_buffer_bytes: state.arena.tracker().peak_bytes(),
        peak_buffer_nodes: state.arena.tracker().peak_nodes(),
        total_buffered_bytes: state.arena.tracker().total_allocated_bytes(),
        output_bytes: state.writer.bytes_written(),
        events: state.events,
        duration: start_time.elapsed(),
    };
    // Report assembly happens once, after the stream is drained — the
    // plain `run_events` path skips even that.
    let report = want_report.then(|| assemble_report(&parser, &state, &stats));
    Ok((stats, report))
}

/// Builds the unified [`RunReport`]: the source's stages (scanner/reader,
/// shard pipeline), the XSAX stage, then the runtime and buffer stages
/// owned here.
fn assemble_report<S: EventSource, W: Write>(
    parser: &XsaxParser<'_, S>,
    state: &ExecState<'_, W>,
    stats: &RunStats,
) -> RunReport {
    let mut report = RunReport::new();
    parser.report_into(&mut report);
    let tracker = state.arena.tracker();
    let mut runtime = Stage::new("runtime");
    runtime.counter("events", state.events);
    runtime.absorb(state.tel.snapshot());
    runtime.absorb(tracker.telemetry().snapshot());
    runtime.counter("output_bytes", stats.output_bytes);
    runtime.rate("events_per_second", stats.events_per_second());
    report.stage(runtime);
    let mut buffers = Stage::new("buffers");
    buffers.counter("peak_bytes", stats.peak_buffer_bytes as u64);
    buffers.counter("peak_nodes", stats.peak_buffer_nodes as u64);
    buffers.counter("traffic_bytes", stats.total_buffered_bytes);
    buffers.samples = tracker.residency().snapshot();
    report.stage(buffers);
    report.stats_json = Some(stats.to_json());
    report
}

struct ExecState<'p, W: Write> {
    plan: &'p Plan,
    arena: BufferArena,
    /// Variable bindings, indexed by the plan's slot numbering.
    slots: Slots,
    /// The streaming evaluator for handler bodies — persistent across
    /// firings, so its cursor and string pools reach a steady state with
    /// zero allocations per firing.
    evaluator: CursorEvaluator,
    writer: XmlWriter<W>,
    stack: Vec<ElementCtx>,
    events: u64,
    /// Handler-dispatch / on-first counters (zero-sized no-ops unless the
    /// `telemetry` feature is on).
    tel: RuntimeCounters,
}

impl<'p, W: Write> ExecState<'p, W> {
    fn handle(&mut self, ev: &RawEventRef<'_>, symbols: &SymbolTable) -> Result<()> {
        self.tel.handler_dispatches(1);
        match ev.kind() {
            RawEventKind::StartDocument => self.start_document(symbols),
            RawEventKind::DoctypeDecl => Ok(()),
            RawEventKind::StartElement => self.start_element(ev, symbols),
            RawEventKind::Text => self.text(ev.text()),
            RawEventKind::EndElement => self.end_element(),
            RawEventKind::EndDocument => self.end_document(symbols),
            RawEventKind::Comment | RawEventKind::ProcessingInstruction => {
                Err(RuntimeError::Plan {
                    message: format!("unexpected event {:?}", ev.kind()),
                })
            }
        }
    }

    fn start_document(&mut self, symbols: &SymbolTable) -> Result<()> {
        // The arena's own document node doubles as the $ROOT scope shell:
        // it is never freed (the run ends with it) and copying `$ROOT`
        // emits its children, as document-node semantics require.
        let shell = self.arena.doc().document_node();
        let mut ctx = ElementCtx {
            buf_targets: vec![(shell, SpecView::Project(self.plan.root_spec))],
            ..ElementCtx::default()
        };
        let root_slot = self.plan.root_slot;
        let saved = self.slots[root_slot].replace(shell);
        ctx.bindings.push((root_slot, saved));
        // Evaluate the top prelude (constants, wrappers) and install the
        // top-level process-stream. `self.plan` is a shared reference with
        // lifetime 'p, so plan data can be borrowed independently of self.
        let plan: &'p Plan = self.plan;
        self.enter_plan(&plan.top, &mut ctx, None, symbols)?;
        // Document-level on-first handlers that fire before the root.
        self.fire_doc_handlers(&ctx, DocTiming::AtStart)?;
        self.stack.push(ctx);
        Ok(())
    }

    fn start_element(&mut self, ev: &RawEventRef<'_>, symbols: &SymbolTable) -> Result<()> {
        let sym = ev.name();
        let parent = self
            .stack
            .last()
            .expect("XSAX guarantees events inside the document");
        let mut ctx = ElementCtx {
            copying: parent.copying,
            ..ElementCtx::default()
        };
        if parent.copying {
            self.writer.start_element_view(symbols, ev)?;
        }
        // Buffer population: descend every active view on symbol equality
        // (an OVERFLOW name from a bounded-interner stream falls back to
        // comparing the literal spelling, so `max_symbols` can never
        // change what is buffered).
        let literal = ev.name_str(symbols);
        let parent_targets: Vec<(NodeId, SpecView)> = parent.buf_targets.clone();
        for (node, view) in parent_targets {
            if let Some(child_view) = view.descend_event(&self.plan.specs, sym, literal) {
                let child_node = self.arena.append_element_view(node, symbols, ev);
                ctx.buf_targets.push((child_node, child_view));
            }
        }
        // Handler dispatch: every matching `on` handler of every scope
        // hosted by the parent, in plan order.
        let plan: &'p Plan = self.plan;
        let parent_scopes: Vec<PsId> = self.stack.last().expect("parent exists").scopes.clone();
        for ps_id in parent_scopes {
            for handler in &plan.ps[ps_id].handlers {
                let HandlerPlan::On {
                    label,
                    symbol,
                    var_slot,
                    spec,
                    body,
                    ..
                } = handler
                else {
                    continue;
                };
                // Symbol equality on the hot path; bounded-interner
                // OVERFLOW names dispatch by their literal spelling.
                let matches = if sym == SymbolTable::OVERFLOW {
                    label.as_str() == literal
                } else {
                    *symbol == Some(sym)
                };
                if !matches {
                    continue;
                }
                // The shell carries only the attributes the plan reads
                // (all of them when the whole subtree is kept): unread
                // minted names must never grow the arena's dictionary.
                let spec_node = plan.specs.node(*spec);
                let shell = if spec_node.whole {
                    self.arena.create_element_view(symbols, ev)
                } else {
                    self.arena
                        .create_element_view_projected(symbols, ev, &spec_node.attrs)
                };
                let saved = self.slots[*var_slot].replace(shell);
                ctx.bindings.push((*var_slot, saved));
                ctx.shells.push(shell);
                if !self.plan.specs.is_empty_spec(*spec) {
                    ctx.buf_targets.push((shell, SpecView::Project(*spec)));
                }
                self.enter_plan(body, &mut ctx, Some(ev), symbols)?;
            }
        }
        self.stack.push(ctx);
        Ok(())
    }

    fn text(&mut self, t: &str) -> Result<()> {
        let ctx = self.stack.last().expect("text inside the document");
        if ctx.copying {
            self.writer.text(t)?;
        }
        let targets: Vec<(NodeId, SpecView)> = ctx.buf_targets.clone();
        for (node, view) in targets {
            if view.keeps_text(&self.plan.specs) {
                self.arena.append_text(node, t);
            }
        }
        Ok(())
    }

    fn end_element(&mut self) -> Result<()> {
        let ctx = self.stack.pop().expect("balanced events");
        if ctx.copying {
            self.writer.end_element()?;
        }
        for _ in 0..ctx.closers {
            self.writer.end_element()?;
        }
        self.close_ctx(ctx);
        Ok(())
    }

    fn end_document(&mut self, _symbols: &SymbolTable) -> Result<()> {
        let ctx = self.stack.pop().expect("document context");
        self.fire_doc_handlers(&ctx, DocTiming::AtEnd)?;
        for _ in 0..ctx.closers {
            self.writer.end_element()?;
        }
        self.close_ctx(ctx);
        Ok(())
    }

    fn close_ctx(&mut self, mut ctx: ElementCtx) {
        for (slot, saved) in ctx.bindings.drain(..).rev() {
            self.slots[slot] = saved;
        }
        for shell in ctx.shells.drain(..) {
            self.arena.free_scope(shell);
        }
    }

    fn on_first(&mut self, reg_index: usize, depth: usize) -> Result<()> {
        let plan: &'p Plan = self.plan;
        let reg = &plan.past_regs[reg_index];
        let Some(ctx) = self.stack.get(depth) else {
            return Ok(()); // scope not active here
        };
        if !ctx.scopes.contains(&reg.ps) {
            return Ok(()); // a different plan position over the same element type
        }
        let HandlerPlan::OnFirstPast { body, .. } = &plan.ps[reg.ps].handlers[reg.handler_index]
        else {
            return Err(RuntimeError::Plan {
                message: "past registration points at a non-on-first handler".to_string(),
            });
        };
        self.tel.on_first_fires(1);
        self.eval_buffered(body)
    }

    /// Fires document-level on-first handlers with the given timing, in
    /// handler order.
    fn fire_doc_handlers(&mut self, ctx: &ElementCtx, timing: DocTiming) -> Result<()> {
        let plan: &'p Plan = self.plan;
        for &ps_id in &ctx.scopes {
            for handler in &plan.ps[ps_id].handlers {
                if let HandlerPlan::OnFirstPast {
                    doc_timing, body, ..
                } = handler
                {
                    if *doc_timing == timing {
                        self.eval_buffered(body)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates a compiled expression over the buffer store with the
    /// persistent cursor evaluator. Split-field borrows keep the arena
    /// document readable while the evaluator and writer are mutably held.
    fn eval_buffered(&mut self, body: &CompiledExpr) -> Result<()> {
        let ExecState {
            arena,
            evaluator,
            slots,
            writer,
            ..
        } = self;
        evaluator.eval(arena.doc(), body, slots, writer)?;
        Ok(())
    }

    /// Enters a plan expression at the current stream position: emits
    /// constants and wrappers, evaluates instant buffered expressions,
    /// installs nested process-streams and stream-copies into `ctx`.
    fn enter_plan(
        &mut self,
        plan: &PlanExpr,
        ctx: &mut ElementCtx,
        current_child: Option<&RawEventRef<'_>>,
        symbols: &SymbolTable,
    ) -> Result<()> {
        match plan {
            PlanExpr::Empty => Ok(()),
            PlanExpr::Text(s) => {
                self.writer.text(s)?;
                Ok(())
            }
            PlanExpr::BufferedEval(e) => self.eval_buffered(e),
            PlanExpr::Sequence(items) => {
                for item in items {
                    self.enter_plan(item, ctx, current_child, symbols)?;
                }
                Ok(())
            }
            PlanExpr::Element {
                name,
                attributes,
                content,
                deferred_close,
            } => {
                {
                    let ExecState {
                        arena,
                        evaluator,
                        slots,
                        writer,
                        ..
                    } = self;
                    evaluator.start_element_with_attrs(
                        arena.doc(),
                        name,
                        attributes,
                        slots,
                        writer,
                    )?;
                }
                self.enter_plan(content, ctx, current_child, symbols)?;
                if *deferred_close {
                    ctx.closers += 1;
                } else {
                    self.writer.end_element()?;
                }
                Ok(())
            }
            PlanExpr::StreamCopy => {
                let child = current_child.ok_or_else(|| RuntimeError::Plan {
                    message: "stream-copy outside an on-handler".to_string(),
                })?;
                self.writer.start_element_view(symbols, child)?;
                ctx.copying = true;
                Ok(())
            }
            PlanExpr::Ps(id) => {
                ctx.scopes.push(*id);
                Ok(())
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_WEAK_DTD};
    use flux_lang::{compile, CompileOptions};

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    fn run(query: &str, dtd_text: &str, doc: &str) -> (String, RunStats) {
        let dtd = Dtd::parse(dtd_text).unwrap();
        let compiled = compile(query, &dtd, &CompileOptions::default()).unwrap();
        let exec = Executor::new(&compiled, &dtd).unwrap();
        let mut out = Vec::new();
        let stats = exec
            .run(doc.as_bytes(), &mut out)
            .unwrap_or_else(|e| panic!("execution failed: {e}"));
        (String::from_utf8(out).unwrap(), stats)
    }

    const WEAK_DOC: &str = "<bib><book><author>A1</author><title>T1</title><author>A2</author></book><book><title>T2</title></book></bib>";
    const FIG1_DOC: &str = "<bib><book><title>T1</title><author>A1</author><author>A2</author><publisher>P1</publisher><price>9</price></book><book><title>T2</title><editor>E1</editor><publisher>P2</publisher><price>5</price></book></bib>";

    #[test]
    fn q3_weak_dtd_reorders_correctly() {
        // Input has author BEFORE title; XQuery semantics demand titles
        // first. The buffered author handler must reproduce that.
        let (out, stats) = run(Q3, PAPER_WEAK_DTD, WEAK_DOC);
        assert_eq!(
            out,
            "<results><result><title>T1</title><author>A1</author><author>A2</author></result><result><title>T2</title></result></results>"
        );
        assert!(stats.peak_buffer_bytes > 0, "authors were buffered");
    }

    #[test]
    fn q3_fig1_dtd_streams_with_zero_buffer_growth() {
        let (out, stats) = run(Q3, PAPER_FIG1_DTD, FIG1_DOC);
        assert_eq!(
            out,
            "<results><result><title>T1</title><author>A1</author><author>A2</author></result><result><title>T2</title></result></results>"
        );
        // Scope shells are still created (book/bib bindings), but no child
        // content is ever buffered: total buffered bytes stay tiny and, in
        // particular, the author text never enters the store.
        assert!(
            !format!("{:?}", stats).contains("A1"),
            "sanity: stats don't embed data"
        );
        let (_, stats_big) = run(
            Q3,
            PAPER_FIG1_DTD,
            &FIG1_DOC.replace("A1", &"A".repeat(5000)),
        );
        assert!(
            stats_big.peak_buffer_bytes < 2000,
            "author content must not be buffered under Fig. 1: {} bytes",
            stats_big.peak_buffer_bytes
        );
    }

    #[test]
    fn weak_dtd_buffers_author_content() {
        let (_, stats_small) = run(Q3, PAPER_WEAK_DTD, WEAK_DOC);
        let big_doc = WEAK_DOC.replace("A1", &"A".repeat(5000));
        let (_, stats_big) = run(Q3, PAPER_WEAK_DTD, &big_doc);
        assert!(
            stats_big.peak_buffer_bytes > stats_small.peak_buffer_bytes + 4000,
            "weak DTD must buffer author text: {} vs {}",
            stats_big.peak_buffer_bytes,
            stats_small.peak_buffer_bytes
        );
    }

    #[test]
    fn buffer_is_per_book_not_per_document() {
        // 50 books with one author each: peak should be ~one author, not 50.
        let mut doc = String::from("<bib>");
        for i in 0..50 {
            doc.push_str(&format!(
                "<book><author>Author Number {i:04}</author><title>T{i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        let (_, stats) = run(Q3, PAPER_WEAK_DTD, &doc);
        // One author is ~50 bytes of content; allow generous slack for the
        // shells, but far below 50 authors.
        assert!(
            stats.peak_buffer_bytes < 1200,
            "peak {} should reflect one book at a time",
            stats.peak_buffer_bytes
        );
    }

    #[test]
    fn stream_copy_whole_books() {
        let q = r#"<results>{ for $b in $ROOT/bib/book return $b }</results>"#;
        let (out, stats) = run(q, PAPER_WEAK_DTD, WEAK_DOC);
        assert_eq!(
            out,
            format!(
                "<results>{}</results>",
                &WEAK_DOC["<bib>".len()..WEAK_DOC.len() - "</bib>".len()]
            )
        );
        assert!(
            stats.peak_buffer_bytes < 600,
            "stream copy must not buffer content: {}",
            stats.peak_buffer_bytes
        );
    }

    #[test]
    fn empty_document_produces_wrapper() {
        let (out, _) = run(Q3, PAPER_WEAK_DTD, "<bib/>");
        assert_eq!(out, "<results></results>");
    }

    #[test]
    fn validation_errors_surface() {
        let dtd = Dtd::parse(PAPER_WEAK_DTD).unwrap();
        let compiled = compile(Q3, &dtd, &CompileOptions::default()).unwrap();
        let exec = Executor::new(&compiled, &dtd).unwrap();
        let mut out = Vec::new();
        let err = exec.run("<bib><pamphlet/></bib>".as_bytes(), &mut out);
        assert!(err.is_err());
    }

    #[test]
    fn whole_node_copy_via_buffer() {
        // {$b}{$b/title}: whole book buffered (past(*)), then title copy.
        let q = r#"<results>{ for $b in $ROOT/bib/book return <r>{$b}{$b/title}</r> }</results>"#;
        let (out, _) = run(
            q,
            PAPER_WEAK_DTD,
            "<bib><book><author>A</author><title>T</title></book></bib>",
        );
        assert_eq!(
            out,
            "<results><r><book><author>A</author><title>T</title></book><title>T</title></r></results>"
        );
    }

    #[test]
    fn conditions_on_buffered_data() {
        let q = r#"<results>{ for $b in $ROOT/bib/book return if ($b/author = "A1") then $b/title else () }</results>"#;
        let (out, _) = run(q, PAPER_WEAK_DTD, WEAK_DOC);
        assert_eq!(out, "<results><title>T1</title></results>");
    }

    #[test]
    fn attribute_templates_from_stream() {
        let dtd_text = "<!ELEMENT bib (book)*>\n<!ELEMENT book (title)>\n<!ELEMENT title (#PCDATA)>\n<!ATTLIST book year CDATA #IMPLIED>";
        let q = r#"<results>{ for $b in $ROOT/bib/book return <b y="{$b/@year}">{$b/title}</b> }</results>"#;
        let (out, _) = run(
            q,
            dtd_text,
            r#"<bib><book year="1994"><title>T</title></book></bib>"#,
        );
        assert_eq!(
            out,
            r#"<results><b y="1994"><title>T</title></b></results>"#
        );
    }

    #[test]
    fn shells_keep_read_attributes_and_drop_minted_ones() {
        // The plan reads only `@year`: a stream minting a fresh attribute
        // name per book must not grow the peak, while the read attribute
        // still resolves. This is the engine-level memory bound against
        // the name-minting adversary.
        let dtd_text = "<!ELEMENT bib (book)*>\n<!ELEMENT book (title)>\n<!ELEMENT title (#PCDATA)>\n<!ATTLIST book year CDATA #IMPLIED>";
        let q = r#"<results>{ for $b in $ROOT/bib/book return <b y="{$b/@year}"/> }</results>"#;
        let doc_with = |books: usize| {
            let mut doc = String::from("<bib>");
            for i in 0..books {
                doc.push_str(&format!(
                    "<book year=\"y{i}\" mint{i:05}=\"v\"><title>T</title></book>"
                ));
            }
            doc.push_str("</bib>");
            doc
        };
        let (out, stats_small) = run(q, dtd_text, &doc_with(5));
        assert!(
            out.starts_with(r#"<results><b y="y0"></b><b y="y1"></b>"#),
            "{out}"
        );
        let (_, stats_big) = run(q, dtd_text, &doc_with(500));
        assert!(
            stats_big.peak_buffer_bytes < stats_small.peak_buffer_bytes * 2,
            "minted attribute names leaked into the dictionary: {} -> {}",
            stats_small.peak_buffer_bytes,
            stats_big.peak_buffer_bytes
        );
    }

    #[test]
    fn join_across_sections_works() {
        let dtd_text = "<!ELEMENT top (bib, reviews)>\n<!ELEMENT bib (book)*>\n<!ELEMENT book (title)>\n<!ELEMENT reviews (entry)*>\n<!ELEMENT entry (title, price)>\n<!ELEMENT title (#PCDATA)>\n<!ELEMENT price (#PCDATA)>";
        let q = r#"<out>{ for $b in $ROOT/top/bib/book, $e in $ROOT/top/reviews/entry where $b/title = $e/title return <hit>{$b/title}{$e/price}</hit> }</out>"#;
        let doc = "<top><bib><book><title>A</title></book><book><title>B</title></book></bib><reviews><entry><title>B</title><price>5</price></entry><entry><title>A</title><price>7</price></entry></reviews></top>";
        let (out, _) = run(q, dtd_text, doc);
        assert_eq!(
            out,
            "<out><hit><title>A</title><price>7</price></hit><hit><title>B</title><price>5</price></hit></out>"
        );
    }

    #[test]
    fn constants_ordered_between_streams() {
        let q = r#"<results>{ for $b in $ROOT/bib/book return <r>{$b/title}{"|"}{$b/author}</r> }</results>"#;
        let (out, _) = run(
            q,
            PAPER_FIG1_DTD,
            "<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>1</price></book></bib>",
        );
        assert_eq!(
            out,
            "<results><r><title>T</title>|<author>A</author></r></results>"
        );
    }

    #[test]
    fn doc_level_whole_copy() {
        let q = r#"<r>{$ROOT}{$ROOT}</r>"#;
        let doc = "<bib><book><title>T</title></book></bib>";
        let dtd_text =
            "<!ELEMENT bib (book)*>\n<!ELEMENT book (title)>\n<!ELEMENT title (#PCDATA)>";
        let (out, stats) = run(q, dtd_text, doc);
        assert_eq!(out, format!("<r>{doc}{doc}</r>"));
        assert!(
            stats.peak_buffer_bytes > doc.len(),
            "whole document buffered"
        );
    }
}
