//! The SAX-style event model shared by the reader, writer and higher layers.

use std::fmt;

/// A single attribute of a start-element tag. Values are stored unescaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

impl Attribute {
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// A parsed XML event.
///
/// Text content is delivered unescaped (entity references already resolved);
/// CDATA sections are delivered as [`XmlEvent::Text`] with a flag-free,
/// already-literal payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// Start of the document. Emitted exactly once, before everything else.
    StartDocument,
    /// A `<!DOCTYPE name ...>` declaration. `internal_subset` holds the raw
    /// text between `[` and `]` when present; it can be fed to a DTD parser.
    DoctypeDecl {
        name: String,
        internal_subset: Option<String>,
    },
    /// `<name attr="v" ...>` (also emitted for the opening half of an
    /// empty-element tag `<name/>`, which is immediately followed by the
    /// matching [`XmlEvent::EndElement`]).
    StartElement {
        name: String,
        attributes: Vec<Attribute>,
    },
    /// `</name>` (or the synthetic close of `<name/>`).
    EndElement { name: String },
    /// Character data between tags, unescaped. Consecutive runs are merged
    /// by the reader (a single text node per gap between tags).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<?target data?>` (the XML declaration itself is consumed silently).
    ProcessingInstruction { target: String, data: String },
    /// End of the document. Emitted exactly once, after the root closes.
    EndDocument,
}

impl XmlEvent {
    /// Returns the element name for start/end element events.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            XmlEvent::StartElement { name, .. } | XmlEvent::EndElement { name } => Some(name),
            _ => None,
        }
    }

    /// True for [`XmlEvent::Text`] consisting only of XML whitespace.
    pub fn is_whitespace_text(&self) -> bool {
        matches!(self, XmlEvent::Text(t) if t.bytes().all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n')))
    }

    /// A short tag for diagnostics ("start-element", "text", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            XmlEvent::StartDocument => "start-document",
            XmlEvent::DoctypeDecl { .. } => "doctype",
            XmlEvent::StartElement { .. } => "start-element",
            XmlEvent::EndElement { .. } => "end-element",
            XmlEvent::Text(_) => "text",
            XmlEvent::Comment(_) => "comment",
            XmlEvent::ProcessingInstruction { .. } => "processing-instruction",
            XmlEvent::EndDocument => "end-document",
        }
    }
}

impl fmt::Display for XmlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlEvent::StartDocument => write!(f, "<start-document>"),
            XmlEvent::DoctypeDecl { name, .. } => write!(f, "<!DOCTYPE {name}>"),
            XmlEvent::StartElement { name, attributes } => {
                write!(f, "<{name}")?;
                for a in attributes {
                    write!(f, " {}=\"{}\"", a.name, a.value)?;
                }
                write!(f, ">")
            }
            XmlEvent::EndElement { name } => write!(f, "</{name}>"),
            XmlEvent::Text(t) => write!(f, "{t:?}"),
            XmlEvent::Comment(c) => write!(f, "<!--{c}-->"),
            XmlEvent::ProcessingInstruction { target, data } => write!(f, "<?{target} {data}?>"),
            XmlEvent::EndDocument => write!(f, "<end-document>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_detection() {
        assert!(XmlEvent::Text("  \t\r\n".into()).is_whitespace_text());
        assert!(!XmlEvent::Text("  x ".into()).is_whitespace_text());
        assert!(!XmlEvent::StartDocument.is_whitespace_text());
        assert!(XmlEvent::Text(String::new()).is_whitespace_text());
    }

    #[test]
    fn element_name_access() {
        let start = XmlEvent::StartElement {
            name: "book".into(),
            attributes: vec![],
        };
        assert_eq!(start.element_name(), Some("book"));
        let end = XmlEvent::EndElement {
            name: "book".into(),
        };
        assert_eq!(end.element_name(), Some("book"));
        assert_eq!(XmlEvent::Text("x".into()).element_name(), None);
    }

    #[test]
    fn display_start_element() {
        let e = XmlEvent::StartElement {
            name: "a".into(),
            attributes: vec![Attribute::new("k", "v")],
        };
        assert_eq!(e.to_string(), "<a k=\"v\">");
    }
}
