//! Error type for DTD parsing and schema construction.

use std::fmt;

/// An error found while parsing or assembling a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtdError {
    pub message: String,
    /// Byte offset into the DTD text, when known.
    pub offset: Option<usize>,
}

impl DtdError {
    pub fn new(message: impl Into<String>) -> Self {
        DtdError {
            message: message.into(),
            offset: None,
        }
    }

    pub fn at(message: impl Into<String>, offset: usize) -> Self {
        DtdError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "DTD error at byte {off}: {}", self.message),
            None => write!(f, "DTD error: {}", self.message),
        }
    }
}

impl std::error::Error for DtdError {}

pub type Result<T> = std::result::Result<T, DtdError>;
