//! The memory-accounted buffer store.
//!
//! One arena [`Document`] holds every buffered node: scope shells (one per
//! active `on` handler binding), projected subtree copies, and text. Scope
//! subtrees are freed when their scope closes; freed slots are recycled, so
//! physical memory is bounded by *peak live buffered data* — the quantity
//! the paper's evaluation measures — and never by document size.

use crate::stats::MemoryTracker;
use flux_xml::tree::{Document, NodeId, NodeKind};
use flux_xml::{Attribute, RawAttr, RawEventRef, Symbol, SymbolTable};

/// Arena of buffered nodes with recycling and byte accounting.
pub struct BufferArena {
    doc: Document,
    free_slots: Vec<NodeId>,
    tracker: MemoryTracker,
}

impl Default for BufferArena {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferArena {
    pub fn new() -> Self {
        BufferArena {
            doc: Document::new(),
            free_slots: Vec::new(),
            tracker: MemoryTracker::new(),
        }
    }

    /// Read access for the interpreter.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    pub fn tracker(&self) -> &MemoryTracker {
        &self.tracker
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.doc.reset_node(slot, kind);
                slot
            }
            None => match kind {
                NodeKind::Element { name, attributes } => self.doc.create_element(name, attributes),
                NodeKind::Text(t) => self.doc.create_text(t),
                NodeKind::Document => unreachable!("arena never allocates document nodes"),
            },
        };
        self.tracker.allocate(self.doc.node_heap_bytes(id));
        id
    }

    /// Creates a detached element node (a scope shell or a buffered copy).
    pub fn create_element(&mut self, name: &str, attributes: &[Attribute]) -> NodeId {
        self.alloc(NodeKind::Element {
            name: name.to_string(),
            attributes: attributes.to_vec(),
        })
    }

    /// Appends a new element under `parent`.
    pub fn append_element(
        &mut self,
        parent: NodeId,
        name: &str,
        attributes: &[Attribute],
    ) -> NodeId {
        let id = self.create_element(name, attributes);
        self.doc.append_child(parent, id);
        id
    }

    /// Creates a detached element from interned-event parts, mapping
    /// symbols back through the stream's table. Buffering inherently copies
    /// the data — this allocates exactly the stored strings, nothing more.
    pub fn create_element_raw(
        &mut self,
        symbols: &SymbolTable,
        name: Symbol,
        attributes: &[RawAttr],
    ) -> NodeId {
        self.alloc(NodeKind::Element {
            name: symbols.name(name).to_string(),
            attributes: attributes.iter().map(|a| a.to_attribute(symbols)).collect(),
        })
    }

    /// Appends a new element from interned-event parts under `parent`.
    pub fn append_element_raw(
        &mut self,
        parent: NodeId,
        symbols: &SymbolTable,
        name: Symbol,
        attributes: &[RawAttr],
    ) -> NodeId {
        let id = self.create_element_raw(symbols, name, attributes);
        self.doc.append_child(parent, id);
        id
    }

    /// Creates a detached element from a borrowed event view. Buffering
    /// inherently copies the data — this allocates exactly the stored
    /// strings, nothing more, straight from the view's backing storage.
    pub fn create_element_view(&mut self, symbols: &SymbolTable, ev: &RawEventRef<'_>) -> NodeId {
        self.alloc(NodeKind::Element {
            name: ev.name_str(symbols).to_string(),
            attributes: ev
                .attrs()
                .map(|a| Attribute::new(a.name_str(symbols), a.value))
                .collect(),
        })
    }

    /// Appends a new element from a borrowed event view under `parent`.
    pub fn append_element_view(
        &mut self,
        parent: NodeId,
        symbols: &SymbolTable,
        ev: &RawEventRef<'_>,
    ) -> NodeId {
        let id = self.create_element_view(symbols, ev);
        self.doc.append_child(parent, id);
        id
    }

    /// Appends text under `parent`, merging with a trailing text sibling.
    pub fn append_text(&mut self, parent: NodeId, text: &str) {
        if let Some(&last) = self.doc.children(parent).last() {
            if matches!(self.doc.kind(last), NodeKind::Text(_)) {
                self.doc.append_to_text(last, text);
                self.tracker.grow(text.len());
                return;
            }
        }
        let id = self.alloc(NodeKind::Text(text.to_string()));
        self.doc.append_child(parent, id);
    }

    /// Frees a detached scope subtree, recycling every node.
    pub fn free_scope(&mut self, root: NodeId) {
        debug_assert!(self.doc.parent(root).is_none(), "scope roots are detached");
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            stack.extend(self.doc.children(id).iter().copied());
            self.tracker.release(self.doc.node_heap_bytes(id));
            // Shrink the payload so the accounted release is real.
            self.doc.reset_node(id, NodeKind::Text(String::new()));
            self.free_slots.push(id);
        }
    }

    /// Current live buffered bytes.
    pub fn current_bytes(&self) -> usize {
        self.tracker.current_bytes()
    }

    /// Peak live buffered bytes.
    pub fn peak_bytes(&self) -> usize {
        self.tracker.peak_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_navigate() {
        let mut arena = BufferArena::new();
        let book = arena.create_element("book", &[Attribute::new("year", "1994")]);
        let title = arena.append_element(book, "title", &[]);
        arena.append_text(title, "TCP/IP");
        let author = arena.append_element(book, "author", &[]);
        arena.append_text(author, "Stevens");
        let doc = arena.doc();
        assert_eq!(doc.children(book).len(), 2);
        assert_eq!(doc.string_value(book), "TCP/IPStevens");
        assert_eq!(doc.attribute(book, "year"), Some("1994"));
    }

    #[test]
    fn text_merging_accounts_growth() {
        let mut arena = BufferArena::new();
        let e = arena.create_element("t", &[]);
        arena.append_text(e, "ab");
        let before = arena.current_bytes();
        arena.append_text(e, "cd");
        assert_eq!(
            arena.doc().children(e).len(),
            1,
            "merged into one text node"
        );
        assert_eq!(arena.current_bytes(), before + 2);
        assert_eq!(arena.doc().string_value(e), "abcd");
    }

    #[test]
    fn free_releases_and_recycles() {
        let mut arena = BufferArena::new();
        let scope = arena.create_element("book", &[]);
        let t = arena.append_element(scope, "title", &[]);
        arena.append_text(t, "X");
        let live = arena.current_bytes();
        assert!(live > 0);
        let node_count_before = arena.doc().node_count();
        arena.free_scope(scope);
        assert_eq!(arena.current_bytes(), 0);
        // New allocations reuse the freed slots: arena does not grow.
        let scope2 = arena.create_element("book", &[]);
        let t2 = arena.append_element(scope2, "title", &[]);
        arena.append_text(t2, "Y");
        assert_eq!(
            arena.doc().node_count(),
            node_count_before,
            "slots recycled"
        );
        assert_eq!(arena.doc().string_value(scope2), "Y");
    }

    #[test]
    fn peak_tracks_maximum_live() {
        let mut arena = BufferArena::new();
        // Simulate: 3 books one at a time, each with one author.
        let mut peak_each = 0;
        for i in 0..3 {
            let scope = arena.create_element("book", &[]);
            let a = arena.append_element(scope, "author", &[]);
            arena.append_text(a, &format!("Author {i}"));
            peak_each = peak_each.max(arena.current_bytes());
            arena.free_scope(scope);
        }
        assert_eq!(arena.current_bytes(), 0);
        assert_eq!(arena.peak_bytes(), peak_each, "peak ≈ one book, not three");
    }

    #[test]
    fn interleaved_scopes_free_correctly() {
        // Outer buffer keeps growing while an inner scope lives and dies —
        // the regression the subtree-walking free exists for.
        let mut arena = BufferArena::new();
        let outer = arena.create_element("outer", &[]);
        arena.append_element(outer, "kept1", &[]);
        let inner = arena.create_element("inner", &[]);
        arena.append_element(inner, "tmp", &[]);
        arena.append_element(outer, "kept2", &[]); // interleaved with inner's life
        arena.free_scope(inner);
        arena.append_element(outer, "kept3", &[]);
        let doc = arena.doc();
        let names: Vec<_> = doc
            .children(outer)
            .iter()
            .map(|&c| doc.name(c).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["kept1", "kept2", "kept3"]);
    }
}
