//! # flux-runtime
//!
//! The FluXQuery runtime engine (paper Sec. 3.2): the query compiler
//! producing physical plans with a **Buffer Description Forest** ([`bdf`]),
//! the memory-accounted **buffer store** ([`buffer`]), and the **streamed
//! query evaluator** ([`exec`]) driving XSAX events through the plan and
//! emitting the result as an XML stream.

pub mod bdf;
pub mod buffer;
pub mod error;
pub mod exec;
pub mod plan;
pub mod stats;

pub use bdf::{SpecArena, SpecEdge, SpecId, SpecView};
pub use buffer::BufferArena;
pub use error::{Result, RuntimeError};
pub use exec::{
    execute_plan, execute_plan_from_source, execute_plan_from_source_with_report,
    execute_plan_with_report, Executor,
};
pub use flux_telemetry::RunReport;
pub use plan::{compile_plan, Plan, PsId};
pub use stats::{MemoryTracker, RunStats};
