//! # flux-dtd
//!
//! DTD parsing and schema reasoning for FluXQuery.
//!
//! Content models are compiled via the Glushkov construction
//! ([`glushkov::glushkov`]) and subset construction ([`dfa::Dfa`]) into per-element
//! child-sequence DFAs. All of the paper's schema constraints are then
//! product-construction queries on those DFAs:
//!
//! * **cardinality constraints** (`a ∈ ||≤1 r`, Sec. 3.1): [`Dtd::at_most_one`];
//! * **order constraints** ("all titles precede all authors", Sec. 2/3.1):
//!   [`Dtd::all_before`];
//! * **language constraints** ("no book has both author and editor
//!   children", Sec. 3.1): [`Dtd::never_together`];
//! * the **`past(L)` analysis** that drives XSAX `on-first` events and FluX
//!   safety (Sec. 2): [`dfa::Dfa::still_possible`].

pub mod content_model;
pub mod dfa;
pub mod dtd;
pub mod error;
pub mod glushkov;
pub mod parser;
pub mod symbol;
pub mod xsd;

pub use content_model::{AttDef, AttDefault, ContentSpec, Particle};
pub use dfa::{Dfa, StateId};
pub use dtd::{Dtd, ElementDecl};
pub use error::{DtdError, Result};
pub use glushkov::glushkov;
pub use symbol::{Symbol, SymbolTable};
pub use xsd::parse_xsd;

/// The weak bibliography DTD from Section 2 of the paper.
pub const PAPER_WEAK_DTD: &str = "<!ELEMENT bib (book)*>\n\
     <!ELEMENT book (title|author)*>\n\
     <!ELEMENT title (#PCDATA)>\n\
     <!ELEMENT author (#PCDATA)>";

/// The strong bibliography DTD from Figure 1 of the paper.
pub const PAPER_FIG1_DTD: &str = "<!ELEMENT bib (book)*>\n\
     <!ELEMENT book (title,(author+|editor+),publisher,price)>\n\
     <!ELEMENT title (#PCDATA)>\n\
     <!ELEMENT author (#PCDATA)>\n\
     <!ELEMENT editor (#PCDATA)>\n\
     <!ELEMENT publisher (#PCDATA)>\n\
     <!ELEMENT price (#PCDATA)>";

/// The order-violating variant discussed in Section 2 (price after a
/// title/author soup) used to demonstrate unsafe FluX queries.
pub const PAPER_UNSAFE_DTD: &str = "<!ELEMENT bib (book)*>\n\
     <!ELEMENT book ((title|author)*,price)>\n\
     <!ELEMENT title (#PCDATA)>\n\
     <!ELEMENT author (#PCDATA)>\n\
     <!ELEMENT price (#PCDATA)>";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dtds_parse() {
        assert!(Dtd::parse(PAPER_WEAK_DTD).is_ok());
        assert!(Dtd::parse(PAPER_FIG1_DTD).is_ok());
        assert!(Dtd::parse(PAPER_UNSAFE_DTD).is_ok());
    }

    #[test]
    fn unsafe_dtd_price_after_everything() {
        let dtd = Dtd::parse(PAPER_UNSAFE_DTD).unwrap();
        let book = dtd.lookup("book").unwrap();
        let title = dtd.lookup("title").unwrap();
        let author = dtd.lookup("author").unwrap();
        let price = dtd.lookup("price").unwrap();
        assert!(dtd.all_before(book, title, price));
        assert!(dtd.all_before(book, author, price));
        assert!(!dtd.all_before(book, price, title));
        assert!(!dtd.all_before(book, title, author));
    }
}
