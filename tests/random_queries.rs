//! Randomized query fuzzing: generate structurally valid queries of the
//! supported fragment from a seed, then check that all four engine
//! configurations produce byte-identical output on generated documents.
//!
//! This is the strongest correctness artifact in the suite: the scheduler's
//! streaming/buffering decisions, the algebraic rewrites, the XSAX firing
//! positions and the buffer projections all have to agree with the plain
//! tree-at-a-time semantics on every sampled query.

use flux_bench::{run_engine, Domain};
use fluxquery::xquery::{pretty, AttrConstructor, AttrPart, CmpOp, Cond, Expr, Operand, Path};
use fluxquery::EngineKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Labels that exist in the bibliography schemas (plus a bogus one the
/// optimizer should prune).
const LABELS: &[&str] = &[
    "book",
    "title",
    "author",
    "editor",
    "publisher",
    "price",
    "bogus",
];
const OUTPUT_NAMES: &[&str] = &["r", "item", "entry", "wrap", "x"];
const STRINGS: &[&str] = &["alpha", "beta", "", "Goedel", "x<y&z"];

struct QueryGen {
    rng: SmallRng,
    /// In-scope variables (innermost last).
    vars: Vec<String>,
    next_var: u32,
    budget: i32,
}

impl QueryGen {
    fn new(seed: u64) -> Self {
        QueryGen {
            rng: SmallRng::seed_from_u64(seed),
            vars: vec!["ROOT".to_string()],
            next_var: 0,
            budget: 40,
        }
    }

    fn pick<'a>(&mut self, options: &'a [&'a str]) -> &'a str {
        options[self.rng.gen_range(0..options.len())]
    }

    fn fresh_var(&mut self) -> String {
        self.next_var += 1;
        format!("v{}", self.next_var)
    }

    fn random_path(&mut self, max_steps: usize) -> Path {
        let start = self.vars[self.rng.gen_range(0..self.vars.len())].clone();
        let mut path = Path::var(start);
        let steps = self.rng.gen_range(0..=max_steps);
        for _ in 0..steps {
            let label = self.pick(LABELS).to_string();
            path = path.child(label);
        }
        // The document variable needs at least one step to be useful in a
        // for-source; content positions accept bare vars.
        if path.start == "ROOT" && path.steps.is_empty() {
            path = path.child("bib");
        }
        path
    }

    fn random_operand(&mut self) -> Operand {
        match self.rng.gen_range(0..3) {
            0 => Operand::Path(self.random_path(2)),
            1 => Operand::StringLit(self.pick(STRINGS).to_string()),
            _ => Operand::NumberLit(format!("{}", self.rng.gen_range(0..120))),
        }
    }

    fn random_cond(&mut self, depth: usize) -> Cond {
        self.budget -= 1;
        if depth == 0 || self.budget <= 0 {
            return Cond::Exists(self.random_path(2));
        }
        match self.rng.gen_range(0..7) {
            0 => Cond::Cmp {
                lhs: self.random_operand(),
                op: match self.rng.gen_range(0..6) {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    _ => CmpOp::Ge,
                },
                rhs: self.random_operand(),
            },
            1 => Cond::And(
                Box::new(self.random_cond(depth - 1)),
                Box::new(self.random_cond(depth - 1)),
            ),
            2 => Cond::Or(
                Box::new(self.random_cond(depth - 1)),
                Box::new(self.random_cond(depth - 1)),
            ),
            3 => Cond::Not(Box::new(self.random_cond(depth - 1))),
            4 => Cond::Empty(self.random_path(2)),
            5 => Cond::True,
            _ => Cond::Exists(self.random_path(2)),
        }
    }

    fn random_expr(&mut self, depth: usize) -> Expr {
        self.budget -= 1;
        if depth == 0 || self.budget <= 0 {
            return match self.rng.gen_range(0..3) {
                0 => Expr::StringLit(self.pick(STRINGS).to_string()),
                1 => {
                    // A bare variable (whole copy) — but never the document.
                    let v = self.vars[self.rng.gen_range(0..self.vars.len())].clone();
                    if v == "ROOT" {
                        Expr::StringLit("doc".to_string())
                    } else {
                        Expr::Var(v)
                    }
                }
                _ => Expr::Path(self.random_path(2)),
            };
        }
        match self.rng.gen_range(0..10) {
            0..=2 => {
                // for-loop over a schema path.
                let var = self.fresh_var();
                let source = {
                    let mut p = self.random_path(1);
                    if p.steps.is_empty() {
                        p = p.child(self.pick(LABELS).to_string());
                    }
                    p
                };
                let where_clause = if self.rng.gen_bool(0.4) {
                    Some(Box::new(self.random_cond(1)))
                } else {
                    None
                };
                self.vars.push(var.clone());
                let body = self.random_expr(depth - 1);
                self.vars.pop();
                Expr::For {
                    var,
                    source,
                    where_clause,
                    body: Box::new(body),
                }
            }
            3..=5 => {
                // element constructor, sometimes with an attribute template.
                let attributes = if self.rng.gen_bool(0.3) {
                    vec![AttrConstructor {
                        name: "k".to_string(),
                        value: vec![
                            AttrPart::Literal("v-".to_string()),
                            AttrPart::Expr(Expr::Path(self.random_path(1))),
                        ],
                    }]
                } else {
                    vec![]
                };
                let n = self.rng.gen_range(1..=3);
                let content = Expr::seq((0..n).map(|_| self.random_expr(depth - 1)).collect());
                Expr::Element {
                    name: self.pick(OUTPUT_NAMES).to_string(),
                    attributes,
                    content: Box::new(content),
                }
            }
            6 => Expr::If {
                cond: Box::new(self.random_cond(2)),
                then_branch: Box::new(self.random_expr(depth - 1)),
                else_branch: Box::new(self.random_expr(depth - 1)),
            },
            7 => {
                let n = self.rng.gen_range(2..=3);
                Expr::seq((0..n).map(|_| self.random_expr(depth - 1)).collect())
            }
            8 => Expr::Path(self.random_path(2)),
            _ => Expr::StringLit(self.pick(STRINGS).to_string()),
        }
    }
}

/// Builds a random closed query: a root constructor around a book loop with
/// random body.
fn random_query(seed: u64) -> String {
    let mut g = QueryGen::new(seed);
    let var = g.fresh_var();
    g.vars.push(var.clone());
    let body = g.random_expr(3);
    g.vars.pop();
    let query = Expr::Element {
        name: "out".to_string(),
        attributes: vec![],
        content: Box::new(Expr::For {
            var,
            source: Path::var("ROOT").child("bib").child("book"),
            where_clause: None,
            body: Box::new(body),
        }),
    };
    pretty(&query)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_queries_agree_across_engines(
        query_seed in 0u64..100_000,
        doc_seed in 0u64..1_000,
        weak in any::<bool>(),
    ) {
        let query = random_query(query_seed);
        let domain = if weak { Domain::BibWeak } else { Domain::BibFig1 };
        let doc = domain.document(0.15, doc_seed);
        let mut reference: Option<Vec<u8>> = None;
        for kind in [
            EngineKind::Flux,
            EngineKind::FluxNoAlgebra,
            EngineKind::Projection,
            EngineKind::Dom,
        ] {
            let outcome = run_engine(kind, &query, domain.dtd(), doc.as_bytes())
                .unwrap_or_else(|e| panic!(
                    "{} failed (query_seed={query_seed}):\n{query}\n{e}",
                    kind.label()
                ));
            match &reference {
                None => reference = Some(outcome.output),
                Some(expected) => {
                    prop_assert_eq!(
                        std::str::from_utf8(&outcome.output).unwrap_or("<non-utf8>"),
                        std::str::from_utf8(expected).unwrap_or("<non-utf8>"),
                        "{} diverged on query_seed={} doc_seed={} weak={}:\n{}",
                        kind.label(),
                        query_seed,
                        doc_seed,
                        weak,
                        query
                    );
                }
            }
        }
    }
}

/// A quick deterministic sweep (fast path for `cargo test` without
/// proptest's shrinking machinery) over a contiguous seed range, including
/// the buffer-everything scheduling ablation as a third implementation.
#[test]
fn seed_sweep_deterministic() {
    use fluxquery::{FluxEngine, Options};
    let doc_weak = Domain::BibWeak.document(0.1, 7);
    let doc_fig1 = Domain::BibFig1.document(0.1, 7);
    for seed in 0..150u64 {
        let query = random_query(seed);
        for (domain, doc) in [(Domain::BibWeak, &doc_weak), (Domain::BibFig1, &doc_fig1)] {
            let flux = run_engine(EngineKind::Flux, &query, domain.dtd(), doc.as_bytes())
                .unwrap_or_else(|e| panic!("flux failed on seed {seed}:\n{query}\n{e}"));
            let dom = run_engine(EngineKind::Dom, &query, domain.dtd(), doc.as_bytes())
                .unwrap_or_else(|e| panic!("dom failed on seed {seed}:\n{query}\n{e}"));
            assert_eq!(
                String::from_utf8_lossy(&flux.output),
                String::from_utf8_lossy(&dom.output),
                "divergence on seed {seed}:\n{query}"
            );
            let ablated = FluxEngine::compile(&query, domain.dtd(), &Options::without_streaming())
                .unwrap_or_else(|e| panic!("ablated compile failed on seed {seed}:\n{query}\n{e}"));
            let mut out = Vec::new();
            ablated
                .run_input(fluxquery::Input::from_bytes(doc.clone()), &mut out)
                .unwrap_or_else(|e| panic!("ablated run failed on seed {seed}:\n{query}\n{e}"));
            assert_eq!(
                String::from_utf8_lossy(&out),
                String::from_utf8_lossy(&dom.output),
                "ablated engine diverged on seed {seed}:\n{query}"
            );
        }
    }
}
