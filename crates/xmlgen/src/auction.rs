//! XMark-style auction-site generator.
//!
//! A compact version of the XMark benchmark schema (the standard workload
//! for streaming XQuery evaluation in 2004): people, open items, and closed
//! auctions that reference both. Document order puts `people` and `items`
//! before `closed_auctions`, so reference-joins probe data that a schema-
//! aware engine has already seen — the situation FluXQuery's buffered
//! handlers with projection exploit.

use crate::text;
use flux_xml::{Attribute, Result, XmlWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;

/// The DTD for generated auction documents.
pub const AUCTION_DTD: &str = "<!ELEMENT site (people, items, closed_auctions)>\n\
     <!ELEMENT people (person)*>\n\
     <!ELEMENT person (name, emailaddress, country)>\n\
     <!ATTLIST person id CDATA #REQUIRED>\n\
     <!ELEMENT name (#PCDATA)>\n\
     <!ELEMENT emailaddress (#PCDATA)>\n\
     <!ELEMENT country (#PCDATA)>\n\
     <!ELEMENT items (item)*>\n\
     <!ELEMENT item (itemname, description, quantity)>\n\
     <!ATTLIST item id CDATA #REQUIRED>\n\
     <!ELEMENT itemname (#PCDATA)>\n\
     <!ELEMENT description (#PCDATA)>\n\
     <!ELEMENT quantity (#PCDATA)>\n\
     <!ELEMENT closed_auctions (closed_auction)*>\n\
     <!ELEMENT closed_auction (buyer, itemref, price, date)>\n\
     <!ELEMENT buyer (#PCDATA)>\n\
     <!ELEMENT itemref (#PCDATA)>\n\
     <!ELEMENT price (#PCDATA)>\n\
     <!ELEMENT date (#PCDATA)>";

/// Generator configuration. Sizes follow XMark's habit of one scale knob.
#[derive(Debug, Clone)]
pub struct AuctionConfig {
    pub people: usize,
    pub items: usize,
    pub auctions: usize,
    pub seed: u64,
    /// Words in each item description (the bulky part of the document).
    pub description_words: usize,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            people: 50,
            items: 100,
            auctions: 150,
            seed: 42,
            description_words: 20,
        }
    }
}

impl AuctionConfig {
    /// XMark-style scaling: `scale(1.0)` ≈ the default sizes.
    pub fn scale(factor: f64, seed: u64) -> Self {
        let base = AuctionConfig::default();
        AuctionConfig {
            people: ((base.people as f64) * factor).ceil() as usize,
            items: ((base.items as f64) * factor).ceil() as usize,
            auctions: ((base.auctions as f64) * factor).ceil() as usize,
            seed,
            ..base
        }
    }

    /// A configuration sized to produce roughly `bytes` of output (within
    /// ~15%), XMark's "document size axis" knob: generate a small probe,
    /// measure its bytes-per-scale, and extrapolate. Reaches multi-MB
    /// documents with multi-MB inputs staying deterministic per seed.
    pub fn target_bytes(bytes: usize, seed: u64) -> Self {
        const PROBE_SCALE: f64 = 0.25;
        let probe = {
            let mut out = CountingSink(0);
            write_auction(&AuctionConfig::scale(PROBE_SCALE, seed), &mut out)
                .expect("probe generation cannot fail");
            out.0
        };
        let per_scale = probe as f64 / PROBE_SCALE;
        AuctionConfig::scale((bytes as f64 / per_scale).max(0.01), seed)
    }
}

/// Byte-counting sink for [`AuctionConfig::target_bytes`]'s probe run.
struct CountingSink(u64);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Writes an auction document to `out`.
pub fn write_auction<W: Write>(config: &AuctionConfig, out: W) -> Result<u64> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut w = XmlWriter::new(out);
    w.start_element("site", &[])?;

    w.start_element("people", &[])?;
    for i in 0..config.people {
        w.start_element("person", &[Attribute::new("id", format!("p{i}"))])?;
        simple(&mut w, "name", &text::name(&mut rng))?;
        simple(
            &mut w,
            "emailaddress",
            &format!("{}@example.com", text::word(&mut rng)),
        )?;
        simple(&mut w, "country", &text::name(&mut rng))?;
        w.end_element()?;
    }
    w.end_element()?;

    w.start_element("items", &[])?;
    for i in 0..config.items {
        w.start_element("item", &[Attribute::new("id", format!("i{i}"))])?;
        simple(&mut w, "itemname", &text::sentence(&mut rng, 2))?;
        simple(
            &mut w,
            "description",
            &text::sentence(&mut rng, config.description_words),
        )?;
        simple(&mut w, "quantity", &rng.gen_range(1..10).to_string())?;
        w.end_element()?;
    }
    w.end_element()?;

    w.start_element("closed_auctions", &[])?;
    for _ in 0..config.auctions {
        w.start_element("closed_auction", &[])?;
        simple(
            &mut w,
            "buyer",
            &format!("p{}", rng.gen_range(0..config.people.max(1))),
        )?;
        simple(
            &mut w,
            "itemref",
            &format!("i{}", rng.gen_range(0..config.items.max(1))),
        )?;
        simple(
            &mut w,
            "price",
            &format!("{}.{:02}", rng.gen_range(1..500), rng.gen_range(0..100)),
        )?;
        simple(
            &mut w,
            "date",
            &format!(
                "{:04}-{:02}-{:02}",
                rng.gen_range(1999..2004),
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
        )?;
        w.end_element()?;
    }
    w.end_element()?;

    w.end_element()?;
    w.finish()?;
    Ok(w.bytes_written())
}

fn simple<W: Write>(w: &mut XmlWriter<W>, tag: &str, content: &str) -> Result<()> {
    w.start_element(tag, &[])?;
    w.text(content)?;
    w.end_element()
}

/// Generates an auction document as a string.
pub fn auction_string(config: &AuctionConfig) -> String {
    let mut out = Vec::new();
    write_auction(config, &mut out).expect("in-memory generation cannot fail");
    String::from_utf8(out).expect("generator emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = AuctionConfig::default();
        assert_eq!(auction_string(&c), auction_string(&c));
    }

    #[test]
    fn counts_match_config() {
        let c = AuctionConfig {
            people: 3,
            items: 4,
            auctions: 5,
            seed: 1,
            description_words: 3,
        };
        let doc = auction_string(&c);
        assert_eq!(doc.matches("<person ").count(), 3);
        assert_eq!(doc.matches("<item ").count(), 4);
        assert_eq!(doc.matches("<closed_auction>").count(), 5);
    }

    #[test]
    fn buyer_references_valid_people() {
        let c = AuctionConfig {
            people: 5,
            items: 5,
            auctions: 20,
            seed: 9,
            description_words: 2,
        };
        let doc = auction_string(&c);
        for chunk in doc.split("<buyer>").skip(1) {
            let id = &chunk[..chunk.find("</buyer>").unwrap()];
            let n: usize = id[1..].parse().unwrap();
            assert!(n < 5, "buyer {id} out of range");
        }
    }

    #[test]
    fn scaling() {
        let s1 = auction_string(&AuctionConfig::scale(0.2, 1)).len();
        let s2 = auction_string(&AuctionConfig::scale(2.0, 1)).len();
        assert!(s2 > s1 * 5);
    }

    #[test]
    fn target_bytes_reaches_multi_mb() {
        let config = AuctionConfig::target_bytes(3 * 1_048_576, 11);
        let len = auction_string(&config).len();
        assert!(
            (2_500_000..=3_800_000).contains(&len),
            "asked for ~3 MiB, got {len} bytes"
        );
        // And the knob is deterministic per seed.
        let again = AuctionConfig::target_bytes(3 * 1_048_576, 11);
        assert_eq!(config.people, again.people);
        assert_eq!(config.items, again.items);
    }

    #[test]
    fn sections_in_schema_order() {
        let doc = auction_string(&AuctionConfig::scale(0.1, 3));
        let people = doc.find("<people>").unwrap();
        let items = doc.find("<items>").unwrap();
        let auctions = doc.find("<closed_auctions>").unwrap();
        assert!(people < items && items < auctions);
    }
}
