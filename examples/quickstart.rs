//! Quickstart: compile the paper's Q3 against both of its DTDs and watch
//! the buffering obligations change.
//!
//! Run with: `cargo run --example quickstart`

use fluxquery::{FluxEngine, Options, PAPER_FIG1_DTD, PAPER_WEAK_DTD};

const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return
    <result>{$b/title}{$b/author}</result> }</results>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("XMP Q3 (the paper's running example):\n{Q3}\n");

    // --- Weak DTD: (title|author)* -------------------------------------
    let weak = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::default())?;
    println!("== weak DTD: book (title|author)* ==");
    println!(
        "buffering handlers: {} (authors of one book at a time)",
        weak.buffered_handler_count()
    );
    let doc = "<bib>\
        <book><author>Adams</author><title>Stream Systems</title><author>Baker</author></book>\
        <book><title>Schema Design</title></book></bib>";
    let (out, stats) = weak.run_to_string(doc)?;
    println!("output:  {out}");
    println!(
        "peak buffered: {} bytes across {} nodes\n",
        stats.peak_buffer_bytes, stats.peak_buffer_nodes
    );

    // --- Figure 1 DTD: (title,(author+|editor+),publisher,price) -------
    let strong = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::default())?;
    println!("== Figure 1 DTD: titles precede authors ==");
    println!(
        "buffering handlers: {} (fully streaming)",
        strong.buffered_handler_count()
    );
    let doc = "<bib>\
        <book><title>Stream Systems</title><author>Adams</author><author>Baker</author>\
        <publisher>VLDB Press</publisher><price>42.00</price></book></bib>";
    let (out, stats) = strong.run_to_string(doc)?;
    println!("output:  {out}");
    println!(
        "peak buffered: {} bytes (only scope shells, no content)",
        stats.peak_buffer_bytes
    );
    Ok(())
}
