//! The GB axis: unbounded streaming ingestion proven at sizes the engine
//! could never buffer. Gated behind the `slow` feature because a run
//! streams several gigabytes through every parallelism mode:
//!
//! ```text
//! cargo test --release --features slow --test streaming_slow
//! ```
//!
//! What it pins down, per the ingestion contract (docs/INGESTION.md):
//!
//! * a ≥1 GiB generator-streamed auction document flows through the flux
//!   engine sequentially and with 2/8 shards while a 64 MiB tracked
//!   [`MemoryBudget`] holds — the document is produced behind a `Read`
//!   and never materialised;
//! * every parallelism mode emits byte-identical output on that stream;
//! * streamed ingestion is indistinguishable from an in-memory run of
//!   the same document, checked exactly on an in-memory-sized prefix of
//!   the axis (all three engine architectures);
//! * a stream that dies mid-document fails with the same rendered error
//!   as the same bytes parsed from memory, at every shard count.

#![cfg(feature = "slow")]

use fluxquery::xmlgen::{auction_string, AuctionConfig, AuctionStream, AUCTION_DTD};
use fluxquery::{EngineKind, FluxEngine, Input, MemoryBudget, Options, Parallelism};
use std::io::{Cursor, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The engine-tier query of the GB workload entry.
fn gb_query() -> &'static str {
    flux_bench::workload("auction_gb").query.unwrap()
}

/// Streaming output sink: FNV-1a digest plus length, so three multi-GB
/// runs can be compared without holding any of their outputs.
struct HashSink {
    hash: u64,
    len: u64,
}

impl HashSink {
    fn new() -> Self {
        HashSink {
            hash: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }
}

impl Write for HashSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        for &b in data {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        self.len += data.len() as u64;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Counts the bytes the engine actually pulled — the proof that the run
/// consumed a ≥1 GiB document without a 1 GiB allocation anywhere.
struct CountingReader<R> {
    inner: R,
    seen: Arc<AtomicU64>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.seen.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

const GIB: u64 = 1 << 30;
const BUDGET: u64 = 64 * 1024 * 1024;

#[test]
fn gb_stream_is_memory_bounded_across_parallelism() {
    let w = flux_bench::workload("auction_gb");
    assert!(w.generator_streamed());
    let (query, dtd) = (w.query.unwrap(), w.dtd.unwrap());
    let seed = 42;

    let mut digests = Vec::new();
    for parallelism in [
        Parallelism::Sequential,
        Parallelism::Shards(2),
        Parallelism::Shards(8),
    ] {
        let options = Options {
            parallelism,
            ..Options::default()
        };
        let engine = FluxEngine::compile_with_schema(query, dtd, &options).unwrap();

        let budget = MemoryBudget::new(BUDGET);
        let bytes_in = Arc::new(AtomicU64::new(0));
        let source = CountingReader {
            inner: w.stream(w.record_scale, seed),
            seen: Arc::clone(&bytes_in),
        };
        let mut sink = HashSink::new();
        let stats = engine
            .run_input(
                Input::from_reader(source).budget(Arc::clone(&budget)),
                &mut sink,
            )
            .unwrap_or_else(|e| panic!("{parallelism:?}: GB stream failed: {e}"));

        let consumed = bytes_in.load(Ordering::Relaxed);
        assert!(
            consumed >= GIB,
            "{parallelism:?}: axis fell short of 1 GiB: {consumed} bytes"
        );
        // The engine already failed the run if the budget was exceeded;
        // assert the tracking itself was live and genuinely bounded.
        assert!(
            budget.peak_total() > 0 && budget.peak_total() <= BUDGET,
            "{parallelism:?}: tracked peak {} of {BUDGET}",
            budget.peak_total()
        );
        assert!(stats.output_bytes > 0);
        digests.push((format!("{parallelism:?}"), sink.hash, sink.len));
    }

    let (_, hash, len) = digests[0].clone();
    for (label, h, l) in &digests[1..] {
        assert_eq!(
            (*h, *l),
            (hash, len),
            "{label}: output diverged from sequential on the GB stream"
        );
    }
}

#[test]
fn streamed_ingestion_matches_in_memory_on_a_prefix() {
    // An in-memory-sized prefix of the GB axis: same generator, same
    // shape, small enough to materialise for exact byte comparison.
    let config = AuctionConfig::target_bytes(24 * 1024 * 1024, 7);
    let doc = auction_string(&config).into_bytes();

    for kind in [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom] {
        let engine = Options::new()
            .compile(kind, gb_query(), AUCTION_DTD)
            .unwrap();
        let mut buffered = Vec::new();
        engine
            .run_input(Input::from_bytes(doc.clone()), &mut buffered)
            .unwrap();
        let mut streamed = Vec::new();
        engine
            .run_input(
                Input::from_reader(AuctionStream::new(config.clone())),
                &mut streamed,
            )
            .unwrap();
        assert_eq!(
            streamed,
            buffered,
            "{}: streamed output diverged from in-memory",
            kind.label()
        );
    }

    // And the sharded flux paths over the same stream.
    for shards in [2, 8] {
        let options = Options {
            parallelism: Parallelism::Shards(shards),
            ..Options::default()
        };
        let engine = FluxEngine::compile_with_schema(gb_query(), AUCTION_DTD, &options).unwrap();
        let mut sequential = Vec::new();
        engine
            .run_input(Input::from_bytes(doc.clone()), &mut sequential)
            .unwrap();
        let mut streamed = Vec::new();
        engine
            .run_input(
                Input::from_reader(AuctionStream::new(config.clone())),
                &mut streamed,
            )
            .unwrap();
        assert_eq!(
            streamed, sequential,
            "shards={shards}: streamed output diverged from buffered"
        );
    }
}

#[test]
fn truncated_stream_fails_identically_to_in_memory() {
    let config = AuctionConfig::target_bytes(8 * 1024 * 1024, 3);
    let doc = auction_string(&config).into_bytes();
    // Cut mid-document (almost certainly mid-tag or mid-text).
    let prefix = doc[..doc.len() * 2 / 3].to_vec();

    let run = |parallelism: Parallelism, input: Input| -> String {
        let options = Options {
            parallelism,
            ..Options::default()
        };
        let engine = FluxEngine::compile_with_schema(gb_query(), AUCTION_DTD, &options).unwrap();
        let mut out = Vec::new();
        engine
            .run_input(input, &mut out)
            .expect_err("a truncated document must fail")
            .to_string()
    };

    let expected = run(Parallelism::Sequential, Input::from_bytes(prefix.clone()));
    for parallelism in [
        Parallelism::Sequential,
        Parallelism::Shards(2),
        Parallelism::Shards(8),
    ] {
        let streamed = run(parallelism, Input::from_reader(Cursor::new(prefix.clone())));
        assert_eq!(
            streamed, expected,
            "{parallelism:?}: streamed error diverged from in-memory"
        );
    }
}
