//! End-to-end proof that `perf_gate` actually gates: drives the built
//! binary (via `CARGO_BIN_EXE_perf_gate`) over the committed
//! `BENCH_events.json` with injected regressions and asserts the exit
//! codes and notices, so the gate can never rot into a green no-op.

use std::path::PathBuf;
use std::process::{Command, Output};

fn committed() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_events.json");
    std::fs::read_to_string(path).expect("committed BENCH_events.json")
}

fn run_gate_with(base: &str, fresh: &str, tag: &str, extra_args: &[&str]) -> Output {
    let dir = std::env::temp_dir();
    let base_path = dir.join(format!("perf_gate_cli_{tag}_base.json"));
    let fresh_path = dir.join(format!("perf_gate_cli_{tag}_fresh.json"));
    std::fs::write(&base_path, base).expect("write base");
    std::fs::write(&fresh_path, fresh).expect("write fresh");
    let out = Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .arg(&base_path)
        .arg(&fresh_path)
        .args(extra_args)
        .output()
        .expect("run perf_gate");
    let _ = std::fs::remove_file(&base_path);
    let _ = std::fs::remove_file(&fresh_path);
    out
}

fn run_gate(base: &str, fresh: &str, tag: &str) -> Output {
    run_gate_with(base, fresh, tag, &[])
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Scales the first `"key": <number>` after `anchor` by `factor`.
fn scale_num_after(json: &str, anchor: &str, key: &str, factor: f64) -> String {
    let section = json.find(anchor).expect("anchor present");
    let marker = format!("\"{key}\": ");
    let start = section + json[section..].find(&marker).expect("key present") + marker.len();
    let end = start
        + json[start..]
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .expect("number terminated");
    let value: f64 = json[start..end].parse().expect("numeric value");
    format!("{}{:.0}{}", &json[..start], value * factor, &json[end..])
}

#[test]
fn identical_recordings_pass() {
    let json = committed();
    let out = run_gate(&json, &json, "identical");
    assert!(
        out.status.success(),
        "self-comparison must pass:\n{}",
        stdout(&out)
    );
    // Every perf-gated workload section is compared, visibly.
    let text = stdout(&out);
    for section in ["workload_auction", "workload_deep", "workload_name_mint"] {
        assert!(text.contains(section), "no {section} line in:\n{text}");
    }
}

#[test]
fn injected_throughput_regression_fails() {
    let json = committed();
    // 40% slower parse in one workload section: well past the 10% gate.
    let fresh = scale_num_after(&json, "\"workload_text_heavy\"", "events_per_sec", 0.6);
    let out = run_gate(&json, &fresh, "throughput");
    assert_eq!(
        out.status.code(),
        Some(1),
        "gate must fail:\n{}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains("FAIL workload_text_heavy.parse"),
        "regressed stage not named:\n{text}"
    );
}

#[test]
fn injected_memory_regression_fails() {
    let json = committed();
    // Peak buffered bytes growing 3x is the paper's headline metric going
    // backwards; the gate must fail even though throughput is unchanged.
    let fresh = scale_num_after(&json, "\"workload_name_mint\"", "peak_buffer_bytes", 3.0);
    let out = run_gate(&json, &fresh, "memory");
    assert_eq!(
        out.status.code(),
        Some(1),
        "gate must fail:\n{}",
        stdout(&out)
    );
    assert!(
        stdout(&out).contains("FAIL workload_name_mint.flux"),
        "regressed stage not named:\n{}",
        stdout(&out)
    );
}

#[test]
fn missing_committed_section_skips_with_notice() {
    let json = committed();
    // Strip one workload section from the committed file (rename its key
    // so extract_section misses it); the gate must say SKIP, not pass it
    // silently.
    let base = json.replace("\"workload_deep\"", "\"workload_deep_retired\"");
    let out = run_gate(&base, &json, "missing");
    assert!(
        out.status.success(),
        "skip is not a failure:\n{}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains("SKIP workload_deep:") && text.contains("no committed section"),
        "missing section not announced:\n{text}"
    );
}

#[test]
fn one_core_parallel_recording_is_announced() {
    let json = committed();
    let out = run_gate(&json, &json, "onecore");
    let text = stdout(&out);
    // The committed recording is made on the 1-core CI container; the
    // gate must say that the parallel section cannot gate scaling there.
    if text.contains("\"host_cores\": 1,") || committed().contains("\"host_cores\": 1,") {
        assert!(
            text.contains("NOTE parallel") && text.contains("1-core host"),
            "1-core recording not announced:\n{text}"
        );
    }
}

#[test]
fn cross_hardware_throughput_skips_but_memory_still_gates() {
    let json = committed();
    let fresh = scale_num_after(&json, "\"parallel\"", "host_cores", 64.0);
    // Memory regression on different hardware must still fail: peak bytes
    // are deterministic.
    let fresh = scale_num_after(&fresh, "\"workload_auction\"", "peak_buffer_bytes", 3.0);
    let out = run_gate(&json, &fresh, "crosshw");
    assert_eq!(
        out.status.code(),
        Some(1),
        "memory gate must stay armed:\n{}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains("events/sec comparison SKIPPED"),
        "cross-hardware skip not announced:\n{text}"
    );
    assert!(
        text.contains("FAIL workload_auction.flux"),
        "memory regression not caught:\n{text}"
    );
}

#[test]
fn json_verdict_written_on_pass() {
    let json = committed();
    let verdict_path = std::env::temp_dir().join("perf_gate_cli_verdict_pass.json");
    let path_arg = verdict_path.to_str().expect("utf-8 temp path").to_string();
    let out = run_gate_with(&json, &json, "jsonpass", &["--json", &path_arg]);
    assert!(out.status.success(), "{}", stdout(&out));
    let verdict = std::fs::read_to_string(&verdict_path).expect("verdict file written");
    let _ = std::fs::remove_file(&verdict_path);
    assert!(verdict.contains("\"verdict\": \"pass\""), "{verdict}");
    assert!(verdict.contains("\"regressions\": 0"), "{verdict}");
    assert!(
        verdict.contains("\"metric\": \"peak_buffer_bytes\""),
        "memory comparisons must be listed:\n{verdict}"
    );
    assert!(
        stdout(&out).contains("wrote machine-readable verdict"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn json_verdict_names_the_regressed_stage() {
    let json = committed();
    let fresh = scale_num_after(&json, "\"workload_text_heavy\"", "events_per_sec", 0.6);
    let verdict_path = std::env::temp_dir().join("perf_gate_cli_verdict_fail.json");
    let path_arg = verdict_path.to_str().expect("utf-8 temp path").to_string();
    let out = run_gate_with(&json, &fresh, "jsonfail", &["--json", &path_arg]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let verdict = std::fs::read_to_string(&verdict_path).expect("verdict file written");
    let _ = std::fs::remove_file(&verdict_path);
    assert!(verdict.contains("\"verdict\": \"fail\""), "{verdict}");
    // The regressed stage appears with ok: false and its delta.
    let stage_pos = verdict
        .find("\"stage\": \"workload_text_heavy.parse\"")
        .unwrap_or_else(|| panic!("regressed stage not in verdict:\n{verdict}"));
    let entry = &verdict[stage_pos..stage_pos + 220.min(verdict.len() - stage_pos)];
    assert!(entry.contains("\"ok\": false"), "{entry}");
    assert!(entry.contains("\"delta_pct\": -4"), "~-40%: {entry}");
}

#[test]
fn failure_prints_run_report_attribution_when_embedded() {
    let json = committed();
    // Only meaningful when the committed recording embeds span data
    // (i.e. it was produced by an instrumented --e8 run).
    if !json.contains("\"run_report\"") || !json.contains("\"spans_ns\"") {
        return;
    }
    let fresh = scale_num_after(&json, "\"workload_text_heavy\"", "events_per_sec", 0.6);
    let out = run_gate(&json, &fresh, "attribution");
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains("span attribution from the fresh recording's run_report"),
        "no attribution printed:\n{text}"
    );
    assert!(text.contains("parse_ns"), "span names not printed:\n{text}");
}

#[test]
fn workload_stamp_drift_is_a_configuration_error() {
    let json = committed();
    let fresh = json.replacen("\"workload\": \"", "\"workload\": \"DRIFTED ", 1);
    let out = run_gate(&json, &fresh, "stamp");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stamp drift must exit 2:\n{}",
        stdout(&out)
    );
}
