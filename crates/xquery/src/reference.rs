//! The materialising reference interpreter.
//!
//! This is the original tree-at-a-time evaluator: every path step builds a
//! `Vec` of matches and every label resolves by name. It is deliberately
//! simple and survives as the *oracle* the streaming
//! [`CursorEvaluator`](crate::eval::CursorEvaluator) is differentially
//! tested against (same output bytes, same errors) — production callers
//! all use the compiled cursor path.
//!
//! Comparison semantics are XPath-style *general comparisons*: `A op B`
//! holds iff some pair of items satisfies `op`, numerically when both
//! values parse as numbers, else by string comparison.

use crate::ast::*;
use crate::error::{Result, XQueryError};
use crate::eval::{compare, QuerySink};
use flux_xml::tree::{Document, NodeId, NodeKind};
use std::collections::HashMap;

/// Variable bindings: every variable is bound to a single node.
pub type Env = HashMap<VarName, NodeId>;

/// One item of an evaluated sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Node(NodeId),
    Str(String),
}

/// Evaluator over one document arena.
pub struct TreeEvaluator<'d> {
    doc: &'d Document,
}

impl<'d> TreeEvaluator<'d> {
    pub fn new(doc: &'d Document) -> Self {
        TreeEvaluator { doc }
    }

    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Evaluates `expr` under `env`, emitting results to `sink`.
    pub fn eval(&self, expr: &Expr, env: &mut Env, sink: &mut impl QuerySink) -> Result<()> {
        match expr {
            Expr::Empty => Ok(()),
            Expr::StringLit(s) => sink.text(s),
            Expr::Var(v) => {
                let node = self.bound(env, v)?;
                self.copy_node(node, sink)
            }
            Expr::Path(p) => {
                for item in self.resolve_items(p, env)? {
                    match item {
                        Item::Node(n) => self.copy_node(n, sink)?,
                        Item::Str(s) => sink.text(&s)?,
                    }
                }
                Ok(())
            }
            Expr::Sequence(items) => {
                for item in items {
                    self.eval(item, env, sink)?;
                }
                Ok(())
            }
            Expr::Element {
                name,
                attributes,
                content,
            } => {
                let mut attrs = Vec::with_capacity(attributes.len());
                for attr in attributes {
                    attrs.push(flux_xml::Attribute::new(
                        attr.name.clone(),
                        self.eval_attr_template(&attr.value, env)?,
                    ));
                }
                sink.start_element(name, &attrs)?;
                self.eval(content, env, sink)?;
                sink.end_element()
            }
            Expr::For {
                var,
                source,
                where_clause,
                body,
            } => {
                let nodes = self.resolve_nodes(source, env)?;
                for node in nodes {
                    let shadowed = env.insert(var.clone(), node);
                    let keep = match where_clause {
                        Some(cond) => self.eval_cond(cond, env)?,
                        None => true,
                    };
                    if keep {
                        self.eval(body, env, sink)?;
                    }
                    match shadowed {
                        Some(old) => {
                            env.insert(var.clone(), old);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                }
                Ok(())
            }
            Expr::Let { .. } => Err(XQueryError::eval(
                "let must be inlined by normalization before evaluation",
            )),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_cond(cond, env)? {
                    self.eval(then_branch, env, sink)
                } else {
                    self.eval(else_branch, env, sink)
                }
            }
        }
    }

    fn bound(&self, env: &Env, var: &str) -> Result<NodeId> {
        env.get(var)
            .copied()
            .ok_or_else(|| XQueryError::eval(format!("unbound variable `${var}`")))
    }

    /// Resolves an element path to nodes in document order.
    pub fn resolve_nodes(&self, path: &Path, env: &Env) -> Result<Vec<NodeId>> {
        let mut current = vec![self.bound(env, &path.start)?];
        for step in &path.steps {
            match step {
                Step::Child(name) => {
                    let mut next = Vec::new();
                    for node in current {
                        next.extend(self.doc.children_named(node, name));
                    }
                    current = next;
                }
                Step::Attribute(_) | Step::Text => {
                    return Err(XQueryError::eval(format!(
                        "path {path} used where element nodes are required"
                    )))
                }
            }
        }
        Ok(current)
    }

    /// Resolves any path to items (nodes, attribute strings, text pieces).
    pub fn resolve_items(&self, path: &Path, env: &Env) -> Result<Vec<Item>> {
        let (element_steps, tail) = match path.steps.last() {
            Some(Step::Attribute(_)) | Some(Step::Text) => {
                (&path.steps[..path.steps.len() - 1], path.steps.last())
            }
            _ => (&path.steps[..], None),
        };
        let mut current = vec![self.bound(env, &path.start)?];
        for step in element_steps {
            let Step::Child(name) = step else {
                return Err(XQueryError::eval(format!(
                    "non-final attribute/text step in {path}"
                )));
            };
            let mut next = Vec::new();
            for node in current {
                next.extend(self.doc.children_named(node, name));
            }
            current = next;
        }
        match tail {
            None => Ok(current.into_iter().map(Item::Node).collect()),
            Some(Step::Attribute(name)) => Ok(current
                .into_iter()
                .filter_map(|n| {
                    self.doc
                        .attribute(n, name)
                        .map(|v| Item::Str(v.to_string()))
                })
                .collect()),
            Some(Step::Text) => {
                let mut items = Vec::new();
                for node in current {
                    for &child in self.doc.children(node) {
                        if let Some(t) = self.doc.text(child) {
                            items.push(Item::Str(t.to_string()));
                        }
                    }
                }
                Ok(items)
            }
            Some(Step::Child(_)) => unreachable!("handled above"),
        }
    }

    /// Copies a node's subtree to the sink. Element start tags go through
    /// the sink's symbol fast path — no name strings materialise.
    pub fn copy_node(&self, node: NodeId, sink: &mut impl QuerySink) -> Result<()> {
        match self.doc.kind(node) {
            NodeKind::Document => {
                for &c in self.doc.children(node) {
                    self.copy_node(c, sink)?;
                }
                Ok(())
            }
            NodeKind::Element { .. } => {
                sink.start_element_node(self.doc, node)?;
                for &c in self.doc.children(node) {
                    self.copy_node(c, sink)?;
                }
                sink.end_element()
            }
            _ => sink.text(self.doc.text(node).expect("text node")),
        }
    }

    /// Evaluates an attribute value template to its string value (multiple
    /// items joined with single spaces, per XQuery attribute semantics).
    pub fn eval_attr_template(&self, parts: &[AttrPart], env: &mut Env) -> Result<String> {
        let mut out = String::new();
        for part in parts {
            match part {
                AttrPart::Literal(t) => out.push_str(t),
                AttrPart::Expr(e) => {
                    let values = self.atomize(e, env)?;
                    for (i, v) in values.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        out.push_str(v);
                    }
                }
            }
        }
        Ok(out)
    }

    /// String values of an atomizable expression (paths, strings, vars).
    fn atomize(&self, expr: &Expr, env: &Env) -> Result<Vec<String>> {
        match expr {
            Expr::Empty => Ok(vec![]),
            Expr::StringLit(s) => Ok(vec![s.clone()]),
            Expr::Var(v) => {
                let node = self.bound(env, v)?;
                Ok(vec![self.doc.string_value(node)])
            }
            Expr::Path(p) => Ok(self
                .resolve_items(p, env)?
                .into_iter()
                .map(|item| match item {
                    Item::Node(n) => self.doc.string_value(n),
                    Item::Str(s) => s,
                })
                .collect()),
            Expr::Sequence(items) => {
                let mut out = Vec::new();
                for item in items {
                    out.extend(self.atomize(item, env)?);
                }
                Ok(out)
            }
            other => Err(XQueryError::eval(format!(
                "expression cannot be atomized: {other:?}"
            ))),
        }
    }

    /// Evaluates a condition to a boolean.
    pub fn eval_cond(&self, cond: &Cond, env: &Env) -> Result<bool> {
        match cond {
            Cond::True => Ok(true),
            Cond::False => Ok(false),
            Cond::And(a, b) => Ok(self.eval_cond(a, env)? && self.eval_cond(b, env)?),
            Cond::Or(a, b) => Ok(self.eval_cond(a, env)? || self.eval_cond(b, env)?),
            Cond::Not(c) => Ok(!self.eval_cond(c, env)?),
            Cond::Exists(p) => Ok(!self.resolve_items(p, env)?.is_empty()),
            Cond::Empty(p) => Ok(self.resolve_items(p, env)?.is_empty()),
            Cond::Cmp { lhs, op, rhs } => {
                let left = self.operand_values(lhs, env)?;
                let right = self.operand_values(rhs, env)?;
                Ok(left
                    .iter()
                    .any(|a| right.iter().any(|b| compare(a, b, *op))))
            }
        }
    }

    fn operand_values(&self, op: &Operand, env: &Env) -> Result<Vec<String>> {
        match op {
            Operand::StringLit(s) => Ok(vec![s.clone()]),
            Operand::NumberLit(n) => Ok(vec![n.clone()]),
            Operand::Path(p) => {
                if p.steps.is_empty() {
                    let node = self.bound(env, &p.start)?;
                    return Ok(vec![self.doc.string_value(node)]);
                }
                Ok(self
                    .resolve_items(p, env)?
                    .into_iter()
                    .map(|item| match item {
                        Item::Node(n) => self.doc.string_value(n),
                        Item::Str(s) => s,
                    })
                    .collect())
            }
        }
    }
}

/// Reference-interpreter counterpart of
/// [`eval_to_string`](crate::eval::eval_to_string), for differential tests.
pub fn reference_eval_to_string(doc: &Document, expr: &Expr) -> Result<String> {
    let evaluator = TreeEvaluator::new(doc);
    let mut env = Env::new();
    env.insert(ROOT_VAR.to_string(), doc.document_node());
    let mut writer = flux_xml::XmlWriter::new(Vec::new());
    evaluator.eval(expr, &mut env, &mut writer)?;
    writer
        .finish()
        .map_err(|e| XQueryError::eval(format!("output error: {e}")))?;
    String::from_utf8(writer.into_inner()).map_err(|_| XQueryError::eval("invalid UTF-8 output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP</title><author>Stevens</author><author>Wright</author><publisher>AW</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author>Abiteboul</author><publisher>MK</publisher><price>39.95</price></book></bib>"#;

    fn run(query: &str, doc_text: &str) -> String {
        let doc = Document::parse_str(doc_text).unwrap();
        let expr = parse_query(query).unwrap();
        reference_eval_to_string(&doc, &expr).unwrap()
    }

    #[test]
    fn q3_reference() {
        let out = run(
            r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#,
            BIB,
        );
        assert_eq!(
            out,
            "<results><result><title>TCP/IP</title><author>Stevens</author><author>Wright</author></result><result><title>Data on the Web</title><author>Abiteboul</author></result></results>"
        );
    }

    #[test]
    fn unbound_variable_is_error() {
        let doc = Document::parse_str("<a/>").unwrap();
        let expr = parse_query("<r>{$nope/x}</r>").unwrap();
        assert!(reference_eval_to_string(&doc, &expr).is_err());
    }
}
