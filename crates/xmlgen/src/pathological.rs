//! Pathological document shapes for the workload matrix.
//!
//! Every number this repo publishes used to be proven on one friendly
//! bibliography recording; these generators probe the corners instead:
//!
//! * [`deep_string`] — recursion depth (stack discipline, `max_depth`,
//!   shard seams inside a single element's scope);
//! * [`attr_heavy_string`] — attribute-dominated bytes (attribute parsing,
//!   defaults injection, per-event attribute lists);
//! * [`text_heavy_string`] — text-dominated bytes with entities sprinkled
//!   in (scanner `read_until` runs, unescaping, text-run coalescing);
//! * [`mint_string`] — a **name-minting adversary**: the distinct-name
//!   vocabulary grows with the document, which is exactly the input the
//!   bounded interner (`max_symbols`) exists for.
//!
//! The attribute/text/mint shapes stay valid under the paper's weak DTD
//! (`book (title|author)*`; undeclared *attributes* are permitted), so all
//! three engine architectures — including validating FluX — can run the
//! standard Q3 workload over them. The deep shape uses its own recursive
//! element and is exercised at the event-stream tier.
//!
//! All generation is seeded and deterministic, like the rest of the crate.

use crate::text;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`deep_string`]: `spines` chains of `depth` nested
/// `<d>` elements, each with a text leaf at the bottom.
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Nesting depth of each spine (the element stack reaches this).
    pub depth: usize,
    /// Number of consecutive spines under the root (scales bytes without
    /// scaling depth).
    pub spines: usize,
    pub seed: u64,
}

impl DeepConfig {
    pub fn new(depth: usize, spines: usize, seed: u64) -> Self {
        DeepConfig {
            depth,
            spines,
            seed,
        }
    }
}

/// A document of repeated deeply nested spines: `<deep><d><d>…<leaf>text
/// </leaf>…</d></d></deep>`. Depth is the adversarial axis; the reader's
/// `max_depth` guard and the shard replay's global stack both have to walk
/// every level.
pub fn deep_string(config: &DeepConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut doc = String::from("<deep>");
    for _ in 0..config.spines.max(1) {
        for _ in 0..config.depth {
            doc.push_str("<d>");
        }
        doc.push_str("<leaf>");
        doc.push_str(&text::sentence(&mut rng, 3));
        doc.push_str("</leaf>");
        for _ in 0..config.depth {
            doc.push_str("</d>");
        }
    }
    doc.push_str("</deep>");
    doc
}

/// Configuration for [`attr_heavy_string`].
#[derive(Debug, Clone)]
pub struct AttrHeavyConfig {
    /// Number of `book` elements.
    pub books: usize,
    /// Attributes per element (books, titles and authors all carry them).
    pub attrs: usize,
    pub seed: u64,
}

impl AttrHeavyConfig {
    pub fn new(books: usize, attrs: usize, seed: u64) -> Self {
        AttrHeavyConfig { books, attrs, seed }
    }
}

/// A weak-DTD-valid bibliography whose bytes are dominated by attributes:
/// every element carries `attrs` of them, drawn from a small fixed
/// vocabulary (`a0..a15`) so the interner is *not* stressed — this shape
/// isolates attribute parsing and per-event attribute lists.
pub fn attr_heavy_string(config: &AttrHeavyConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut doc = String::from("<bib>");
    let push_attrs = |doc: &mut String, rng: &mut SmallRng, n: usize| {
        for a in 0..n {
            doc.push_str(&format!(
                " a{}=\"{}\"",
                a % 16,
                text::sentence(rng, 1 + a % 3)
            ));
        }
    };
    for b in 0..config.books {
        doc.push_str("<book");
        push_attrs(&mut doc, &mut rng, config.attrs);
        doc.push('>');
        doc.push_str("<title");
        push_attrs(&mut doc, &mut rng, config.attrs);
        doc.push_str(&format!(">T{b}</title>"));
        for _ in 0..rng.gen_range(1usize..3) {
            doc.push_str("<author");
            push_attrs(&mut doc, &mut rng, config.attrs);
            doc.push('>');
            doc.push_str(&text::name(&mut rng));
            doc.push_str("</author>");
        }
        doc.push_str("</book>");
    }
    doc.push_str("</bib>");
    doc
}

/// Configuration for [`text_heavy_string`].
#[derive(Debug, Clone)]
pub struct TextHeavyConfig {
    pub books: usize,
    /// Words per title/author text run (the bulk of the document).
    pub words: usize,
    pub seed: u64,
}

impl TextHeavyConfig {
    pub fn new(books: usize, words: usize, seed: u64) -> Self {
        TextHeavyConfig { books, words, seed }
    }
}

/// A weak-DTD-valid bibliography dominated by long text runs, with
/// entities (`&amp;`, `&lt;`) sprinkled in so the fast `read_until` path
/// has to fall back to unescaping mid-run.
pub fn text_heavy_string(config: &TextHeavyConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut doc = String::from("<bib>");
    for _ in 0..config.books {
        doc.push_str("<book><title>");
        push_long_text(&mut doc, &mut rng, config.words);
        doc.push_str("</title><author>");
        push_long_text(&mut doc, &mut rng, config.words);
        doc.push_str("</author></book>");
    }
    doc.push_str("</bib>");
    doc
}

fn push_long_text(doc: &mut String, rng: &mut SmallRng, words: usize) {
    for i in 0..words.max(1) {
        if i > 0 {
            // Every 13th separator is an entity: text runs keep their
            // length but stop being pure memchr fodder.
            doc.push_str(match i % 13 {
                0 => " &amp; ",
                6 => " &lt; ",
                _ => " ",
            });
        }
        doc.push_str(&text::word(rng));
    }
}

/// Configuration for [`mint_string`].
#[derive(Debug, Clone)]
pub struct MintConfig {
    pub books: usize,
    /// Freshly minted attribute names per book.
    pub names_per_book: usize,
    pub seed: u64,
    /// Put minted names only on `book` elements (not on the buffered
    /// `title`/`author` subtrees). With `true`, a query that buffers only
    /// titles and authors (Q3) never copies a minted name into the buffer
    /// store — the memory-bound tests rely on this to isolate the
    /// interner axis from legitimate buffered content.
    pub spare_buffered_subtrees: bool,
}

impl MintConfig {
    pub fn new(books: usize, names_per_book: usize, seed: u64) -> Self {
        MintConfig {
            books,
            names_per_book,
            seed,
            spare_buffered_subtrees: true,
        }
    }
}

/// The name-minting adversary: a weak-DTD-valid bibliography where every
/// book carries attributes whose names are **globally unique** — the
/// distinct-name vocabulary grows linearly with the document, so an
/// unbounded interner's table does too. Under `max_symbols` the table
/// stops growing and minted names travel as overflow + literal spelling;
/// nothing observable may change.
pub fn mint_string(config: &MintConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut doc = String::from("<bib>");
    let mut minted = 0u64;
    for b in 0..config.books {
        doc.push_str("<book");
        for _ in 0..config.names_per_book.max(1) {
            doc.push_str(&format!(" m{minted}x{}=\"v\"", rng.gen_range(0..10)));
            minted += 1;
        }
        doc.push('>');
        if config.spare_buffered_subtrees {
            doc.push_str(&format!("<title>T{b}</title>"));
            doc.push_str("<author>");
            doc.push_str(&text::name(&mut rng));
            doc.push_str("</author>");
        } else {
            doc.push_str(&format!("<title m{minted}=\"t\">T{b}</title>"));
            minted += 1;
            doc.push_str(&format!("<author m{minted}=\"a\">A{b}</author>"));
            minted += 1;
        }
        doc.push_str("</book>");
    }
    doc.push_str("</bib>");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_is_deterministic_and_deep() {
        let c = DeepConfig::new(64, 3, 7);
        assert_eq!(deep_string(&c), deep_string(&c));
        let doc = deep_string(&c);
        assert_eq!(doc.matches("<d>").count(), 64 * 3);
        assert_eq!(doc.matches("</d>").count(), 64 * 3);
        assert_eq!(doc.matches("<leaf>").count(), 3);
    }

    #[test]
    fn deep_scales_bytes_with_spines_not_depth() {
        let base = deep_string(&DeepConfig::new(32, 4, 1)).len();
        let more_spines = deep_string(&DeepConfig::new(32, 40, 1)).len();
        assert!(more_spines > base * 5);
    }

    #[test]
    fn attr_heavy_is_attribute_dominated() {
        let doc = attr_heavy_string(&AttrHeavyConfig::new(20, 12, 3));
        // More attribute assignments than element tags.
        assert!(doc.matches('=').count() > doc.matches('<').count());
        assert_eq!(doc.matches("<book").count(), 20);
    }

    #[test]
    fn text_heavy_has_entities_in_runs() {
        let doc = text_heavy_string(&TextHeavyConfig::new(5, 40, 9));
        assert!(doc.contains("&amp;"));
        assert!(doc.contains("&lt;"));
        assert_eq!(doc.matches("<book>").count(), 5);
    }

    #[test]
    fn mint_names_are_globally_unique() {
        let doc = mint_string(&MintConfig::new(30, 4, 5));
        let mut names: Vec<&str> = doc
            .split(" m")
            .skip(1)
            .map(|s| &s[..s.find('=').unwrap()])
            .collect();
        let total = names.len();
        assert_eq!(total, 30 * 4);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "minted names must never repeat");
    }

    #[test]
    fn mint_spares_buffered_subtrees_by_default() {
        let doc = mint_string(&MintConfig::new(10, 2, 5));
        assert!(!doc.contains("<title m"));
        assert!(!doc.contains("<author m"));
    }
}
