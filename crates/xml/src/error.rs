//! Error type shared by the XML reader, writer and tree builder.

use std::fmt;

/// Position of an error in the input byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// Byte offset from the start of the stream.
    pub offset: u64,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, not characters).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Errors produced while reading or writing XML.
#[derive(Debug)]
pub enum XmlError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        expected: &'static str,
        pos: Position,
    },
    /// A syntactic error in the input.
    Syntax { message: String, pos: Position },
    /// A well-formedness violation (mismatched tags, duplicate attributes, ...).
    WellFormedness { message: String, pos: Position },
    /// An undefined entity reference such as `&foo;`.
    UnknownEntity { name: String, pos: Position },
    /// Invalid UTF-8 in element content or names.
    InvalidUtf8 { pos: Position },
    /// The writer was used out of order (e.g. closing an element that is not open).
    WriterMisuse { message: String },
}

impl XmlError {
    /// Position of the error in the input, when known.
    pub fn position(&self) -> Option<Position> {
        match self {
            XmlError::Io(_) | XmlError::WriterMisuse { .. } => None,
            XmlError::UnexpectedEof { pos, .. }
            | XmlError::Syntax { pos, .. }
            | XmlError::WellFormedness { pos, .. }
            | XmlError::UnknownEntity { pos, .. }
            | XmlError::InvalidUtf8 { pos } => Some(*pos),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
            XmlError::UnexpectedEof { expected, pos } => {
                write!(f, "unexpected end of input at {pos}, expected {expected}")
            }
            XmlError::Syntax { message, pos } => write!(f, "XML syntax error at {pos}: {message}"),
            XmlError::WellFormedness { message, pos } => {
                write!(f, "not well-formed at {pos}: {message}")
            }
            XmlError::UnknownEntity { name, pos } => {
                write!(f, "unknown entity `&{name};` at {pos}")
            }
            XmlError::InvalidUtf8 { pos } => write!(f, "invalid UTF-8 at {pos}"),
            XmlError::WriterMisuse { message } => write!(f, "writer misuse: {message}"),
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::Io(e)
    }
}

/// Convenient result alias for XML operations.
pub type Result<T> = std::result::Result<T, XmlError>;
