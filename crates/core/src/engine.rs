//! The engine facade: one type that compiles once and runs many times,
//! plus a uniform wrapper over the three architectures for experiments.

use crate::error::Result;
use flux_baseline::{DomEngine, ProjectionEngine};
use flux_dtd::Dtd;
use flux_lang::{compile as compile_flux, CompileOptions, FluxQuery, OptimizerConfig};
use flux_runtime::{
    compile_plan, execute_plan, execute_plan_from_source, execute_plan_from_source_with_report,
    execute_plan_with_report, Plan, RunReport, RunStats,
};
use flux_shard::{ShardConfig, ShardedReader};
use flux_xml::{BudgetKind, Input, MemoryBudget, ResolvedInput};
use flux_xsax::XsaxConfig;
use std::io::{Read, Write};
use std::sync::Arc;

/// How the engine parses its input stream.
///
/// Sharded parsing fans tokenisation out over N threads (`flux_shard`);
/// the query evaluator and the XSAX DFA still consume one stitched,
/// exactly-sequential event stream, so results, validation verdicts and
/// buffer accounting are identical to [`Parallelism::Sequential`] — only
/// the parse work moves off the critical path. An in-memory [`Input`]
/// takes the zero-copy buffered shard path; a true stream (file, socket,
/// stdin) is dispatched chunk by chunk with bounded in-flight memory and
/// is never materialised. Prefer `Sequential` for latency-sensitive
/// streams, where the paper's token-bounded memory guarantee is tightest.
/// One visible difference on *malformed* input: buffered sharded runs
/// reject it up front (before emitting any output), while sequential and
/// streamed-sharded runs may stream a partial result before surfacing the
/// same error at the same byte position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One reader thread, token-bounded memory (the paper's model).
    #[default]
    Sequential,
    /// Parse with up to N parallel shards (N ≥ 1; 1 still pipelines but
    /// parses on one thread).
    Shards(usize),
}

/// Compilation and execution options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Algebraic optimizer configuration (all rules on by default).
    pub optimizer: OptimizerConfig,
    /// Verify the scheduled FluX query against the DTD (on by default).
    pub verify_safety: bool,
    /// Ablation: compile without streaming handlers (buffer everything).
    pub disable_streaming: bool,
    /// XSAX validation options.
    pub xsax: XsaxConfig,
    /// Input parsing strategy (default: sequential).
    pub parallelism: Parallelism,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            optimizer: OptimizerConfig::default(),
            verify_safety: true,
            disable_streaming: false,
            xsax: XsaxConfig::default(),
            parallelism: Parallelism::Sequential,
        }
    }
}

impl Options {
    pub fn new() -> Options {
        Options::default()
    }

    /// Chainable: parse the input with `n` parallel shards (see
    /// [`Parallelism::Shards`]).
    pub fn shards(mut self, n: usize) -> Options {
        self.parallelism = Parallelism::Shards(n);
        self
    }

    /// Chainable: cap the stream interner at `cap` distinct names
    /// (bounded-interner mode; see `ReaderConfig::max_symbols`). Past the
    /// cap, names travel by literal spelling — memory stops growing and
    /// query results are unchanged.
    pub fn max_symbols(mut self, cap: usize) -> Options {
        self.xsax.max_symbols = Some(cap);
        self
    }

    /// Chainable: enable or disable the algebraic optimizer (ablation).
    pub fn algebraic_optimizer(mut self, enabled: bool) -> Options {
        self.optimizer = if enabled {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::disabled()
        };
        self
    }

    /// Chainable: enable or disable streaming handlers (the scheduling
    /// ablation — disabled means buffer everything).
    pub fn streaming(mut self, enabled: bool) -> Options {
        self.disable_streaming = !enabled;
        self
    }

    /// The one compilation entry point behind every architecture: compiles
    /// `query` for `kind` under these options and returns the uniform
    /// [`AnyEngine`] wrapper. The DTD is exploited only by the FluX
    /// variants — the baselines cannot use it, which is the paper's point;
    /// execution options (interner bound, parallelism) apply to every
    /// architecture that supports them.
    ///
    /// ```no_run
    /// # use fluxquery_core::{EngineKind, Input, Options};
    /// # let (query, dtd, doc) = ("", "", Vec::new());
    /// let engine = Options::new()
    ///     .shards(4)
    ///     .max_symbols(1 << 16)
    ///     .compile(EngineKind::Flux, query, dtd)?;
    /// engine.run_input(Input::from_bytes(doc), std::io::stdout())?;
    /// # Ok::<(), fluxquery_core::Error>(())
    /// ```
    pub fn compile(&self, kind: EngineKind, query: &str, dtd_text: &str) -> Result<AnyEngine> {
        match kind {
            EngineKind::Flux => Ok(AnyEngine::Flux(Box::new(FluxEngine::compile(
                query, dtd_text, self,
            )?))),
            EngineKind::FluxNoAlgebra => {
                let options = self.clone().algebraic_optimizer(false);
                Ok(AnyEngine::Flux(Box::new(FluxEngine::compile(
                    query, dtd_text, &options,
                )?)))
            }
            EngineKind::Dom => Ok(AnyEngine::Dom(
                DomEngine::compile(query)?,
                self.reader_config(),
            )),
            EngineKind::Projection => Ok(AnyEngine::Projection(
                ProjectionEngine::compile(query)?,
                self.reader_config(),
            )),
        }
    }

    fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            optimizer: self.optimizer,
            verify_safety: self.verify_safety,
            disable_streaming: self.disable_streaming,
        }
    }

    /// Options with streaming disabled (the scheduling ablation).
    pub fn without_streaming() -> Options {
        Options {
            disable_streaming: true,
            ..Options::default()
        }
    }

    /// Options parsing the input with `shards` parallel shards.
    pub fn with_shards(shards: usize) -> Options {
        Options {
            parallelism: Parallelism::Shards(shards),
            ..Options::default()
        }
    }

    /// Options with the algebraic optimizer disabled (for ablations).
    pub fn without_algebraic_optimizer() -> Options {
        Options {
            optimizer: OptimizerConfig::disabled(),
            ..Options::default()
        }
    }

    /// Options capping the stream interner at `cap` distinct names
    /// (bounded-interner mode; see `ReaderConfig::max_symbols`). Past the
    /// cap, names travel by literal spelling — memory stops growing and
    /// query results are unchanged.
    pub fn with_max_symbols(cap: usize) -> Options {
        let mut options = Options::default();
        options.xsax.max_symbols = Some(cap);
        options
    }

    /// The reader configuration the baseline engines should stream with,
    /// mirroring the validating pipeline's interner bound.
    fn reader_config(&self) -> flux_xml::ReaderConfig {
        flux_xml::ReaderConfig {
            max_symbols: self.xsax.max_symbols,
            ..Default::default()
        }
    }
}

/// The FluXQuery engine: a query compiled against a DTD, ready to run over
/// any number of input streams.
pub struct FluxEngine {
    dtd: Dtd,
    query: FluxQuery,
    plan: Plan,
    xsax: XsaxConfig,
    parallelism: Parallelism,
}

impl FluxEngine {
    /// Compiles `query` against `dtd_text` (standalone DTD syntax).
    pub fn compile(query: &str, dtd_text: &str, options: &Options) -> Result<FluxEngine> {
        let dtd = Dtd::parse(dtd_text)?;
        Self::compile_with_dtd(query, dtd, options)
    }

    /// Compiles `query` against a schema in either DTD or XML Schema
    /// syntax, auto-detected (the paper's footnote 1: constraints can be
    /// derived from XML Schema just as well).
    pub fn compile_with_schema(
        query: &str,
        schema_text: &str,
        options: &Options,
    ) -> Result<FluxEngine> {
        let trimmed = schema_text.trim_start();
        let looks_like_xsd = trimmed.starts_with('<')
            && !trimmed.starts_with("<!")
            && schema_text.contains("schema");
        let dtd = if looks_like_xsd {
            flux_dtd::parse_xsd(schema_text)?
        } else {
            Dtd::parse(schema_text)?
        };
        Self::compile_with_dtd(query, dtd, options)
    }

    /// Compiles against an already-parsed DTD.
    pub fn compile_with_dtd(query: &str, dtd: Dtd, options: &Options) -> Result<FluxEngine> {
        let compiled = compile_flux(query, &dtd, &options.compile_options())?;
        let plan = compile_plan(&compiled, &dtd)?;
        Ok(FluxEngine {
            dtd,
            query: compiled,
            plan,
            xsax: options.xsax.clone(),
            parallelism: options.parallelism,
        })
    }

    /// Runs the query over `input`, streaming results to `output`.
    /// Equivalent to [`run_input`](Self::run_input) over
    /// [`Input::from_reader`]; prefer `run_input` when the source is a
    /// file, a buffer, or needs ingestion knobs (window, gzip, budget).
    pub fn run<R: Read + Send + 'static, W: Write>(&self, input: R, output: W) -> Result<RunStats> {
        self.run_input(Input::from_reader(input), output)
    }

    /// [`run`](Self::run) plus the run's telemetry [`RunReport`] — every
    /// pipeline stage's counters, spans and (under sharded parsing) the
    /// per-shard timeline. Without the `telemetry` cargo feature the
    /// report is still structurally valid but carries no measurements.
    pub fn run_with_report<R: Read + Send + 'static, W: Write>(
        &self,
        input: R,
        output: W,
    ) -> Result<(RunStats, RunReport)> {
        self.run_input_with_report(Input::from_reader(input), output)
    }

    /// Runs the query over a unified [`Input`], streaming results to
    /// `output`.
    ///
    /// The input's window and [`MemoryBudget`] are threaded into the
    /// pipeline, and the budget (if any) is enforced after the run: the
    /// run fails with a budget error if the tracked peak — scanner
    /// windows, in-flight shard tapes and chunks, runtime buffers —
    /// exceeded the limit. With [`Parallelism::Shards`], an in-memory
    /// input takes the zero-copy buffered shard path while a reader is
    /// dispatched incrementally and never materialised.
    pub fn run_input<W: Write>(&self, input: Input, output: W) -> Result<RunStats> {
        let budget = input.memory_budget().cloned();
        let stats = match self.parallelism {
            Parallelism::Sequential => {
                let xsax = self.xsax_for(&input);
                let reader = resolve(input)?.into_reader();
                execute_plan(&self.plan, &self.dtd, reader, output, xsax)?
            }
            Parallelism::Shards(n) => {
                let xsax = self.xsax_for(&input);
                let source = self.sharded_source(input, n)?;
                execute_plan_from_source(&self.plan, &self.dtd, source, output, xsax)?
            }
        };
        enforce_budget(budget, &stats)?;
        Ok(stats)
    }

    /// [`run_input`](Self::run_input) plus the telemetry [`RunReport`].
    pub fn run_input_with_report<W: Write>(
        &self,
        input: Input,
        output: W,
    ) -> Result<(RunStats, RunReport)> {
        let budget = input.memory_budget().cloned();
        let (stats, report) = match self.parallelism {
            Parallelism::Sequential => {
                let xsax = self.xsax_for(&input);
                let reader = resolve(input)?.into_reader();
                execute_plan_with_report(&self.plan, &self.dtd, reader, output, xsax)?
            }
            Parallelism::Shards(n) => {
                let xsax = self.xsax_for(&input);
                let source = self.sharded_source(input, n)?;
                execute_plan_from_source_with_report(&self.plan, &self.dtd, source, output, xsax)?
            }
        };
        enforce_budget(budget, &stats)?;
        Ok((stats, report))
    }

    /// The validation config for one run: compile-time XSAX options plus
    /// the ingestion knobs the [`Input`] owns (window, budget).
    fn xsax_for(&self, input: &Input) -> XsaxConfig {
        let mut xsax = self.xsax.clone();
        xsax.window = input.window_bytes();
        xsax.budget = input.memory_budget().cloned();
        xsax
    }

    /// Builds the N-shard parallel source: zero-copy over resolved bytes,
    /// incremental chunk dispatch (bounded in-flight memory, input never
    /// materialised) over a resolved reader.
    fn sharded_source(&self, input: Input, shards: usize) -> Result<ShardedReader> {
        let mut shard_config = ShardConfig::new(shards);
        // Mirror the interner bound on the merged table; the seed
        // vocabulary always resolves, so only undeclared names overflow
        // (and travel by literal spelling).
        shard_config.max_symbols = self.xsax.max_symbols;
        shard_config.window = input.window_bytes();
        shard_config.budget = input.memory_budget().cloned();
        let symbols = flux_xsax::seeded_symbols(&self.dtd);
        Ok(match resolve(input)? {
            ResolvedInput::Bytes(bytes) => {
                ShardedReader::with_shared_bytes(bytes, shard_config, symbols)
            }
            ResolvedInput::Reader(reader) => {
                ShardedReader::from_stream_with_symbols(reader, shard_config, symbols)
            }
        })
    }

    /// Convenience: runs over a string, returning the output string.
    pub fn run_to_string(&self, input: &str) -> Result<(String, RunStats)> {
        let mut out = Vec::new();
        let stats = self.run_input(Input::from_bytes(input.as_bytes().to_vec()), &mut out)?;
        Ok((
            String::from_utf8(out).expect("output writer emits UTF-8"),
            stats,
        ))
    }

    /// The DTD this engine validates against.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The compiled query with all intermediate stages.
    pub fn query(&self) -> &FluxQuery {
        &self.query
    }

    /// Number of buffering (`on-first`) handlers in the plan.
    pub fn buffered_handler_count(&self) -> usize {
        self.query.buffered_handler_count()
    }

    /// A multi-stage compilation report: normal form, applied algebraic
    /// rules, scheduling decisions, the FluX query, and the BDF.
    pub fn explain(&self) -> String {
        let mut out = self.query.explain();
        out.push_str("\n== buffer description forest ==\n");
        out.push_str(&self.plan.render_bdf());
        out
    }
}

/// Resolves an [`Input`] (opens the file, applies gzip detection), mapping
/// I/O failures into the engine error chain at the point the sequential
/// reader would surface them.
fn resolve(input: Input) -> Result<ResolvedInput> {
    input
        .into_source()
        .map_err(|e| flux_runtime::RuntimeError::from(flux_xsax::XsaxError::Xml(e.into())).into())
}

/// Post-run budget enforcement: folds the evaluator's buffer peak into the
/// budget the pipeline charged its windows/tapes/chunks against, then
/// fails the run if the tracked peak exceeded the limit.
fn enforce_budget(budget: Option<Arc<MemoryBudget>>, stats: &RunStats) -> Result<()> {
    if let Some(b) = budget {
        b.record_peak(BudgetKind::Buffer, stats.peak_buffer_bytes as u64);
        b.check().map_err(flux_runtime::RuntimeError::from)?;
    }
    Ok(())
}

/// Which engine architecture to use (for the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// FluXQuery with full optimization.
    Flux,
    /// FluXQuery with the algebraic optimizer disabled (scheduling only).
    FluxNoAlgebra,
    /// Full-document DOM materialisation.
    Dom,
    /// Marian & Siméon-style projection.
    Projection,
}

impl EngineKind {
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Flux => "fluxquery",
            EngineKind::FluxNoAlgebra => "fluxquery-noalg",
            EngineKind::Dom => "dom",
            EngineKind::Projection => "projection",
        }
    }

    pub fn all() -> [EngineKind; 3] {
        [EngineKind::Flux, EngineKind::Projection, EngineKind::Dom]
    }
}

/// A uniform wrapper over the three architectures. Baseline engines carry
/// the reader configuration derived from the compile-time [`Options`]
/// (notably the interner bound), so all three architectures can be run
/// under identical streaming constraints.
pub enum AnyEngine {
    Flux(Box<FluxEngine>),
    Dom(DomEngine, flux_xml::ReaderConfig),
    Projection(ProjectionEngine, flux_xml::ReaderConfig),
}

impl AnyEngine {
    /// Compiles `query` for the chosen architecture with default options.
    /// Shorthand for [`Options::compile`] on [`Options::new`].
    pub fn compile(kind: EngineKind, query: &str, dtd_text: &str) -> Result<AnyEngine> {
        Options::new().compile(kind, query, dtd_text)
    }

    /// Runs over a byte stream. Equivalent to
    /// [`run_input`](Self::run_input) over [`Input::from_reader`].
    pub fn run<R: Read + Send + 'static, W: Write>(&self, input: R, output: W) -> Result<RunStats> {
        self.run_input(Input::from_reader(input), output)
    }

    /// Runs over a unified [`Input`] — the one execution entry point every
    /// architecture shares. The input's window and budget apply to all
    /// three engines; gzip sources are decompressed transparently.
    pub fn run_input<W: Write>(&self, input: Input, output: W) -> Result<RunStats> {
        match self {
            AnyEngine::Flux(e) => e.run_input(input, output),
            AnyEngine::Dom(e, config) => Ok(e.run_input(input, output, config.clone())?),
            AnyEngine::Projection(e, config) => Ok(e.run_input(input, output, config.clone())?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::{PAPER_FIG1_DTD, PAPER_WEAK_DTD};

    const Q3: &str = r#"<results>{ for $b in $ROOT/bib/book return <result>{$b/title}{$b/author}</result> }</results>"#;

    #[test]
    fn compile_and_run() {
        let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let (out, stats) = engine
            .run_to_string("<bib><book><author>A</author><title>T</title></book></bib>")
            .unwrap();
        assert_eq!(
            out,
            "<results><result><title>T</title><author>A</author></result></results>"
        );
        assert!(stats.peak_buffer_bytes > 0);
        assert_eq!(engine.buffered_handler_count(), 1);
    }

    #[test]
    fn explain_has_all_stages() {
        let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let explain = engine.explain();
        for section in [
            "== normalized query ==",
            "== scheduling ==",
            "== FluX query ==",
            "== buffer description forest ==",
        ] {
            assert!(explain.contains(section), "missing {section}:\n{explain}");
        }
        assert!(explain.contains("process-stream"), "{explain}");
        assert!(explain.contains("{author:*}"), "{explain}");
    }

    #[test]
    fn engine_reusable_across_runs() {
        let engine = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::new()).unwrap();
        let doc = "<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>1</price></book></bib>";
        let (out1, _) = engine.run_to_string(doc).unwrap();
        let (out2, _) = engine.run_to_string(doc).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn all_engines_agree() {
        let doc = "<bib><book><title>T1</title><author>A1</author></book><book><title>T2</title><author>A2</author><author>A3</author></book></bib>";
        let mut outputs = Vec::new();
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, PAPER_WEAK_DTD).unwrap();
            let mut out = Vec::new();
            engine.run(doc.as_bytes(), &mut out).unwrap();
            outputs.push((kind.label(), String::from_utf8(out).unwrap()));
        }
        let first = outputs[0].1.clone();
        for (label, out) in &outputs {
            assert_eq!(*out, first, "{label} diverged");
        }
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let mut doc = String::from("<bib>");
        for i in 0..500 {
            doc.push_str(&format!(
                "<book><author>Author {i} &amp; co</author><title>Title {i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        let sequential = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let (seq_out, seq_stats) = sequential.run_to_string(&doc).unwrap();
        for shards in [1, 2, 4] {
            let engine =
                FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::with_shards(shards)).unwrap();
            let (out, stats) = engine.run_to_string(&doc).unwrap();
            assert_eq!(out, seq_out, "{shards} shards diverged");
            assert_eq!(
                stats.peak_buffer_bytes, seq_stats.peak_buffer_bytes,
                "buffer accounting must not depend on parallelism"
            );
        }
    }

    #[test]
    fn report_is_available_in_both_modes_and_parallelisms() {
        let mut doc = String::from("<bib>");
        for i in 0..50 {
            doc.push_str(&format!(
                "<book><author>A{i}</author><title>T{i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        for options in [Options::new(), Options::with_shards(2)] {
            let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &options).unwrap();
            let mut out = Vec::new();
            let (stats, report) = engine
                .run_input_with_report(Input::from_bytes(doc.clone()), &mut out)
                .unwrap();
            let mut plain = Vec::new();
            let plain_stats = engine
                .run_input(Input::from_bytes(doc.clone()), &mut plain)
                .unwrap();
            assert_eq!(out, plain, "report assembly must not change output");
            assert_eq!(stats.peak_buffer_bytes, plain_stats.peak_buffer_bytes);
            let json = report.to_json();
            for needle in ["\"run_stats\"", "\"runtime\"", "\"xsax\"", "\"buffers\""] {
                assert!(json.contains(needle), "missing {needle} in:\n{json}");
            }
            // Text rendering never panics and carries the stats line.
            assert!(report.to_text().contains("run_stats:"));
        }
    }

    #[test]
    fn streamed_sharded_input_matches_sequential() {
        // A reader Input under Parallelism::Shards takes the incremental
        // dispatch path (never materialised); output and buffer accounting
        // must still match the sequential run byte for byte.
        let mut doc = String::from("<bib>");
        for i in 0..800 {
            doc.push_str(&format!(
                "<book><author>Author {i} &amp; co</author><title>Title {i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        let sequential = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new()).unwrap();
        let (seq_out, seq_stats) = sequential.run_to_string(&doc).unwrap();
        for shards in [1, 2, 4] {
            let engine =
                FluxEngine::compile(Q3, PAPER_WEAK_DTD, &Options::new().shards(shards)).unwrap();
            let mut out = Vec::new();
            let stats = engine
                .run_input(
                    Input::from_reader(std::io::Cursor::new(doc.clone().into_bytes())),
                    &mut out,
                )
                .unwrap();
            assert_eq!(String::from_utf8(out).unwrap(), seq_out, "{shards} shards");
            assert_eq!(stats.peak_buffer_bytes, seq_stats.peak_buffer_bytes);
        }
    }

    #[test]
    fn budget_is_enforced_post_run() {
        let mut doc = String::from("<bib>");
        for i in 0..200 {
            doc.push_str(&format!(
                "<book><author>A{i}</author><title>T{i}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        // A generous budget passes, in every parallelism and architecture.
        for options in [Options::new(), Options::new().shards(2)] {
            let engine = FluxEngine::compile(Q3, PAPER_WEAK_DTD, &options).unwrap();
            let budget = MemoryBudget::new(64 * 1024 * 1024);
            let mut out = Vec::new();
            engine
                .run_input(
                    Input::from_reader(std::io::Cursor::new(doc.clone().into_bytes()))
                        .budget(Arc::clone(&budget)),
                    &mut out,
                )
                .unwrap();
            assert!(budget.peak_total() > 0, "pipeline charged nothing");
        }
        // An absurdly small one fails post-run with a budget error naming
        // the pool that grew — on the flux engine and both baselines.
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, PAPER_WEAK_DTD).unwrap();
            let mut out = Vec::new();
            let err = engine
                .run_input(
                    Input::from_bytes(doc.clone()).budget(MemoryBudget::new(16)),
                    &mut out,
                )
                .unwrap_err();
            assert!(
                err.to_string().contains("memory budget exceeded"),
                "{}: {err}",
                kind.label()
            );
        }
    }

    #[test]
    fn builder_path_compiles_every_architecture() {
        let doc = "<bib><book><title>T</title><author>A</author></book></bib>";
        for kind in [
            EngineKind::Flux,
            EngineKind::FluxNoAlgebra,
            EngineKind::Dom,
            EngineKind::Projection,
        ] {
            let engine = Options::new()
                .max_symbols(1 << 12)
                .compile(kind, Q3, PAPER_WEAK_DTD)
                .unwrap();
            let mut out = Vec::new();
            engine
                .run_input(Input::from_bytes(doc.as_bytes().to_vec()), &mut out)
                .unwrap();
            assert!(!out.is_empty(), "{}", kind.label());
        }
    }

    #[test]
    fn sharded_run_rejects_invalid_documents() {
        let engine = FluxEngine::compile(Q3, PAPER_FIG1_DTD, &Options::with_shards(4)).unwrap();
        // Wrong child order under the Fig. 1 DTD: validation must still
        // fail with sharded parsing.
        let doc = "<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>9</price></book></bib>";
        assert!(engine.run_to_string(doc).is_err());
    }

    #[test]
    fn memory_hierarchy_flux_below_projection_below_dom() {
        // Generate a document large enough for the architecture to dominate.
        let mut doc = String::from("<bib>");
        for i in 0..200 {
            doc.push_str(&format!(
                "<book><author>Author{i:04}</author><title>Title number {i:04}</title></book>"
            ));
        }
        doc.push_str("</bib>");
        let mut peaks = std::collections::HashMap::new();
        for kind in EngineKind::all() {
            let engine = AnyEngine::compile(kind, Q3, PAPER_WEAK_DTD).unwrap();
            let mut out = Vec::new();
            let stats = engine
                .run_input(Input::from_bytes(doc.clone()), &mut out)
                .unwrap();
            peaks.insert(kind.label(), stats.peak_buffer_bytes);
        }
        assert!(
            peaks["fluxquery"] < peaks["projection"],
            "flux {} < projection {}",
            peaks["fluxquery"],
            peaks["projection"]
        );
        assert!(
            peaks["projection"] <= peaks["dom"],
            "projection {} <= dom {}",
            peaks["projection"],
            peaks["dom"]
        );
    }
}
